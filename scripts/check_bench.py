#!/usr/bin/env python3
"""Compare a bench run against its committed baseline.

Usage:
    check_bench.py BENCH_throughput.json bench_output.log
    check_bench.py BENCH_topk.json bench_output.log
    check_bench.py BENCH_bulkload.json bench_output.log
    check_bench.py BENCH_serving.json bench_output.log

The log is scanned for the machine-readable ``*_SCALING_JSON:`` line the
bench bins emit; the baseline names which bench it belongs to via its
``bench`` field.

Two kinds of checks:

* **Integrity** (hard): the run covers the same sweep as the baseline
  (backends x worker counts, or the k sweep), every figure is positive,
  and for top-k the pruning gate holds (the U-tree computes strictly
  fewer appearance probabilities than the scan at every k).

* **Regression** (thresholded): wall-clock throughput must stay within a
  generous factor of the baseline — CI runners throttle, so the default
  floor is ``0.4x`` per backend (override with ``BENCH_MIN_RATIO``).
  Logical top-k counters are machine-independent, so they get a tighter
  ceiling: at most ``1.25x`` the baseline's probability computations per
  k (override with ``BENCH_MAX_COUNT_RATIO``).

Exit status 0 = pass, 1 = regression/integrity failure, 2 = bad invocation.
"""

import json
import math
import os
import re
import sys

JSON_LINE = re.compile(r"^[A-Z_]+_SCALING_JSON: (\{.*\})\s*$")


def fail(msg: str) -> None:
    print(f"check_bench: FAIL — {msg}")
    sys.exit(1)


def extract_run(log_path: str, bench: str) -> dict:
    with open(log_path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            m = JSON_LINE.match(line.strip())
            if not m:
                continue
            obj = json.loads(m.group(1))
            if obj.get("bench") == bench:
                return obj
    fail(f"no *_SCALING_JSON line for bench {bench!r} found in {log_path}")
    raise AssertionError  # unreachable


def check_qps(value: float, where: str) -> None:
    # Python's json parser accepts NaN/Infinity literals, and NaN fails
    # every comparison quietly — reject non-finite rates by name (the
    # bins report NaN for an empty run; an empty run must never gate).
    if not math.isfinite(value):
        fail(f"non-finite qps at {where}: {value}")
    if value <= 0:
        fail(f"non-positive qps at {where}: {value}")


def check_throughput(base: dict, run: dict) -> None:
    min_ratio = float(os.environ.get("BENCH_MIN_RATIO", "0.4"))
    base_pts = {(r["backend"], r["workers"]): r for r in base["results"]}
    run_pts = {(r["backend"], r["workers"]): r for r in run["results"]}
    missing = sorted(set(base_pts) - set(run_pts))
    if missing:
        fail(f"run is missing sweep points {missing}")
    for key, r in run_pts.items():
        check_qps(r["qps"], str(key))
        if not r["wall_nanos"] > 0:
            fail(f"non-positive figures at {key}: {r}")
    for backend in {b for b, _ in base_pts}:
        base_best = max(r["qps"] for (b, _), r in base_pts.items() if b == backend)
        run_best = max(r["qps"] for (b, _), r in run_pts.items() if b == backend)
        floor = min_ratio * base_best
        status = "ok" if run_best >= floor else "REGRESSION"
        print(
            f"  {backend}: best {run_best:.1f} q/s vs baseline "
            f"{base_best:.1f} q/s (floor {floor:.1f}) — {status}"
        )
        if run_best < floor:
            fail(
                f"{backend} throughput regressed below {min_ratio:.2f}x of "
                f"the committed baseline"
            )
    check_refine_phase(base_pts, run_pts)


def check_refine_phase(base_pts: dict, run_pts: dict) -> None:
    """The refine-phase gate behind the chunked-kernel win.

    Two checks per backend, both anchored at the single-worker point
    (timing sums are CPU-side, so any worker count would do — workers=1
    is the deterministic anchor):

    * **Refined-sample count** (tight, machine-independent): how many
      Monte-Carlo samples the filter failed to avoid. Same ceiling as the
      top-k probe counters (``BENCH_MAX_COUNT_RATIO``, default 1.25x) —
      a count regression means the filter got weaker.
    * **Refine nanoseconds per refined sample** (generous, wall-clock): a
      return to per-sample enum dispatch / per-sample normalization
      multiplies this unit cost several-fold, while runner throttling
      tracks the same generous band as the qps floor
      (``BENCH_MAX_REFINE_NS_RATIO``, default 2.5x).
    """
    max_count_ratio = float(os.environ.get("BENCH_MAX_COUNT_RATIO", "1.25"))
    max_ns_ratio = float(os.environ.get("BENCH_MAX_REFINE_NS_RATIO", "2.5"))
    for backend in sorted({b for b, _ in base_pts}):
        b1, r1 = base_pts.get((backend, 1)), run_pts.get((backend, 1))
        if b1 is None or r1 is None or "refined_samples" not in b1:
            print(f"  {backend}: no refine-phase baseline — gate skipped")
            continue
        if "refined_samples" not in r1:
            fail(f"{backend} run JSON lost the refine-phase fields")
        if r1["refined_samples"] <= 0 or r1["refine_nanos"] <= 0:
            fail(f"{backend} reports no refinement work: {r1}")
        count_ceiling = max_count_ratio * b1["refined_samples"]
        status = "ok" if r1["refined_samples"] <= count_ceiling else "REGRESSION"
        print(
            f"  {backend}: {r1['refined_samples']} refined samples vs baseline "
            f"{b1['refined_samples']} (ceiling {count_ceiling:.0f}) — {status}"
        )
        if r1["refined_samples"] > count_ceiling:
            fail(
                f"{backend} refined-sample count regressed beyond "
                f"{max_count_ratio:.2f}x of the committed baseline (weaker filter)"
            )
        base_ns = b1["refine_nanos"] / b1["refined_samples"]
        run_ns = r1["refine_nanos"] / r1["refined_samples"]
        ns_ceiling = max_ns_ratio * base_ns
        status = "ok" if run_ns <= ns_ceiling else "REGRESSION"
        print(
            f"  {backend}: {run_ns:.1f} refine ns/sample vs baseline "
            f"{base_ns:.1f} (ceiling {ns_ceiling:.1f}) — {status}"
        )
        if run_ns > ns_ceiling:
            fail(
                f"{backend} refine cost per sample regressed beyond "
                f"{max_ns_ratio:.2f}x of the committed baseline "
                f"(per-sample dispatch crept back into the kernel path?)"
            )


def check_topk(base: dict, run: dict) -> None:
    max_ratio = float(os.environ.get("BENCH_MAX_COUNT_RATIO", "1.25"))
    base_pts = {r["k"]: r for r in base["results"]}
    run_pts = {r["k"]: r for r in run["results"]}
    missing = sorted(set(base_pts) - set(run_pts))
    if missing:
        fail(f"run is missing k values {missing}")
    for k, r in sorted(run_pts.items()):
        for field in ("utree_probes", "scan_probes", "utree_nodes", "scan_nodes"):
            if r[field] <= 0:
                fail(f"non-positive {field} at k={k}: {r}")
        if r["utree_probes"] >= r["scan_probes"]:
            fail(
                f"pruning gate broken at k={k}: U-tree computed "
                f"{r['utree_probes']} probabilities vs the scan's {r['scan_probes']}"
            )
        if k in base_pts:
            ceiling = max_ratio * base_pts[k]["utree_probes"]
            status = "ok" if r["utree_probes"] <= ceiling else "REGRESSION"
            print(
                f"  k={k}: {r['utree_probes']} probability computations vs "
                f"baseline {base_pts[k]['utree_probes']} (ceiling {ceiling:.0f}) — {status}"
            )
            if r["utree_probes"] > ceiling:
                fail(
                    f"top-k probe count at k={k} regressed beyond "
                    f"{max_ratio:.2f}x of the committed baseline"
                )


def check_bulkload(base: dict, run: dict) -> None:
    max_ratio = float(os.environ.get("BENCH_MAX_COUNT_RATIO", "1.25"))
    base_pts = {r["build"]: r for r in base["results"]}
    run_pts = {r["build"]: r for r in run["results"]}
    missing = sorted(set(base_pts) - set(run_pts))
    if missing:
        fail(f"run is missing builds {missing}")
    for build, r in sorted(run_pts.items()):
        for field in (
            "build_secs",
            "index_bytes",
            "node_pages",
            "phys_node_reads",
            "phys_heap_reads",
        ):
            if r[field] <= 0:
                fail(f"non-positive {field} for {build} build: {r}")
    bulk, incr = run_pts["bulk"], run_pts["insert"]
    # Hard gates (the bench bin asserts these too; re-check from the JSON
    # so a doctored log cannot slip through): the packed build must beat
    # repeated insert on build time AND on physical reads served cold.
    if bulk["build_secs"] >= incr["build_secs"]:
        fail(
            f"bulk build ({bulk['build_secs']}s) not faster than repeated "
            f"insert ({incr['build_secs']}s)"
        )
    if bulk["phys_node_reads"] >= incr["phys_node_reads"]:
        fail(
            f"bulk-built tree costs {bulk['phys_node_reads']} physical node "
            f"reads vs the insert-built {incr['phys_node_reads']}"
        )
    if bulk["index_bytes"] >= incr["index_bytes"]:
        fail(
            f"packed index ({bulk['index_bytes']} B) not smaller than "
            f"insert-built ({incr['index_bytes']} B)"
        )
    # Layout counters are machine-independent, so they get the tight
    # ceiling; wall-clock never gates here (the speedup ratio above does).
    for field in ("node_pages", "phys_node_reads"):
        ceiling = max_ratio * base_pts["bulk"][field]
        status = "ok" if bulk[field] <= ceiling else "REGRESSION"
        print(
            f"  bulk {field}: {bulk[field]} vs baseline "
            f"{base_pts['bulk'][field]} (ceiling {ceiling:.0f}) — {status}"
        )
        if bulk[field] > ceiling:
            fail(
                f"packed-build {field} regressed beyond {max_ratio:.2f}x of "
                f"the committed baseline"
            )
    speedup = incr["build_secs"] / bulk["build_secs"]
    print(f"  build speedup: {speedup:.2f}x (insert/bulk wall-clock)")


def check_serving(base: dict, run: dict) -> None:
    """The multi-index query-service gate: qps floor plus p99 ceiling.

    qps gets the usual generous wall-clock floor. The p99 tail is also
    wall-clock, so its ceiling is generous too (``BENCH_MAX_P99_RATIO``,
    default 3.0x) and compares best-of-sweep to best-of-sweep — a real
    serving-loop regression (admission convoy, per-request ctx rebuild)
    multiplies the tail, runner jitter does not.
    """
    min_ratio = float(os.environ.get("BENCH_MIN_RATIO", "0.4"))
    max_p99_ratio = float(os.environ.get("BENCH_MAX_P99_RATIO", "3.0"))
    base_pts = {r["workers"]: r for r in base["results"]}
    run_pts = {r["workers"]: r for r in run["results"]}
    missing = sorted(set(base_pts) - set(run_pts))
    if missing:
        fail(f"run is missing worker counts {missing}")
    for workers, r in sorted(run_pts.items()):
        check_qps(r["qps"], f"workers={workers}")
        if not (0 < r["p50_nanos"] <= r["p99_nanos"]):
            fail(f"degenerate latency percentiles at workers={workers}: {r}")
        if not r["wall_nanos"] > 0:
            fail(f"non-positive wall clock at workers={workers}: {r}")

    base_best_qps = max(r["qps"] for r in base_pts.values())
    run_best_qps = max(r["qps"] for r in run_pts.values())
    floor = min_ratio * base_best_qps
    status = "ok" if run_best_qps >= floor else "REGRESSION"
    print(
        f"  qps: best {run_best_qps:.1f} vs baseline {base_best_qps:.1f} "
        f"(floor {floor:.1f}) — {status}"
    )
    if run_best_qps < floor:
        fail(f"serving qps regressed below {min_ratio:.2f}x of the committed baseline")

    base_best_p99 = min(r["p99_nanos"] for r in base_pts.values())
    run_best_p99 = min(r["p99_nanos"] for r in run_pts.values())
    ceiling = max_p99_ratio * base_best_p99
    status = "ok" if run_best_p99 <= ceiling else "REGRESSION"
    print(
        f"  p99: best {run_best_p99 / 1e6:.1f} ms vs baseline "
        f"{base_best_p99 / 1e6:.1f} ms (ceiling {ceiling / 1e6:.1f} ms) — {status}"
    )
    if run_best_p99 > ceiling:
        fail(
            f"serving p99 tail regressed beyond {max_p99_ratio:.2f}x of the "
            f"committed baseline"
        )


def main() -> None:
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    baseline_path, log_path = sys.argv[1], sys.argv[2]
    with open(baseline_path, encoding="utf-8") as fh:
        base = json.load(fh)
    bench = base.get("bench")
    if bench not in (
        "throughput_scaling",
        "topk_scaling",
        "bulk_vs_incremental",
        "serving_latency",
    ):
        print(f"check_bench: unknown bench {bench!r} in {baseline_path}")
        sys.exit(2)
    run = extract_run(log_path, bench)
    for knob in ("objects", "queries", "queries_per_k", "n1", "pool_frames", "requests", "max_batch"):
        if knob in base and base[knob] != run.get(knob):
            fail(
                f"workload mismatch on {knob}: baseline {base[knob]} vs run "
                f"{run.get(knob)} — regenerate the baseline or fix the CI knobs"
            )
    print(f"check_bench: {bench} vs {baseline_path}")
    if bench == "throughput_scaling":
        check_throughput(base, run)
    elif bench == "bulk_vs_incremental":
        check_bulkload(base, run)
    elif bench == "serving_latency":
        check_serving(base, run)
    else:
        check_topk(base, run)
    print("check_bench: PASS")


if __name__ == "__main__":
    main()
