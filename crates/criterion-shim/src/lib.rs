//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Mirrors the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a deliberately simple measurement loop: warm up, then run
//! until ~200 ms or the configured sample count is reached, and print the
//! mean wall-clock time per iteration. No statistics, no plots; the goal is
//! that `cargo bench` compiles and produces usable relative numbers in an
//! environment without registry access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named parameterised benchmark id, e.g. `BenchmarkId::new("m", 15)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id combining a name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing a prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut wrapped);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over warm-up plus up to `samples` batches (bounded to
    /// ~200 ms wall-clock) and records the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also forces lazy setup).
        black_box(f());
        let budget = Duration::from_millis(200);
        let t0 = Instant::now();
        let mut iters = 0u64;
        while iters < self.samples as u64 || t0.elapsed() < budget / 20 {
            black_box(f());
            iters += 1;
            if t0.elapsed() > budget {
                break;
            }
        }
        self.total = t0.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<44} (no iterations recorded)");
        return;
    }
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{label:<44} {value:>10.3} {unit}/iter  ({} iters)", b.iters);
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produces `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
