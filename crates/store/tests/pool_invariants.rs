//! Randomised buffer-pool invariant checks: the pool is driven with a
//! seeded random allocate/read/write/release sequence against a plain
//! in-memory model, verifying after every step that
//!
//! * resident pages never exceed the configured capacity,
//! * every read observes the last write (dirty evictions write back),
//! * the hit/miss counters are monotone and always sum to the counted
//!   logical reads.

use page_store::{BufferPool, DiskPageFile, PageFile, PageId, PageStore, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The oracle: page id → expected content of the page's first 8 bytes
/// (pages are stamped with a counter; the rest is zero).
struct Model {
    live: HashMap<PageId, u64>,
    stamp: u64,
}

fn stamped(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

fn drive<S: PageStore>(pool: &mut BufferPool<S>, capacity: usize, seed: u64, steps: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model = Model {
        live: HashMap::new(),
        stamp: 0,
    };
    let mut last_hits = 0u64;
    let mut last_misses = 0u64;
    for step in 0..steps {
        let ids: Vec<PageId> = model.live.keys().copied().collect();
        match rng.gen_range(0..10u32) {
            // Allocate (biased so the page population grows past capacity).
            0..=2 => {
                let id = pool.allocate().unwrap();
                assert!(
                    model.live.insert(id, 0).is_none(),
                    "allocate returned a live id {id}"
                );
            }
            // Write a random live page.
            3..=5 if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                model.stamp += 1;
                pool.write(id, &stamped(model.stamp)).unwrap();
                model.live.insert(id, model.stamp);
            }
            // Counted read of a random live page.
            6..=7 if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                let page = pool.read_page(id).unwrap();
                let want = stamped(model.live[&id]);
                assert_eq!(&page[..8], &want, "step {step}: read lost a write");
                assert!(page[8..].iter().all(|&b| b == 0));
            }
            // Uncounted peek.
            8 if !ids.is_empty() => {
                let id = ids[rng.gen_range(0..ids.len())];
                let page = pool.peek_page(id).unwrap();
                assert_eq!(&page[..8], &stamped(model.live[&id]), "step {step}: peek");
            }
            // Release.
            9 if ids.len() > 1 => {
                let id = ids[rng.gen_range(0..ids.len())];
                pool.release(id);
                model.live.remove(&id);
            }
            _ => {}
        }

        // Invariants, after every operation.
        assert!(
            pool.resident_pages() <= capacity,
            "step {step}: {} resident frames exceed capacity {capacity}",
            pool.resident_pages()
        );
        let stats = pool.stats();
        let (hits, misses) = (stats.cache_hits(), stats.cache_misses());
        assert!(
            hits >= last_hits && misses >= last_misses,
            "step {step}: counters regressed"
        );
        assert_eq!(
            hits + misses,
            stats.reads(),
            "step {step}: hits + misses must equal counted logical reads"
        );
        last_hits = hits;
        last_misses = misses;
    }

    // Every surviving page still carries its last write.
    for (&id, &stamp) in &model.live {
        assert_eq!(&pool.read_page(id).unwrap()[..8], &stamped(stamp));
    }
    assert_eq!(
        pool.stats().cache_hits() + pool.stats().cache_misses(),
        pool.stats().reads()
    );
}

#[test]
fn random_ops_respect_invariants_in_memory() {
    for (capacity, seed) in [(1usize, 1u64), (2, 2), (4, 3), (16, 4)] {
        let mut pool = BufferPool::new(PageFile::new(), capacity);
        drive(&mut pool, capacity, seed, 2_000);
    }
}

#[test]
fn random_ops_respect_invariants_across_shard_counts() {
    // The same oracle holds whatever the latch striping: sharding changes
    // *which* frame is evicted, never coherence or the counting contract.
    for (capacity, shards, seed) in [(4usize, 2usize, 11u64), (8, 4, 12), (16, 8, 13), (9, 3, 14)] {
        let mut pool = BufferPool::with_shards(PageFile::new(), capacity, shards);
        drive(&mut pool, capacity, seed, 2_000);
    }
}

#[test]
fn concurrent_readers_observe_flushed_writes_exactly() {
    // Fill a sharded pool, flush, then hammer it with counted reads from
    // many threads: every read must return the exact page image, resident
    // frames must stay bounded, and afterwards hits + misses == reads.
    let mut pool = BufferPool::with_shards(PageFile::new(), 12, 4);
    let mut rng = SmallRng::seed_from_u64(41);
    let mut expected: HashMap<PageId, u64> = HashMap::new();
    for _ in 0..80 {
        let id = pool.allocate().unwrap();
        let stamp = rng.gen_range(1..u64::MAX);
        pool.write(id, &stamp.to_le_bytes()).unwrap();
        expected.insert(id, stamp);
    }
    pool.flush().unwrap();
    pool.stats().reset();

    let pool = &pool;
    let expected = &expected;
    std::thread::scope(|s| {
        for t in 0..6u64 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + t);
                let ids: Vec<PageId> = expected.keys().copied().collect();
                for _ in 0..500 {
                    let id = ids[rng.gen_range(0..ids.len())];
                    let page = pool.read_page(id).unwrap();
                    let got = u64::from_le_bytes(page[..8].try_into().unwrap());
                    assert_eq!(got, expected[&id], "torn or stale read of page {id}");
                    assert!(page[8..].iter().all(|&b| b == 0));
                    assert!(pool.resident_pages() <= 12);
                }
            });
        }
    });
    let stats = pool.stats();
    assert_eq!(stats.reads(), 6 * 500);
    assert_eq!(
        stats.cache_hits() + stats.cache_misses(),
        stats.reads(),
        "each counted read records exactly one hit or miss"
    );
}

#[test]
fn random_ops_respect_invariants_on_disk() {
    let mut path = std::env::temp_dir();
    path.push(format!("utree-pool-invariants-{}.pg", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let disk = DiskPageFile::create(&path).unwrap();
    let capacity = 3;
    let mut pool = BufferPool::new(disk, capacity);
    drive(&mut pool, capacity, 99, 800);
    drop(pool);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flush_then_cold_reopen_returns_every_write() {
    let mut path = std::env::temp_dir();
    path.push(format!("utree-pool-reopen-{}.pg", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut rng = SmallRng::seed_from_u64(7);
    let mut expected: HashMap<PageId, u8> = HashMap::new();
    {
        let disk = DiskPageFile::create(&path).unwrap();
        let mut pool = BufferPool::new(disk, 4);
        for i in 0..64u8 {
            let id = pool.allocate().unwrap();
            pool.write(id, &[i; 100]).unwrap();
            expected.insert(id, i);
        }
        // Rewrite a random subset so dirty re-writes are exercised too.
        let ids: Vec<PageId> = expected.keys().copied().collect();
        for _ in 0..32 {
            let id = ids[rng.gen_range(0..ids.len())];
            let v = rng.gen_range(100..200u8);
            pool.write(id, &[v; 100]).unwrap();
            expected.insert(id, v);
        }
        pool.flush().unwrap();
    }

    // Cold reopen without any pool: the bytes must all be on disk.
    let disk = DiskPageFile::open(&path).unwrap();
    for (&id, &v) in &expected {
        let page = disk.peek_page(id).unwrap();
        assert!(page[..100].iter().all(|&b| b == v), "page {id} lost data");
        assert!(page[100..PAGE_SIZE].iter().all(|&b| b == 0));
    }
    drop(disk);
    let _ = std::fs::remove_file(&path);
}
