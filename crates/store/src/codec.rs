//! Little-endian byte codecs for on-page data.
//!
//! Floats are narrowed to `f32` on disk (see the crate docs); integers are
//! fixed-width little-endian.

/// Copies the first `N` bytes of `s` into a fixed-size array.
///
/// The panic-free replacement for `s[..N].try_into().unwrap()` on decode
/// paths: a short slice zero-pads the tail instead of panicking, which is
/// the right posture for bytes that came off a disk page — the fixed-width
/// decoders own the bounds checks and a truncated record decodes to zeros
/// rather than aborting the process.
pub fn byte_array<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    let n = N.min(s.len());
    out[..n].copy_from_slice(&s[..n]);
    out
}

/// Largest `f32`-representable value `<= v` (as `f64`).
///
/// Conservative bounds must round *outward* before being narrowed to the
/// on-page `f32` format — a lower bound that rounds up would let an object
/// stick out of its parent entry and break the R-tree bounding invariant.
pub fn f32_round_down(v: f64) -> f64 {
    let g = v as f32;
    let g = if (g as f64) > v { g.next_down() } else { g };
    g as f64
}

/// Smallest `f32`-representable value `>= v` (as `f64`).
pub fn f32_round_up(v: f64) -> f64 {
    let g = v as f32;
    let g = if (g as f64) < v { g.next_up() } else { g };
    g as f64
}

/// Append-only byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes an `f64` narrowed to `f32` (the on-disk float format).
    pub fn put_f32(&mut self, v: f64) {
        self.buf.extend_from_slice(&(v as f32).to_le_bytes());
    }

    /// Writes a full-precision `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Sequential byte reader over a slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Reads an on-disk `f32` widened back to `f64`.
    pub fn get_f32(&mut self) -> f64 {
        f32::from_le_bytes(byte_array(self.take(4))) as f64
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(byte_array(self.take(8)))
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_le_bytes(byte_array(self.take(2)))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(byte_array(self.take(4)))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(byte_array(self.take(8)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 3);
        w.put_f64(std::f64::consts::PI);
        w.put_f32(2.5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 65535);
        assert_eq!(r.get_u32(), 123_456);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert_eq!(r.get_f32(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f32_narrowing_loses_only_low_bits() {
        let mut w = ByteWriter::new();
        let v = 10_000.123_456_789_f64;
        w.put_f32(v);
        let bytes = w.into_bytes();
        let back = ByteReader::new(&bytes).get_f32();
        assert!((back - v).abs() < 1e-3 * v.abs());
    }

    #[test]
    fn conservative_rounding_brackets_the_value() {
        for v in [0.1f64, -0.1, 10_000.123, -9_876.543, 1e-40, 0.0, 250.0] {
            let lo = f32_round_down(v);
            let hi = f32_round_up(v);
            assert!(lo <= v, "down({v}) = {lo} > v");
            assert!(hi >= v, "up({v}) = {hi} < v");
            // And both survive the f32 narrowing unchanged.
            assert_eq!(lo as f32 as f64, lo);
            assert_eq!(hi as f32 as f64, hi);
        }
    }

    #[test]
    fn rounding_is_idempotent() {
        let v = std::f64::consts::PI * 1000.0;
        let lo = f32_round_down(v);
        assert_eq!(f32_round_down(lo), lo);
        let hi = f32_round_up(v);
        assert_eq!(f32_round_up(hi), hi);
    }

    #[test]
    fn position_tracking() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        assert_eq!(w.len(), 8);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 4);
    }
}
