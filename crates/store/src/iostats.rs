//! I/O counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters of page-level I/O, shared by readers via `&self`.
///
/// The relaxed atomics make the counters usable from the (single-threaded)
/// query path and from concurrent benchmark harnesses alike.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page read.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total page accesses (reads + writes) — the paper's "node accesses"
    /// for read-only workloads equals `reads()`.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.total(), 3);
        s.reset();
        assert_eq!(s.total(), 0);
    }
}
