//! I/O counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters of page-level I/O, shared by readers via `&self`.
///
/// The relaxed atomics make the counters usable from the (single-threaded)
/// query path and from concurrent benchmark harnesses alike.
///
/// Two families of counters live here:
///
/// * `reads` / `writes` — page accesses against the store they belong to.
///   On a [`crate::BufferPool`] these are the *logical* accesses the caller
///   issued; on the pool's backend they are the *physical* accesses that
///   actually reached it.
/// * `cache_hits` / `cache_misses` — maintained only by caching stores
///   ([`crate::BufferPool`]); always zero on plain backends. For counted
///   reads, `cache_hits + cache_misses == reads` at all times.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page read.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one buffer-pool hit (a counted read served from memory).
    #[inline]
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one buffer-pool miss (a counted read that had to fetch the
    /// page from the backend).
    #[inline]
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of buffer-pool hits so far (zero on non-caching stores).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of buffer-pool misses so far (zero on non-caching stores).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total page accesses (reads + writes) — the paper's "node accesses"
    /// for read-only workloads equals `reads()`.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.total(), 3);
        s.reset();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn cache_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_cache_miss();
        assert_eq!(s.cache_hits(), 1);
        assert_eq!(s.cache_misses(), 2);
        // Hits/misses are a separate family: reads stay untouched.
        assert_eq!(s.reads(), 0);
        s.reset();
        assert_eq!(s.cache_hits(), 0);
        assert_eq!(s.cache_misses(), 0);
    }
}
