//! I/O counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters of page-level I/O, shared via `Arc` and incremented
/// through `&self` — safe under any number of concurrent readers.
///
/// # Memory ordering
///
/// All operations are `Relaxed`, and that is *sufficient*, not a shortcut:
/// each counter is an independent monotone event count, `fetch_add` is a
/// single atomic read-modify-write (no increment can be lost, whatever the
/// ordering), and no reader derives cross-counter invariants that would
/// need `Acquire`/`Release` edges. Two caveats follow from this contract
/// and are part of the API:
///
/// * A multi-counter expression evaluated **while writers are running**
///   (e.g. [`IoStats::total`], or comparing `cache_hits + cache_misses`
///   with `reads`) is a sum of individually-exact but non-simultaneous
///   snapshots; it becomes exact as soon as the writers quiesce (each
///   logical read records exactly one hit *or* miss, so nothing is ever
///   lost — only transiently skewed).
/// * [`IoStats::reset`] zeroes the counters one by one and must only be
///   called while no other thread is recording — the harness pattern of
///   "reset, run, read" around a measured region.
///
/// Two families of counters live here:
///
/// * `reads` / `writes` — page accesses against the store they belong to.
///   On a [`crate::BufferPool`] these are the *logical* accesses the caller
///   issued; on the pool's backend they are the *physical* accesses that
///   actually reached it.
/// * `cache_hits` / `cache_misses` — maintained only by caching stores
///   ([`crate::BufferPool`]); always zero on plain backends. For counted
///   reads, `cache_hits + cache_misses == reads` whenever no reader is
///   mid-flight.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page read.
    #[inline]
    pub fn record_read(&self) {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one page write.
    #[inline]
    pub fn record_write(&self) {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one buffer-pool hit (a counted read served from memory).
    #[inline]
    pub fn record_cache_hit(&self) {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one buffer-pool miss (a counted read that had to fetch the
    /// page from the backend).
    #[inline]
    pub fn record_cache_miss(&self) {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of page reads so far.
    pub fn reads(&self) -> u64 {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of page writes so far.
    pub fn writes(&self) -> u64 {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of buffer-pool hits so far (zero on non-caching stores).
    pub fn cache_hits(&self) -> u64 {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of buffer-pool misses so far (zero on non-caching stores).
    pub fn cache_misses(&self) -> u64 {
        // ordering: Relaxed — independent monotone counter; see the
        // "Memory ordering" section of the type docs.
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total page accesses (reads + writes) — the paper's "node accesses"
    /// for read-only workloads equals `reads()`. Exact once writers have
    /// quiesced (see the type docs).
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zeroes all counters. Must not race with recording (see the type
    /// docs): quiesce, reset, then measure.
    pub fn reset(&self) {
        // ordering: Relaxed — reset runs only while recording is
        // quiescent (type-docs contract), so no edges are needed.
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.total(), 3);
        s.reset();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn cache_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_cache_miss();
        assert_eq!(s.cache_hits(), 1);
        assert_eq!(s.cache_misses(), 2);
        // Hits/misses are a separate family: reads stay untouched.
        assert_eq!(s.reads(), 0);
        s.reset();
        assert_eq!(s.cache_hits(), 0);
        assert_eq!(s.cache_misses(), 0);
    }

    #[test]
    fn no_increment_is_lost_under_concurrent_recording() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let s = Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        s.record_read();
                        if i % 2 == 0 {
                            s.record_cache_hit();
                        } else {
                            s.record_cache_miss();
                        }
                        if i % 10 == 0 {
                            s.record_write();
                        }
                    }
                });
            }
        });
        // Exact totals after quiescence: relaxed fetch_add loses nothing.
        assert_eq!(s.reads(), THREADS * PER_THREAD);
        assert_eq!(s.cache_hits() + s.cache_misses(), s.reads());
        assert_eq!(s.writes(), THREADS * (PER_THREAD / 10));
        assert_eq!(s.total(), s.reads() + s.writes());
    }

    #[test]
    fn readers_may_observe_concurrently_with_writers() {
        // A reader polling while writers record must only ever see
        // monotonically non-decreasing values (no tearing, no rollback).
        let s = Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            let writer = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..50_000 {
                    writer.record_read();
                }
            });
            let mut last = 0;
            for _ in 0..1_000 {
                let now = s.reads();
                assert!(now >= last, "counter regressed: {last} -> {now}");
                last = now;
            }
        });
        assert_eq!(s.reads(), 50_000);
    }
}
