//! A durable [`PageStore`] backed by a real file.
//!
//! Layout: one superblock page at offset 0 (magic, version, page count,
//! an application root pointer and the head of the free list), data page
//! `p` at offset `(1 + p) * PAGE_SIZE`, and — when the free list outgrows
//! the superblock — spill pages appended after the data region.
//! [`DiskPageFile::flush`] rewrites the superblock and spill pages and
//! fsyncs, so a flushed file can be [`DiskPageFile::open`]ed cold with the
//! exact allocation state it was saved with.
//!
//! The **application root** ([`DiskPageFile::app_root`]) is an optional
//! page id persisted in the superblock exactly like the free list: it
//! gives higher layers one durable, crash-ordered anchor into the page
//! space (e.g. the head of a catalog record chain) without inventing a
//! second metadata file.

use crate::codec::byte_array;
use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: [u8; 4] = *b"UPGF";
const VERSION: u32 = 2;
/// Superblock header: magic + version + n_pages + app_root + n_free.
const SB_HEADER: usize = 4 + 4 + 8 + 8 + 8;
/// `app_root` encoding of "no root".
const NO_APP_ROOT: u64 = u64::MAX;
/// Free ids stored inline in the superblock.
const SB_INLINE: usize = (PAGE_SIZE - SB_HEADER) / 8;
/// Free ids per spill page.
const SPILL_PER_PAGE: usize = PAGE_SIZE / 8;

/// A page-granular file on disk.
///
/// Counted reads/writes are *physical* page transfers against the file
/// (via positional I/O). The free list lives in memory between
/// [`Self::flush`] calls; dropping the store flushes best-effort.
#[derive(Debug)]
pub struct DiskPageFile {
    file: File,
    path: PathBuf,
    n_pages: u64,
    app_root: Option<PageId>,
    free: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl DiskPageFile {
    /// Creates (or truncates) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut store = Self {
            file,
            path,
            n_pages: 0,
            app_root: None,
            free: Vec::new(),
            stats: Arc::new(IoStats::new()),
        };
        store.flush()?;
        Ok(store)
    }

    /// Opens an existing page file, restoring page count and free list
    /// from the superblock.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut sb = [0u8; PAGE_SIZE];
        file.read_exact_at(&mut sb, 0)?;
        if sb[..4] != MAGIC {
            return Err(corrupt(&path, "bad superblock magic"));
        }
        let version = u32::from_le_bytes(byte_array(&sb[4..8]));
        if version != VERSION {
            return Err(corrupt(&path, &format!("unsupported version {version}")));
        }
        let n_pages = u64::from_le_bytes(byte_array(&sb[8..16]));
        let app_root = match u64::from_le_bytes(byte_array(&sb[16..24])) {
            NO_APP_ROOT => None,
            p if p < n_pages => Some(p),
            p => return Err(corrupt(&path, &format!("app root {p} out of range"))),
        };
        let n_free = u64::from_le_bytes(byte_array(&sb[24..32])) as usize;
        if n_free > n_pages as usize {
            return Err(corrupt(&path, "free list longer than the file"));
        }
        let mut free = Vec::with_capacity(n_free);
        for i in 0..n_free.min(SB_INLINE) {
            let off = SB_HEADER + i * 8;
            free.push(u64::from_le_bytes(byte_array(&sb[off..off + 8])));
        }
        let mut remaining = n_free.saturating_sub(SB_INLINE);
        let mut spill_idx = 0u64;
        while remaining > 0 {
            let mut page = [0u8; PAGE_SIZE];
            file.read_exact_at(&mut page, (1 + n_pages + spill_idx) * PAGE_SIZE as u64)?;
            for i in 0..remaining.min(SPILL_PER_PAGE) {
                let off = i * 8;
                free.push(u64::from_le_bytes(byte_array(&page[off..off + 8])));
            }
            remaining = remaining.saturating_sub(SPILL_PER_PAGE);
            spill_idx += 1;
        }
        if let Some(&bad) = free.iter().find(|&&id| id >= n_pages) {
            return Err(corrupt(&path, &format!("free id {bad} out of range")));
        }
        Ok(Self {
            file,
            path,
            n_pages,
            app_root,
            free,
            stats: Arc::new(IoStats::new()),
        })
    }

    /// The file path this store was created/opened with.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The application root page anchored in the superblock, if any.
    pub fn app_root(&self) -> Option<PageId> {
        self.app_root
    }

    /// Anchors (or clears) the application root page. Like the free list,
    /// the new value lives in memory until the next [`PageStore::flush`]
    /// persists the superblock.
    ///
    /// # Panics
    /// If `root` names a page outside the file.
    pub fn set_app_root(&mut self, root: Option<PageId>) {
        if let Some(p) = root {
            assert!(p < self.n_pages, "app root {p} outside the file");
        }
        self.app_root = root;
    }

    fn data_offset(id: PageId) -> u64 {
        (1 + id) * PAGE_SIZE as u64
    }
}

fn corrupt(path: &Path, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", path.display()),
    )
}

impl PageStore for DiskPageFile {
    fn allocate(&mut self) -> io::Result<PageId> {
        let reused = self.free.last().copied();
        let id = match reused {
            Some(id) => id,
            None => self.n_pages,
        };
        // Reads of a fresh allocation must see zeros and the file extent
        // must cover the page. Where the file does not yet reach the page,
        // set_len extends with (sparse) zeros for free; only pages whose
        // region already holds bytes — reused free-list pages, regions
        // previously occupied by free-list spill — need an explicit
        // zeroing write. The free list / page count are updated only after
        // the file operations succeed, so a failed allocation leaves the
        // allocation state untouched.
        let end = Self::data_offset(id) + PAGE_SIZE as u64;
        let cur = self.file.metadata()?.len();
        if cur <= Self::data_offset(id) {
            self.file.set_len(end)?;
        } else {
            self.file
                .write_all_at(&[0u8; PAGE_SIZE], Self::data_offset(id))?;
        }
        match reused {
            Some(_) => {
                self.free.pop();
            }
            None => self.n_pages += 1,
        }
        Ok(id)
    }

    fn release(&mut self, id: PageId) {
        debug_assert!(id < self.n_pages);
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.free.push(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.stats.record_read();
        self.file.read_exact_at(out, Self::data_offset(id))
    }

    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.file.read_exact_at(out, Self::data_offset(id))
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let mut page = [0u8; PAGE_SIZE];
        page[..data.len()].copy_from_slice(data);
        self.file.write_all_at(&page, Self::data_offset(id))
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        self.n_pages as usize - self.free.len()
    }

    fn capacity_pages(&self) -> usize {
        self.n_pages as usize
    }

    fn free_list(&self) -> Vec<PageId> {
        self.free.clone()
    }

    /// Persists the superblock + free-list spill pages and fsyncs.
    fn flush(&mut self) -> io::Result<()> {
        let mut sb = [0u8; PAGE_SIZE];
        sb[..4].copy_from_slice(&MAGIC);
        sb[4..8].copy_from_slice(&VERSION.to_le_bytes());
        sb[8..16].copy_from_slice(&self.n_pages.to_le_bytes());
        sb[16..24].copy_from_slice(&self.app_root.unwrap_or(NO_APP_ROOT).to_le_bytes());
        sb[24..32].copy_from_slice(&(self.free.len() as u64).to_le_bytes());
        for (i, id) in self.free.iter().take(SB_INLINE).enumerate() {
            let off = SB_HEADER + i * 8;
            sb[off..off + 8].copy_from_slice(&id.to_le_bytes());
        }
        self.file.write_all_at(&sb, 0)?;
        let spilled = &self.free[self.free.len().min(SB_INLINE)..];
        let n_spill = spilled.len().div_ceil(SPILL_PER_PAGE);
        for (k, chunk) in spilled.chunks(SPILL_PER_PAGE).enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            for (i, id) in chunk.iter().enumerate() {
                page[i * 8..i * 8 + 8].copy_from_slice(&id.to_le_bytes());
            }
            self.file
                .write_all_at(&page, (1 + self.n_pages + k as u64) * PAGE_SIZE as u64)?;
        }
        // Trim stale spill pages from earlier flushes.
        self.file
            .set_len((1 + self.n_pages + n_spill as u64) * PAGE_SIZE as u64)?;
        self.file.sync_all()
    }

    fn backing_path(&self) -> Option<std::path::PathBuf> {
        Some(self.path.clone())
    }
}

impl Drop for DiskPageFile {
    fn drop(&mut self) {
        let _ = PageStore::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("utree-disk-{}-{name}.pg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let path = temp_path("roundtrip");
        let mut f = DiskPageFile::create(&path).unwrap();
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        f.write(a, b"hello disk").unwrap();
        f.write(b, &[7u8; PAGE_SIZE]).unwrap();
        let pa = f.read_page(a).unwrap();
        assert_eq!(&pa[..10], b"hello disk");
        assert_eq!(pa[10], 0, "tail must be zeroed");
        assert_eq!(f.read_page(b).unwrap()[PAGE_SIZE - 1], 7);
        assert_eq!(f.stats().reads(), 2);
        assert_eq!(f.stats().writes(), 2);
        drop(f);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_restores_pages_and_free_list() {
        let path = temp_path("reopen");
        let mut f = DiskPageFile::create(&path).unwrap();
        let ids: Vec<PageId> = (0..5).map(|_| f.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            f.write(id, &[i as u8 + 1; 16]).unwrap();
        }
        f.release(ids[1]);
        f.release(ids[3]);
        f.flush().unwrap();
        drop(f);

        let mut g = DiskPageFile::open(&path).unwrap();
        assert_eq!(g.capacity_pages(), 5);
        assert_eq!(g.live_pages(), 3);
        assert_eq!(g.free_list(), vec![ids[1], ids[3]]);
        assert_eq!(g.read_page(ids[4]).unwrap()[0], 5);
        // Reallocation pops the stack like the in-memory store.
        assert_eq!(g.allocate().unwrap(), ids[3]);
        assert!(g.read_page(ids[3]).unwrap().iter().all(|&b| b == 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn long_free_lists_spill_and_survive_reopen() {
        let path = temp_path("spill");
        let mut f = DiskPageFile::create(&path).unwrap();
        let n = SB_INLINE + 700; // forces two spill pages
        let ids: Vec<PageId> = (0..n).map(|_| f.allocate().unwrap()).collect();
        for &id in &ids {
            f.release(id);
        }
        f.flush().unwrap();
        drop(f);
        let g = DiskPageFile::open(&path).unwrap();
        assert_eq!(g.free_list(), ids);
        assert_eq!(g.live_pages(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn app_root_survives_reopen_like_the_free_list() {
        let path = temp_path("approot");
        let mut f = DiskPageFile::create(&path).unwrap();
        assert_eq!(f.app_root(), None);
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        f.write(b, b"catalog head").unwrap();
        f.set_app_root(Some(b));
        f.release(a);
        f.flush().unwrap();
        drop(f);

        let mut g = DiskPageFile::open(&path).unwrap();
        assert_eq!(g.app_root(), Some(b));
        assert_eq!(g.free_list(), vec![a]);
        assert_eq!(&g.read_page(b).unwrap()[..12], b"catalog head");
        g.set_app_root(None);
        g.flush().unwrap();
        drop(g);
        assert_eq!(DiskPageFile::open(&path).unwrap().app_root(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "outside the file")]
    fn app_root_must_name_an_existing_page() {
        let path = temp_path("approot-bad");
        let mut f = DiskPageFile::create(&path).unwrap();
        f.set_app_root(Some(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage");
        std::fs::write(&path, vec![0xABu8; PAGE_SIZE]).unwrap();
        let err = DiskPageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn peek_is_uncounted() {
        let path = temp_path("peek");
        let mut f = DiskPageFile::create(&path).unwrap();
        let a = f.allocate().unwrap();
        f.write(a, b"x").unwrap();
        let _ = f.peek_page(a).unwrap();
        assert_eq!(f.stats().reads(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
