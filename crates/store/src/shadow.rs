//! A copy-on-write in-memory [`PageStore`] whose clones share pages.
//!
//! [`ShadowPageFile`] stores every page behind an `Arc`; cloning the store
//! is O(pages) pointer bumps, and a write after a clone copies just that
//! one page (`Arc::make_mut`). This is the substrate of the epoch-swap
//! write path: a writer clones the published tree, mutates its private
//! copy page-by-page, and publishes the clone — readers of the old epoch
//! keep their pages alive through the shared `Arc`s, at a memory cost of
//! only the pages that actually changed.
//!
//! Counting matches [`PageFile`](crate::PageFile): reads/writes are
//! counted, peeks are not. A clone starts with **fresh** counters — epochs
//! account for their own I/O.

use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::io;
use std::sync::Arc;

/// An in-memory page store with O(1)-per-page copy-on-write cloning.
#[derive(Debug)]
pub struct ShadowPageFile {
    pages: Vec<Arc<[u8; PAGE_SIZE]>>,
    free: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl Default for ShadowPageFile {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ShadowPageFile {
    /// Shares every page with the original (copy-on-write) and starts
    /// fresh I/O counters.
    fn clone(&self) -> Self {
        Self {
            pages: self.pages.clone(),
            free: self.free.clone(),
            stats: Arc::new(IoStats::new()),
        }
    }
}

impl ShadowPageFile {
    /// An empty store with fresh counters.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            stats: Arc::new(IoStats::new()),
        }
    }
}

static ZERO_PAGE: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];

impl PageStore for ShadowPageFile {
    fn allocate(&mut self) -> io::Result<PageId> {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Arc::new(ZERO_PAGE);
            return Ok(id);
        }
        let id = self.pages.len() as PageId;
        self.pages.push(Arc::new(ZERO_PAGE));
        Ok(id)
    }

    fn release(&mut self, id: PageId) {
        debug_assert!((id as usize) < self.pages.len());
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.free.push(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.stats.record_read();
        out.copy_from_slice(&self.pages[id as usize][..]);
        Ok(())
    }

    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        out.copy_from_slice(&self.pages[id as usize][..]);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        // Copy-on-write: a page still shared with an older epoch is
        // replaced, an unshared one is edited in place.
        let page = Arc::make_mut(&mut self.pages[id as usize]);
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        Ok(())
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    fn free_list(&self) -> Vec<PageId> {
        self.free.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_written() {
        let mut a = ShadowPageFile::new();
        let p = a.allocate().unwrap();
        let q = a.allocate().unwrap();
        a.write(p, b"epoch zero p").unwrap();
        a.write(q, b"epoch zero q").unwrap();

        let mut b = a.clone();
        assert!(
            Arc::ptr_eq(&a.pages[p as usize], &b.pages[p as usize]),
            "clone shares pages"
        );
        b.write(p, b"epoch one p").unwrap();
        assert!(
            !Arc::ptr_eq(&a.pages[p as usize], &b.pages[p as usize]),
            "write detaches the page"
        );
        assert!(
            Arc::ptr_eq(&a.pages[q as usize], &b.pages[q as usize]),
            "untouched pages stay shared"
        );
        // The old epoch is unperturbed.
        assert_eq!(&a.peek_page(p).unwrap()[..12], b"epoch zero p");
        assert_eq!(&b.peek_page(p).unwrap()[..11], b"epoch one p");
    }

    #[test]
    fn clone_counters_start_fresh() {
        let mut a = ShadowPageFile::new();
        let p = a.allocate().unwrap();
        a.write(p, b"x").unwrap();
        let b = a.clone();
        assert_eq!(b.stats().writes(), 0);
        let _ = b.read_page(p).unwrap();
        assert_eq!(b.stats().reads(), 1);
        assert_eq!(a.stats().reads(), 0, "epochs account separately");
    }

    #[test]
    fn reuse_and_zeroing_match_the_reference_backend() {
        let mut f = ShadowPageFile::new();
        let a = f.allocate().unwrap();
        let clone = f.clone();
        f.release(a);
        let b = f.allocate().unwrap();
        assert_eq!(b, a);
        assert!(f.peek_page(b).unwrap().iter().all(|&x| x == 0));
        assert_eq!(f.free_list(), Vec::<PageId>::new());
        drop(clone);
    }
}
