//! A capacity-bounded, lock-striped LRU buffer pool over any [`PageStore`].
//!
//! The pool's own [`IoStats`] count *logical* accesses — exactly what the
//! caller issued, so an index's node-access accounting is identical
//! whatever backend sits underneath. The backend's counters keep counting
//! *physical* transfers (misses, dirty write-backs), which is how the
//! Fig-9-style `io_vs_buffer` experiment measures real I/O against buffer
//! size. Counted logical reads additionally record a cache hit or miss on
//! the pool stats (`hits + misses == reads` at all times in the absence of
//! concurrent readers; under concurrency each read still records exactly
//! one hit or miss, so the totals always agree once readers quiesce).
//!
//! ## Latching
//!
//! Frames are partitioned into `shards` **latches** by page id
//! (`id % shards`), each guarding its own frame table, so concurrent
//! readers of different pages proceed in parallel instead of serialising
//! on one pool-wide lock. The backend sits behind an `RwLock` touched
//! only on misses, evictions and write-backs: miss fetches take it
//! *shared* (positional backend reads are `&self` and run concurrently),
//! mutations take it exclusively. A miss releases its shard latch for the
//! duration of the physical read — same-shard hits are never stuck behind
//! a disk read — which is sound because of a *per-page* argument: a page
//! being miss-fetched has no resident frame, and a dirty version of it
//! can only have existed if an eviction wrote it back **under the same
//! shard latch** the miss just released, ordering the write-back before
//! the fetch; pool mutation (`write`/`release`) is `&mut self` and so
//! cannot overlap `&self` reads at all. Racing fetchers of one page can
//! therefore only duplicate identical work, never diverge. (The eviction
//! write-back staying under the victim's shard latch is load-bearing —
//! moving it outside would let a concurrent miss of the victim read the
//! stale backend image.) Backend locks are only ever acquired while
//! holding at most one shard latch and never the reverse, which makes the
//! pool deadlock-free by construction.
//!
//! Eviction is LRU **per shard** (recency is a pool-wide atomic tick).
//! With one shard this is the exact global LRU of the classic pool — the
//! stack-algorithm property the `io_vs_buffer` experiment relies on; with
//! more shards it is the standard lock-striped approximation every
//! production buffer manager makes. [`BufferPool::new`] picks a shard
//! count automatically (small pools stay exact, large pools stripe);
//! [`BufferPool::with_shards`] pins it.

use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Pools smaller than this stay single-sharded (exact global LRU); larger
/// pools get one shard per this many frames, capped at [`MAX_SHARDS`].
const FRAMES_PER_SHARD: usize = 8;
/// Upper bound on the automatic shard count.
const MAX_SHARDS: usize = 8;

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// One latch: the frames of every page id with `id % shards == index`,
/// bounded by its share of the pool capacity.
struct Shard {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
}

impl Shard {
    /// Evicts least-recently-used frames until one slot is free, writing
    /// dirty victims back. Called with the shard latch held; takes the
    /// backend lock exclusively per victim (shard → backend order). A
    /// failed write-back reinstates the victim frame (nothing is lost)
    /// and surfaces the backend error.
    fn make_room<S: PageStore>(&mut self, backend: &RwLock<S>) -> io::Result<()> {
        while self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&id, _)| id)
                // xlint: allow(panic-freedom) -- invariant: non-empty shard at capacity
                .expect("non-empty shard at capacity");
            // xlint: allow(panic-freedom) -- invariant: victim resident
            let frame = self.frames.remove(&victim).expect("victim resident");
            if frame.dirty {
                if let Err(e) = write_lock(backend).write(victim, &frame.data[..]) {
                    self.frames.insert(victim, frame);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

fn lock<'a, S>(m: &'a Mutex<S>) -> MutexGuard<'a, S> {
    // xlint: allow(panic-freedom) -- invariant: buffer pool poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
    m.lock().expect("buffer pool poisoned")
}

fn read_lock<'a, S>(l: &'a RwLock<S>) -> RwLockReadGuard<'a, S> {
    // xlint: allow(panic-freedom) -- invariant: buffer pool backend poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
    l.read().expect("buffer pool backend poisoned")
}

fn write_lock<'a, S>(l: &'a RwLock<S>) -> RwLockWriteGuard<'a, S> {
    // xlint: allow(panic-freedom) -- invariant: buffer pool backend poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
    l.write().expect("buffer pool backend poisoned")
}

/// An LRU page cache in front of a slower [`PageStore`], safe to share
/// across reader threads (`&self` reads take per-shard latches, not one
/// global lock).
///
/// * Counted reads are served from resident frames; misses fetch from the
///   backend (a physical read on the backend's counters). Peeks serve
///   resident frames for coherence but never fetch into the cache.
/// * Writes are absorbed into the frame and marked dirty (**write-back**):
///   the backend sees them only when the frame is evicted or on
///   [`flush`](PageStore::flush). Dropping the pool flushes best-effort;
///   call `flush` explicitly where durability matters.
/// * At most `capacity` pages are resident at any time (each shard is
///   bounded by its share of the capacity, and the shares sum to it).
pub struct BufferPool<S: PageStore> {
    shards: Box<[Mutex<Shard>]>,
    backend: RwLock<S>,
    tick: AtomicU64,
    stats: Arc<IoStats>,
    backend_stats: Arc<IoStats>,
    capacity: usize,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `backend` with an LRU cache of `capacity` pages (>= 1),
    /// choosing the shard count automatically: pools of fewer than
    /// 2 × [`FRAMES_PER_SHARD`] frames stay single-sharded (exact LRU),
    /// larger ones stripe into up to [`MAX_SHARDS`] latches.
    pub fn new(backend: S, capacity: usize) -> Self {
        let shards = (capacity / FRAMES_PER_SHARD).clamp(1, MAX_SHARDS);
        Self::with_shards(backend, capacity, shards)
    }

    /// Wraps `backend` with an explicit shard count (`1 <= shards <=
    /// capacity`). One shard gives the exact global-LRU pool; more shards
    /// trade LRU exactness for reader parallelism.
    pub fn with_shards(backend: S, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        assert!(
            (1..=capacity).contains(&shards),
            "shard count {shards} must lie in 1..={capacity}"
        );
        let backend_stats = Arc::clone(backend.stats());
        let shards: Box<[Mutex<Shard>]> = (0..shards)
            .map(|i| {
                let share = capacity / shards + usize::from(i < capacity % shards);
                Mutex::new(Shard {
                    frames: HashMap::with_capacity(share),
                    capacity: share,
                })
            })
            .collect();
        Self {
            shards,
            backend: RwLock::new(backend),
            tick: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
            backend_stats,
            capacity,
        }
    }

    /// The configured frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of latches the frame table is striped into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pages currently resident in the cache.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| lock(s).frames.len()).sum()
    }

    /// The backend's *physical* I/O counters (misses + write-backs).
    pub fn backend_stats(&self) -> &Arc<IoStats> {
        &self.backend_stats
    }

    /// Exclusive access to the wrapped backend. `&mut self` guarantees no
    /// latch or backend lock is contended — commit protocols use this to
    /// drive the backend directly after a [`write_back`](Self::write_back).
    pub fn backend_mut(&mut self) -> &mut S {
        self.backend
            .get_mut()
            // xlint: allow(panic-freedom) -- invariant: buffer pool backend poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
            .expect("buffer pool backend poisoned")
    }

    /// Writes every dirty frame back to the backend **without** flushing
    /// it — the first half of `flush`, split out so a journaling backend
    /// can interleave its own commit protocol between write-back and
    /// durability. Errors if part of the pool was poisoned by an earlier
    /// panic (those frames are suspect and skipped).
    pub fn write_back(&mut self) -> io::Result<()> {
        let backend = self
            .backend
            .get_mut()
            .map_err(|_| io::Error::other("buffer pool backend poisoned"))?;
        let mut complete = true;
        for shard in self.shards.iter_mut() {
            let Ok(shard) = shard.get_mut() else {
                complete = false;
                continue;
            };
            for (&id, frame) in shard.frames.iter_mut() {
                if frame.dirty {
                    backend.write(id, &frame.data[..])?;
                    frame.dirty = false;
                }
            }
        }
        if !complete {
            return Err(io::Error::other(
                "buffer pool partially poisoned by an earlier panic; dirty frames lost",
            ));
        }
        Ok(())
    }

    fn shard(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        // ordering: Relaxed — ticks only order evictions; an occasional
        // stale comparison merely evicts a near-LRU frame instead of the
        // exact LRU one, which sharding already permits.
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes every dirty frame of every shard back, then flushes the
    /// backend. Runs under `&mut self`, so no latch can be contended:
    /// `get_mut` gives lock-free access. Poisoned state (a reader or
    /// evictor panicked mid-operation) is skipped rather than trusted —
    /// its frames are suspect; `false` is returned so `flush` can report
    /// the gap while `Drop` stays silent.
    fn flush_unlocked(&mut self) -> (bool, io::Result<()>) {
        let Ok(backend) = self.backend.get_mut() else {
            return (false, Ok(()));
        };
        let mut complete = true;
        for shard in self.shards.iter_mut() {
            let Ok(shard) = shard.get_mut() else {
                complete = false;
                continue;
            };
            for (&id, frame) in shard.frames.iter_mut() {
                if frame.dirty {
                    if let Err(e) = backend.write(id, &frame.data[..]) {
                        return (complete, Err(e));
                    }
                    frame.dirty = false;
                }
            }
        }
        (complete, backend.flush())
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn allocate(&mut self) -> io::Result<PageId> {
        write_lock(&self.backend).allocate()
    }

    fn release(&mut self, id: PageId) {
        // The page is dead: discard its frame, dirty or not.
        lock(self.shard(id)).frames.remove(&id);
        write_lock(&self.backend).release(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.stats.record_read();
        let tick = self.next_tick();
        {
            let mut shard = lock(self.shard(id));
            if let Some(frame) = shard.frames.get_mut(&id) {
                self.stats.record_cache_hit();
                frame.last_used = tick;
                out.copy_from_slice(&frame.data[..]);
                return Ok(());
            }
        }
        // Miss: fetch with the shard latch *released* (same-shard hits
        // proceed during the physical read) and the backend lock *shared*
        // (concurrent misses pread in parallel). Safe because mutation is
        // `&mut self`: the bytes under `id` cannot change while any
        // `&self` reads are in flight, so a racing fetcher of the same
        // page reads identical data.
        self.stats.record_cache_miss();
        let mut data = Box::new([0u8; PAGE_SIZE]);
        read_lock(&self.backend).read_into(id, &mut data)?;
        out.copy_from_slice(&data[..]);
        let mut shard = lock(self.shard(id));
        if let Some(frame) = shard.frames.get_mut(&id) {
            // Another reader cached the page while we fetched: keep its
            // (identical) frame, just refresh recency.
            frame.last_used = tick;
        } else if shard.make_room(&self.backend).is_ok() {
            // A failed eviction write-back only means the fetched page is
            // not cached; the read itself already succeeded.
            shard.frames.insert(
                id,
                Frame {
                    data,
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        Ok(())
    }

    /// Peeks never disturb the pool: a resident (possibly dirty) frame is
    /// served for coherence, but a miss reads straight from the backend
    /// without inserting a frame — so out-of-model scans (invariant
    /// checks, statistics, persistence snapshots) cannot evict the hot
    /// working set, and no counter moves anywhere.
    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        {
            let shard = lock(self.shard(id));
            if let Some(frame) = shard.frames.get(&id) {
                out.copy_from_slice(&frame.data[..]);
                return Ok(());
            }
        }
        // Not resident: uncached backend peek outside the shard latch
        // (shared lock — peeks of different pages run concurrently). The
        // same `&mut self`-mutation argument as in `read_into` makes the
        // latch-free window coherent.
        read_lock(&self.backend).peek_into(id, out)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let tick = self.next_tick();
        let mut shard = lock(self.shard(id));
        if !shard.frames.contains_key(&id) {
            shard.make_room(&self.backend)?;
            // A write covers the whole page (shorter data zero-fills), so a
            // miss needs no backend read.
            shard.frames.insert(
                id,
                Frame {
                    data: Box::new([0u8; PAGE_SIZE]),
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        // xlint: allow(panic-freedom) -- invariant: frame just ensured
        let frame = shard.frames.get_mut(&id).expect("frame just ensured");
        frame.data[..data.len()].copy_from_slice(data);
        frame.data[data.len()..].fill(0);
        frame.dirty = true;
        frame.last_used = tick;
        Ok(())
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        read_lock(&self.backend).live_pages()
    }

    fn capacity_pages(&self) -> usize {
        read_lock(&self.backend).capacity_pages()
    }

    fn free_list(&self) -> Vec<PageId> {
        read_lock(&self.backend).free_list()
    }

    /// Writes every dirty frame back and flushes the backend. Reports
    /// `Other` when part of the pool was poisoned by an earlier panic and
    /// had to be skipped (those frames are lost, as in any crashed pool).
    fn flush(&mut self) -> io::Result<()> {
        let (complete, result) = self.flush_unlocked();
        result?;
        if !complete {
            return Err(io::Error::other(
                "buffer pool partially poisoned by an earlier panic; dirty frames lost",
            ));
        }
        Ok(())
    }

    fn backing_path(&self) -> Option<std::path::PathBuf> {
        read_lock(&self.backend).backing_path()
    }
}

impl<S: PageStore> Drop for BufferPool<S> {
    fn drop(&mut self) {
        // Best-effort, poison-tolerant: skip state a panicking thread left
        // behind rather than panic inside drop (which would abort the
        // process and mask the original panic).
        let _ = self.flush_unlocked();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageFile;

    fn pool(capacity: usize) -> BufferPool<PageFile> {
        BufferPool::new(PageFile::new(), capacity)
    }

    #[test]
    fn small_pools_stay_exact_and_large_pools_stripe() {
        assert_eq!(pool(1).shard_count(), 1);
        assert_eq!(pool(8).shard_count(), 1);
        assert_eq!(pool(15).shard_count(), 1);
        assert_eq!(pool(16).shard_count(), 2);
        assert_eq!(pool(64).shard_count(), 8);
        assert_eq!(pool(4096).shard_count(), MAX_SHARDS);
        let pinned = BufferPool::with_shards(PageFile::new(), 64, 1);
        assert_eq!(pinned.shard_count(), 1);
    }

    #[test]
    fn shard_capacities_sum_to_the_pool_capacity() {
        for (capacity, shards) in [(7usize, 3usize), (16, 2), (9, 4), (64, 8)] {
            let p = BufferPool::with_shards(PageFile::new(), capacity, shards);
            let total: usize = p.shards.iter().map(|s| lock(s).capacity).sum();
            assert_eq!(total, capacity);
            assert!(p.shards.iter().all(|s| lock(s).capacity >= 1));
        }
    }

    #[test]
    fn read_through_and_hit_on_repeat() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"cached").unwrap();
        assert_eq!(&p.read_page(a).unwrap()[..6], b"cached");
        assert_eq!(&p.read_page(a).unwrap()[..6], b"cached");
        // Both logical reads hit the frame created by the write.
        assert_eq!(p.stats().reads(), 2);
        assert_eq!(p.stats().cache_hits(), 2);
        assert_eq!(p.stats().cache_misses(), 0);
        // Nothing physical happened yet (write-back policy).
        assert_eq!(p.backend_stats().total(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, &[i as u8 + 1; 8]).unwrap();
        }
        // Capacity 2: writing 4 pages evicted the first two to the backend.
        assert!(p.resident_pages() <= 2);
        assert!(p.backend_stats().writes() >= 2);
        // Read-after-evict returns the last written content (via a miss).
        assert_eq!(p.read_page(ids[0]).unwrap()[0], 1);
        assert_eq!(p.stats().cache_misses(), 1);
    }

    #[test]
    fn lru_keeps_the_recently_used_page() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let c = p.allocate().unwrap();
        p.write(a, b"a").unwrap();
        p.write(b, b"b").unwrap();
        let _ = p.read_page(a).unwrap(); // a is now more recent than b
        p.write(c, b"c").unwrap(); // evicts b, not a
        let misses0 = p.stats().cache_misses();
        let _ = p.read_page(a).unwrap();
        assert_eq!(
            p.stats().cache_misses(),
            misses0,
            "a must still be resident"
        );
        let _ = p.read_page(b).unwrap();
        assert_eq!(p.stats().cache_misses(), misses0 + 1, "b was evicted");
    }

    #[test]
    fn sharded_pool_keeps_reads_and_writes_coherent() {
        let mut p = BufferPool::with_shards(PageFile::new(), 8, 4);
        let ids: Vec<PageId> = (0..24).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, &[i as u8 + 1; 16]).unwrap();
        }
        assert!(p.resident_pages() <= 8);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(
                p.read_page(id).unwrap()[7],
                i as u8 + 1,
                "page {id} lost its write"
            );
        }
        assert_eq!(
            p.stats().cache_hits() + p.stats().cache_misses(),
            p.stats().reads()
        );
    }

    #[test]
    fn peek_bypasses_all_counting() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        p.write(a, b"quiet").unwrap();
        p.flush().unwrap();
        let before = (
            p.stats().reads(),
            p.stats().cache_hits() + p.stats().cache_misses(),
        );
        let page = p.peek_page(a).unwrap();
        assert_eq!(&page[..5], b"quiet");
        assert_eq!(
            (
                p.stats().reads(),
                p.stats().cache_hits() + p.stats().cache_misses()
            ),
            before
        );
    }

    #[test]
    fn peek_misses_do_not_disturb_the_cache() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let cold = p.allocate().unwrap();
        p.write(a, b"hot-a").unwrap();
        p.write(b, b"hot-b").unwrap();
        p.flush().unwrap();
        // `cold` was zero-allocated and never touched since: not resident.
        assert_eq!(p.resident_pages(), 2);
        let page = p.peek_page(cold).unwrap();
        assert!(page.iter().all(|&x| x == 0));
        // The peek neither cached `cold` nor evicted the hot frames …
        assert_eq!(p.resident_pages(), 2);
        let misses0 = p.stats().cache_misses();
        let _ = p.read_page(a).unwrap();
        let _ = p.read_page(b).unwrap();
        assert_eq!(
            p.stats().cache_misses(),
            misses0,
            "hot set must survive peeks"
        );
        // … and a peek of a dirty resident frame still sees the new bytes.
        p.write(a, b"dirty").unwrap();
        assert_eq!(&p.peek_page(a).unwrap()[..5], b"dirty");
    }

    #[test]
    fn flush_propagates_to_backend_and_clears_dirt() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"durable").unwrap();
        p.flush().unwrap();
        let w = p.backend_stats().writes();
        assert!(w >= 1);
        p.flush().unwrap();
        assert_eq!(
            p.backend_stats().writes(),
            w,
            "clean frames are not rewritten"
        );
    }

    #[test]
    fn release_discards_the_frame() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, b"dead").unwrap();
        p.release(a);
        assert_eq!(p.resident_pages(), 0);
        // Reallocation hands the id back zeroed.
        let b = p.allocate().unwrap();
        assert_eq!(b, a);
        assert!(p.read_page(b).unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn more_shards_than_frames_rejected() {
        let _ = BufferPool::with_shards(PageFile::new(), 2, 3);
    }

    #[test]
    fn drop_and_flush_tolerate_poisoned_latches() {
        // Genuinely poison the latch and the backend lock: a dirty frame
        // for an id the backend never allocated panics the eviction
        // write-back *while the shard latch and exclusive backend lock
        // are held*. Afterwards, `flush` must report an error (not panic)
        // and dropping the pool must stay best-effort — not abort via
        // panic-in-drop.
        let mut p = BufferPool::with_shards(PageFile::new(), 1, 1);
        p.write(9_999, b"bogus: no such backend page").unwrap();
        let evict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.write(8_888, b"forces eviction of the bogus frame")
                .unwrap();
        }));
        assert!(evict.is_err(), "evicting the bogus frame must panic");
        let flushed = p.flush();
        assert!(flushed.is_err(), "flush over poisoned state must error");
        drop(p); // must return, skipping the poisoned state
    }

    #[test]
    fn concurrent_readers_see_coherent_pages() {
        let mut p = BufferPool::with_shards(PageFile::new(), 16, 4);
        let ids: Vec<PageId> = (0..64).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, &(i as u64).to_le_bytes()).unwrap();
        }
        let p = &p;
        std::thread::scope(|s| {
            for t in 0..4 {
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, &id) in ids.iter().enumerate() {
                            if (i + t + round) % 3 == 0 {
                                let page = p.read_page(id).unwrap();
                                let got = u64::from_le_bytes(page[..8].try_into().unwrap());
                                assert_eq!(got, i as u64, "thread {t} read torn page {id}");
                            }
                        }
                    }
                });
            }
        });
        assert!(p.resident_pages() <= 16);
        assert_eq!(
            p.stats().cache_hits() + p.stats().cache_misses(),
            p.stats().reads(),
            "every counted read records exactly one hit or miss"
        );
    }
}
