//! A capacity-bounded LRU buffer pool over any [`PageStore`].
//!
//! The pool's own [`IoStats`] count *logical* accesses — exactly what the
//! caller issued, so an index's node-access accounting is identical
//! whatever backend sits underneath. The backend's counters keep counting
//! *physical* transfers (misses, dirty write-backs), which is how the
//! Fig-9-style `io_vs_buffer` experiment measures real I/O against buffer
//! size. Counted logical reads additionally record a cache hit or miss on
//! the pool stats (`hits + misses == reads` at all times).

use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

struct PoolInner<S> {
    backend: S,
    frames: HashMap<PageId, Frame>,
    tick: u64,
}

impl<S: PageStore> PoolInner<S> {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts the least-recently-used frame when the pool is at `capacity`,
    /// writing it back to the backend if dirty.
    fn make_room(&mut self, capacity: usize) {
        while self.frames.len() >= capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&id, _)| id)
                .expect("non-empty pool at capacity");
            let frame = self.frames.remove(&victim).expect("victim resident");
            if frame.dirty {
                self.backend.write(victim, &frame.data[..]);
            }
        }
    }

    /// Returns the resident frame for `id`, fetching it from the backend
    /// (a counted physical read) on a miss.
    fn fetch(&mut self, id: PageId, capacity: usize) -> &mut Frame {
        let tick = self.next_tick();
        if !self.frames.contains_key(&id) {
            self.make_room(capacity);
            let mut data = Box::new([0u8; PAGE_SIZE]);
            self.backend.read_into(id, &mut data);
            self.frames.insert(
                id,
                Frame {
                    data,
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        let frame = self.frames.get_mut(&id).expect("frame just ensured");
        frame.last_used = tick;
        frame
    }

    fn flush(&mut self) -> io::Result<()> {
        for (&id, frame) in self.frames.iter_mut() {
            if frame.dirty {
                self.backend.write(id, &frame.data[..]);
                frame.dirty = false;
            }
        }
        self.backend.flush()
    }
}

/// An LRU page cache in front of a slower [`PageStore`].
///
/// * Counted reads are served from resident frames; misses fetch from the
///   backend (a physical read on the backend's counters). Peeks serve
///   resident frames for coherence but never fetch into the cache.
/// * Writes are absorbed into the frame and marked dirty (**write-back**):
///   the backend sees them only when the frame is evicted or on
///   [`flush`](PageStore::flush). Dropping the pool flushes best-effort;
///   call `flush` explicitly where durability matters.
/// * At most `capacity` pages are resident at any time.
pub struct BufferPool<S: PageStore> {
    inner: Mutex<PoolInner<S>>,
    stats: Arc<IoStats>,
    backend_stats: Arc<IoStats>,
    capacity: usize,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `backend` with an LRU cache of `capacity` pages (>= 1).
    pub fn new(backend: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let backend_stats = Arc::clone(backend.stats());
        Self {
            inner: Mutex::new(PoolInner {
                backend,
                frames: HashMap::with_capacity(capacity),
                tick: 0,
            }),
            stats: Arc::new(IoStats::new()),
            backend_stats,
            capacity,
        }
    }

    /// The configured frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident in the cache.
    pub fn resident_pages(&self) -> usize {
        self.lock().frames.len()
    }

    /// The backend's *physical* I/O counters (misses + write-backs).
    pub fn backend_stats(&self) -> &Arc<IoStats> {
        &self.backend_stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner<S>> {
        self.inner.lock().expect("buffer pool poisoned")
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn allocate(&mut self) -> PageId {
        self.lock().backend.allocate()
    }

    fn release(&mut self, id: PageId) {
        let mut inner = self.lock();
        // The page is dead: discard its frame, dirty or not.
        inner.frames.remove(&id);
        inner.backend.release(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) {
        self.stats.record_read();
        let mut inner = self.lock();
        if inner.frames.contains_key(&id) {
            self.stats.record_cache_hit();
        } else {
            self.stats.record_cache_miss();
        }
        let frame = inner.fetch(id, self.capacity);
        out.copy_from_slice(&frame.data[..]);
    }

    /// Peeks never disturb the pool: a resident (possibly dirty) frame is
    /// served for coherence, but a miss reads straight from the backend
    /// without inserting a frame — so out-of-model scans (invariant
    /// checks, statistics, persistence snapshots) cannot evict the hot
    /// working set, and no counter moves anywhere.
    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) {
        let inner = self.lock();
        match inner.frames.get(&id) {
            Some(frame) => out.copy_from_slice(&frame.data[..]),
            None => inner.backend.peek_into(id, out),
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let mut inner = self.lock();
        let tick = inner.next_tick();
        if !inner.frames.contains_key(&id) {
            inner.make_room(self.capacity);
            // A write covers the whole page (shorter data zero-fills), so a
            // miss needs no backend read.
            inner.frames.insert(
                id,
                Frame {
                    data: Box::new([0u8; PAGE_SIZE]),
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        let frame = inner.frames.get_mut(&id).expect("frame just ensured");
        frame.data[..data.len()].copy_from_slice(data);
        frame.data[data.len()..].fill(0);
        frame.dirty = true;
        frame.last_used = tick;
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        self.lock().backend.live_pages()
    }

    fn capacity_pages(&self) -> usize {
        self.lock().backend.capacity_pages()
    }

    fn free_list(&self) -> Vec<PageId> {
        self.lock().backend.free_list()
    }

    /// Writes every dirty frame back and flushes the backend.
    fn flush(&mut self) -> io::Result<()> {
        self.lock().flush()
    }

    fn backing_path(&self) -> Option<std::path::PathBuf> {
        self.lock().backend.backing_path()
    }
}

impl<S: PageStore> Drop for BufferPool<S> {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            let _ = inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageFile;

    fn pool(capacity: usize) -> BufferPool<PageFile> {
        BufferPool::new(PageFile::new(), capacity)
    }

    #[test]
    fn read_through_and_hit_on_repeat() {
        let mut p = pool(4);
        let a = p.allocate();
        p.write(a, b"cached");
        assert_eq!(&p.read_page(a)[..6], b"cached");
        assert_eq!(&p.read_page(a)[..6], b"cached");
        // Both logical reads hit the frame created by the write.
        assert_eq!(p.stats().reads(), 2);
        assert_eq!(p.stats().cache_hits(), 2);
        assert_eq!(p.stats().cache_misses(), 0);
        // Nothing physical happened yet (write-back policy).
        assert_eq!(p.backend_stats().total(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, &[i as u8 + 1; 8]);
        }
        // Capacity 2: writing 4 pages evicted the first two to the backend.
        assert!(p.resident_pages() <= 2);
        assert!(p.backend_stats().writes() >= 2);
        // Read-after-evict returns the last written content (via a miss).
        assert_eq!(p.read_page(ids[0])[0], 1);
        assert_eq!(p.stats().cache_misses(), 1);
    }

    #[test]
    fn lru_keeps_the_recently_used_page() {
        let mut p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.write(a, b"a");
        p.write(b, b"b");
        let _ = p.read_page(a); // a is now more recent than b
        p.write(c, b"c"); // evicts b, not a
        let misses0 = p.stats().cache_misses();
        let _ = p.read_page(a);
        assert_eq!(
            p.stats().cache_misses(),
            misses0,
            "a must still be resident"
        );
        let _ = p.read_page(b);
        assert_eq!(p.stats().cache_misses(), misses0 + 1, "b was evicted");
    }

    #[test]
    fn peek_bypasses_all_counting() {
        let mut p = pool(2);
        let a = p.allocate();
        p.write(a, b"quiet");
        p.flush().unwrap();
        let before = (
            p.stats().reads(),
            p.stats().cache_hits() + p.stats().cache_misses(),
        );
        let page = p.peek_page(a);
        assert_eq!(&page[..5], b"quiet");
        assert_eq!(
            (
                p.stats().reads(),
                p.stats().cache_hits() + p.stats().cache_misses()
            ),
            before
        );
    }

    #[test]
    fn peek_misses_do_not_disturb_the_cache() {
        let mut p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let cold = p.allocate();
        p.write(a, b"hot-a");
        p.write(b, b"hot-b");
        p.flush().unwrap();
        // `cold` was zero-allocated and never touched since: not resident.
        assert_eq!(p.resident_pages(), 2);
        let page = p.peek_page(cold);
        assert!(page.iter().all(|&x| x == 0));
        // The peek neither cached `cold` nor evicted the hot frames …
        assert_eq!(p.resident_pages(), 2);
        let misses0 = p.stats().cache_misses();
        let _ = p.read_page(a);
        let _ = p.read_page(b);
        assert_eq!(
            p.stats().cache_misses(),
            misses0,
            "hot set must survive peeks"
        );
        // … and a peek of a dirty resident frame still sees the new bytes.
        p.write(a, b"dirty");
        assert_eq!(&p.peek_page(a)[..5], b"dirty");
    }

    #[test]
    fn flush_propagates_to_backend_and_clears_dirt() {
        let mut p = pool(4);
        let a = p.allocate();
        p.write(a, b"durable");
        p.flush().unwrap();
        let w = p.backend_stats().writes();
        assert!(w >= 1);
        p.flush().unwrap();
        assert_eq!(
            p.backend_stats().writes(),
            w,
            "clean frames are not rewritten"
        );
    }

    #[test]
    fn release_discards_the_frame() {
        let mut p = pool(4);
        let a = p.allocate();
        p.write(a, b"dead");
        p.release(a);
        assert_eq!(p.resident_pages(), 0);
        // Reallocation hands the id back zeroed.
        let b = p.allocate();
        assert_eq!(b, a);
        assert!(p.read_page(b).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }
}
