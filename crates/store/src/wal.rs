//! Write-ahead logging: the crash-durable write path for page stores.
//!
//! The paper's index is pitched as disk-based, but a page-image snapshot
//! alone is only as durable as its last `save`. This module adds the
//! standard database answer — physical redo logging — sized to the
//! repo's page model:
//!
//! * [`Wal`] is an append-only log of CRC-framed, LSN-stamped records.
//!   Each frame is `[len: u32][crc: u32][payload]` with
//!   `payload = [lsn: u64][kind: u8][body]`; the CRC covers the payload,
//!   so a torn tail (a crash mid-append) is detected by length/CRC and
//!   discarded on recovery. Record kinds are full page images, allocation
//!   state changes (`Alloc`/`Release`), an opaque tree-metadata blob, and
//!   a commit marker. Everything between two commit markers is one atomic
//!   batch: recovery replays *committed batches only* and truncates the
//!   rest, so a reopened store always equals some prefix of commits.
//! * **Group commit**: [`Wal::commit`] appends the marker and fsyncs every
//!   `group_every`-th commit ([`Wal::set_group_commit`]), batching the
//!   expensive `fdatasync` across commits exactly like a database group
//!   commit. A not-yet-synced commit may be lost by a crash — but always
//!   as a whole batch, never torn.
//! * [`WalStore`] wraps any [`PageStore`] and journals every mutation
//!   *before* it reaches the wrapped backend (write-ahead rule): writes
//!   land in an in-memory shadow table, staging serializes them into the
//!   log, and only after the commit marker is durable are the images
//!   applied to the backend file. Replay is idempotent (full page
//!   images), so a crash at any point — including mid-apply — recovers by
//!   replaying the log over whatever the backend file holds.
//!
//! Checkpointing is layered above (see `utree::persist`): force a synced
//! commit, snapshot the stores via the existing page-image dump, then
//! [`Wal::truncate`] the log.

use crate::codec::byte_array;
use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Log header: magic + format version in one 8-byte stamp.
const MAGIC: [u8; 8] = *b"UWALLOG1";
/// Byte offset of the first frame.
const HEADER: u64 = 8;
/// Frame prefix: payload length + CRC.
const FRAME_PREFIX: usize = 4 + 4;
/// Payload prefix: LSN + kind.
const PAYLOAD_PREFIX: usize = 8 + 1;
/// Upper bound on a sane payload (page image + addressing, with slack for
/// large metadata blobs); longer lengths are treated as corruption.
const MAX_PAYLOAD: usize = 1 << 20;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_ALLOC: u8 = 2;
const KIND_RELEASE: u8 = 3;
const KIND_META: u8 = 4;
const KIND_COMMIT: u8 = 5;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Hand-rolled —
/// the build environment is offline, and eleven lines beat a dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `bytes` (IEEE polynomial, standard init/final xor).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Fsyncs a directory, making a completed rename/create/truncate of an
/// entry inside it durable. On POSIX the rename itself is atomic but only
/// the directory fsync pins it to disk.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn fsync_parent(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => fsync_dir(dir),
        _ => Ok(()),
    }
}

/// A decoded log record (the replay-side view; appends go through the
/// typed [`Wal`] methods without materializing this enum).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Full after-image of one page of store `store`.
    PageImage {
        /// Tag of the store the page belongs to (see [`WalStore::attach`]).
        store: u8,
        /// The page the image replaces on replay.
        page: PageId,
        /// The full page contents.
        data: Box<[u8; PAGE_SIZE]>,
    },
    /// Page `page` of store `store` was allocated (zeroed).
    Alloc {
        /// Tag of the store the page belongs to.
        store: u8,
        /// The allocated page.
        page: PageId,
    },
    /// Page `page` of store `store` was released to the free list.
    Release {
        /// Tag of the store the page belongs to.
        store: u8,
        /// The released page.
        page: PageId,
    },
    /// Opaque tree-level metadata; the last committed one wins.
    Meta(Vec<u8>),
    /// Batch boundary: everything since the previous marker is atomic.
    Commit,
}

/// What [`Wal::commit`] reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// LSN of the commit marker.
    pub lsn: u64,
    /// Whether this commit was fsynced (group commit may defer the sync
    /// to a later commit or an explicit [`Wal::sync`]).
    pub durable: bool,
}

/// One frame as reported by [`Wal::scan`] (crash-test support: the frame
/// boundaries are exactly the interesting truncation points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Byte offset one past the end of the frame.
    pub end: u64,
    /// Record kind ([`WalRecord`] discriminant as stored).
    pub kind: u8,
}

impl FrameInfo {
    /// True when the frame is a commit marker — a crash just after it
    /// makes one more batch durable.
    pub fn is_commit(&self) -> bool {
        self.kind == KIND_COMMIT
    }
}

/// The result of opening a log with recovery: the reusable [`Wal`] plus
/// every fully committed batch, in commit order.
pub struct WalRecovery {
    /// The log, truncated past its last commit marker and ready to append.
    pub wal: Wal,
    /// The committed batches (records between commit markers, markers
    /// excluded), ready for [`replay`].
    pub batches: Vec<Vec<WalRecord>>,
}

/// An append-only, CRC-framed, LSN-stamped log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Append offset (logical end of the log).
    end: u64,
    /// Staging buffer: frames appended since the last write-out.
    buf: Vec<u8>,
    next_lsn: u64,
    last_commit_lsn: u64,
    durable_lsn: u64,
    group_every: u64,
    pending_commits: u64,
    syncs: u64,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating any existing file),
    /// fsyncing the header and the parent directory.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all_at(&MAGIC, 0)?;
        file.sync_all()?;
        fsync_parent(&path)?;
        Ok(Self {
            file,
            path,
            end: HEADER,
            buf: Vec::new(),
            next_lsn: 1,
            last_commit_lsn: 0,
            durable_lsn: 0,
            group_every: 1,
            pending_commits: 0,
            syncs: 0,
        })
    }

    /// Opens (or creates) the log at `path` with crash recovery: scans the
    /// frames, collects fully committed batches, discards the torn or
    /// uncommitted tail by truncating the file back to the last commit
    /// marker, and returns a log ready to append after that point.
    ///
    /// Tolerated states: a missing file and a sub-header file (a crash
    /// during creation) both become a fresh empty log. A present header
    /// with wrong magic is an error — that file is not ours to truncate.
    pub fn recover<P: AsRef<Path>>(path: P) -> io::Result<WalRecovery> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Ok(WalRecovery {
                wal: Self::create(&path)?,
                batches: Vec::new(),
            });
        }
        let bytes = std::fs::read(&path)?;
        if bytes.len() < HEADER as usize {
            // Crash between file creation and the header write.
            return Ok(WalRecovery {
                wal: Self::create(&path)?,
                batches: Vec::new(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a WAL file (bad magic)", path.display()),
            ));
        }
        let mut batches = Vec::new();
        let mut cur = Vec::new();
        let mut committed_end = HEADER;
        let mut next_lsn = 1u64;
        let mut last_commit_lsn = 0u64;
        let mut expected_lsn: Option<u64> = None;
        let mut off = HEADER as usize;
        while let Some((record, lsn, end)) = decode_frame(&bytes, off) {
            if let Some(want) = expected_lsn {
                if lsn != want {
                    break; // LSN discontinuity: treat as corruption.
                }
            }
            expected_lsn = Some(lsn + 1);
            match record {
                WalRecord::Commit => {
                    batches.push(std::mem::take(&mut cur));
                    committed_end = end as u64;
                    next_lsn = lsn + 1;
                    last_commit_lsn = lsn;
                }
                rec => cur.push(rec),
            }
            off = end;
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        if bytes.len() as u64 > committed_end {
            // Torn tail and/or uncommitted trailing records: roll back.
            file.set_len(committed_end)?;
            file.sync_all()?;
        }
        Ok(WalRecovery {
            wal: Self {
                file,
                path,
                end: committed_end,
                buf: Vec::new(),
                next_lsn,
                last_commit_lsn,
                durable_lsn: last_commit_lsn,
                group_every: 1,
                pending_commits: 0,
                syncs: 0,
            },
            batches,
        })
    }

    /// Read-only frame scan (no truncation): every decodable frame in
    /// order, stopping at the first torn/corrupt one. Crash tests use the
    /// reported boundaries as truncation points.
    pub fn scan<P: AsRef<Path>>(path: P) -> io::Result<Vec<FrameInfo>> {
        let bytes = std::fs::read(path)?;
        let mut frames = Vec::new();
        if bytes.len() < HEADER as usize || bytes[..8] != MAGIC {
            return Ok(frames);
        }
        let mut off = HEADER as usize;
        let mut expected_lsn: Option<u64> = None;
        while let Some((record, lsn, end)) = decode_frame(&bytes, off) {
            if let Some(want) = expected_lsn {
                if lsn != want {
                    break;
                }
            }
            expected_lsn = Some(lsn + 1);
            frames.push(FrameInfo {
                end: end as u64,
                kind: record_kind(&record),
            });
            off = end;
        }
        Ok(frames)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical length in bytes (header + all appended frames).
    pub fn len_bytes(&self) -> u64 {
        self.end + self.buf.len() as u64
    }

    /// Number of `fsync`s issued so far (group-commit diagnostics).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Highest commit LSN known durable on disk.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// LSN of the most recent commit marker (durable or not).
    pub fn last_commit_lsn(&self) -> u64 {
        self.last_commit_lsn
    }

    /// True when a commit marker has been appended whose fsync the
    /// group-commit window deferred — state a crash would lose until the
    /// next [`sync`](Self::sync).
    pub fn has_deferred_commits(&self) -> bool {
        self.durable_lsn < self.last_commit_lsn
    }

    /// Sets the group-commit window: fsync every `every`-th commit
    /// (`1` = every commit, the durable default).
    pub fn set_group_commit(&mut self, every: u64) {
        self.group_every = every.max(1);
    }

    fn append_frame(&mut self, kind: u8, body: &[&[u8]]) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let body_len: usize = body.iter().map(|b| b.len()).sum();
        let len = (PAYLOAD_PREFIX + body_len) as u32;
        let start = self.buf.len();
        self.buf.reserve(FRAME_PREFIX + len as usize);
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&[0u8; 4]); // CRC backpatched below
        self.buf.extend_from_slice(&lsn.to_le_bytes());
        self.buf.push(kind);
        for part in body {
            self.buf.extend_from_slice(part);
        }
        let crc = crc32(&self.buf[start + FRAME_PREFIX..]);
        self.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        lsn
    }

    /// Appends a full page image of store `store`.
    pub fn append_image(&mut self, store: u8, page: PageId, data: &[u8; PAGE_SIZE]) -> u64 {
        self.append_frame(KIND_PAGE_IMAGE, &[&[store], &page.to_le_bytes(), data])
    }

    /// Appends an allocation record.
    pub fn append_alloc(&mut self, store: u8, page: PageId) -> u64 {
        self.append_frame(KIND_ALLOC, &[&[store], &page.to_le_bytes()])
    }

    /// Appends a release record.
    pub fn append_release(&mut self, store: u8, page: PageId) -> u64 {
        self.append_frame(KIND_RELEASE, &[&[store], &page.to_le_bytes()])
    }

    /// Appends a tree-metadata blob (the last committed one wins at
    /// recovery).
    pub fn append_meta(&mut self, bytes: &[u8]) -> u64 {
        self.append_frame(KIND_META, &[bytes])
    }

    fn write_out(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all_at(&self.buf, self.end)?;
            self.end += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends a commit marker sealing everything since the previous one
    /// into an atomic batch, writes the frames out, and fsyncs according
    /// to the group-commit policy. Returns the marker's LSN and whether
    /// this batch is already durable.
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        let lsn = self.append_frame(KIND_COMMIT, &[]);
        self.write_out()?;
        self.last_commit_lsn = lsn;
        self.pending_commits += 1;
        let durable = if self.pending_commits >= self.group_every {
            self.sync()?;
            true
        } else {
            false
        };
        Ok(CommitReceipt { lsn, durable })
    }

    /// Forces an fsync, making every appended commit durable.
    pub fn sync(&mut self) -> io::Result<()> {
        self.write_out()?;
        self.file.sync_data()?;
        self.syncs += 1;
        self.pending_commits = 0;
        self.durable_lsn = self.last_commit_lsn;
        Ok(())
    }

    /// Truncates the log back to an empty header — the checkpoint step
    /// after a snapshot has captured everything the log held. LSNs keep
    /// counting monotonically across truncations. Fsyncs the file and its
    /// directory.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.buf.clear();
        self.file.set_len(HEADER)?;
        self.end = HEADER;
        self.pending_commits = 0;
        self.durable_lsn = self.last_commit_lsn;
        self.file.sync_all()?;
        fsync_parent(&self.path)
    }
}

fn record_kind(rec: &WalRecord) -> u8 {
    match rec {
        WalRecord::PageImage { .. } => KIND_PAGE_IMAGE,
        WalRecord::Alloc { .. } => KIND_ALLOC,
        WalRecord::Release { .. } => KIND_RELEASE,
        WalRecord::Meta(_) => KIND_META,
        WalRecord::Commit => KIND_COMMIT,
    }
}

/// Decodes the frame at `off`, returning `(record, lsn, end_offset)`; any
/// framing violation (short prefix, insane length, bad CRC, unknown kind,
/// malformed body) reads as end-of-log.
fn decode_frame(bytes: &[u8], off: usize) -> Option<(WalRecord, u64, usize)> {
    let prefix = bytes.get(off..off + FRAME_PREFIX)?;
    let len = u32::from_le_bytes(byte_array(&prefix[..4])) as usize;
    let crc = u32::from_le_bytes(byte_array(&prefix[4..8]));
    if !(PAYLOAD_PREFIX..=MAX_PAYLOAD).contains(&len) {
        return None;
    }
    let payload = bytes.get(off + FRAME_PREFIX..off + FRAME_PREFIX + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let lsn = u64::from_le_bytes(byte_array(&payload[..8]));
    let kind = payload[8];
    let body = &payload[PAYLOAD_PREFIX..];
    let record = match kind {
        KIND_PAGE_IMAGE => {
            if body.len() != 1 + 8 + PAGE_SIZE {
                return None;
            }
            let mut data = Box::new([0u8; PAGE_SIZE]);
            data.copy_from_slice(&body[9..]);
            WalRecord::PageImage {
                store: body[0],
                page: u64::from_le_bytes(byte_array(&body[1..9])),
                data,
            }
        }
        KIND_ALLOC | KIND_RELEASE => {
            if body.len() != 1 + 8 {
                return None;
            }
            let store = body[0];
            let page = u64::from_le_bytes(byte_array(&body[1..9]));
            if kind == KIND_ALLOC {
                WalRecord::Alloc { store, page }
            } else {
                WalRecord::Release { store, page }
            }
        }
        KIND_META => WalRecord::Meta(body.to_vec()),
        KIND_COMMIT => {
            if !body.is_empty() {
                return None;
            }
            WalRecord::Commit
        }
        _ => return None,
    };
    Some((record, lsn, off + FRAME_PREFIX + len))
}

/// Where committed records land during recovery. Implemented by the
/// persistence layer over its snapshot files; replay order within a batch
/// is append order, and full page images make the whole replay idempotent
/// over any partially-applied base.
pub trait ReplayTarget {
    /// Installs a full page image (extending the page space if needed).
    fn apply_image(&mut self, page: PageId, data: &[u8; PAGE_SIZE]) -> io::Result<()>;
    /// Re-applies an allocation: the page leaves the free list, the extent
    /// grows to cover it, and its content resets to zero.
    fn apply_alloc(&mut self, page: PageId) -> io::Result<()>;
    /// Re-applies a release: the page joins the free list (idempotently).
    fn apply_release(&mut self, page: PageId) -> io::Result<()>;
}

/// Replays committed batches onto per-store targets (`targets[store
/// tag]`); records for tags without a target are ignored. Returns the last
/// committed metadata blob, if any; a target's I/O failure aborts the
/// replay (recovery must not report success over a half-applied base).
pub fn replay(
    batches: &[Vec<WalRecord>],
    targets: &mut [&mut dyn ReplayTarget],
) -> io::Result<Option<Vec<u8>>> {
    let mut meta = None;
    for batch in batches {
        for rec in batch {
            match rec {
                WalRecord::PageImage { store, page, data } => {
                    if let Some(t) = targets.get_mut(*store as usize) {
                        t.apply_image(*page, data)?;
                    }
                }
                WalRecord::Alloc { store, page } => {
                    if let Some(t) = targets.get_mut(*store as usize) {
                        t.apply_alloc(*page)?;
                    }
                }
                WalRecord::Release { store, page } => {
                    if let Some(t) = targets.get_mut(*store as usize) {
                        t.apply_release(*page)?;
                    }
                }
                WalRecord::Meta(bytes) => meta = Some(bytes.clone()),
                WalRecord::Commit => {}
            }
        }
    }
    Ok(meta)
}

enum PendingOp {
    Alloc(PageId),
    Release(PageId),
    Write(PageId),
}

/// A journaling [`PageStore`] wrapper: every mutation is logged to a
/// shared [`Wal`] *before* it reaches the wrapped backend.
///
/// ## Protocol
///
/// Writes land in an in-memory **shadow table** (reads are served from it
/// first), allocation state lives in a shadow free list seeded from the
/// backend at attach time — the backend's own `allocate`/`release` are
/// never called, so its on-disk allocation state stays frozen at the last
/// snapshot. A commit then proceeds in write-ahead order:
///
/// 1. [`stage`](Self::stage) serializes the pending ops into the log;
/// 2. the caller appends a commit marker ([`Wal::commit`]) — several
///    stores sharing one log stage into the *same batch*, which is what
///    makes a tree's index + heap commit atomic;
/// 3. [`note_commit`](Self::note_commit) tags the staged images with the
///    batch's LSN, and [`apply_through`](Self::apply_through) copies the
///    images of *durable* batches into the backend, retiring their shadow
///    entries.
///
/// Step 3's durability gate is load-bearing: under group commit a marker
/// may not be synced yet, and applying its images early would corrupt the
/// recovery base (the backend file would contain state the truncated log
/// cannot reproduce). [`commit`](Self::commit) bundles the three steps
/// for a store that owns its log alone.
///
/// `flush` (the [`PageStore`] hook, e.g. from a dropping buffer pool)
/// deliberately does **not** commit: it stages and syncs the bytes, but
/// without a marker recovery rolls them back — dropping a store without
/// committing means *rollback to the last commit*, never a half-applied
/// batch.
///
/// The backend must tolerate writes past its current extent by growing
/// (as [`crate::DiskPageFile`] does): committed allocations reach it only
/// as page images.
/// A page image bound for the backend once its commit is durable.
type StagedImage = (PageId, Arc<[u8; PAGE_SIZE]>);

/// A write-ahead-logged [`PageStore`]: every mutation is staged in the
/// shared [`Wal`] first and reaches the wrapped backend only after its
/// commit marker is durable (see the module docs for the protocol).
pub struct WalStore<S: PageStore> {
    inner: S,
    wal: Arc<Mutex<Wal>>,
    tag: u8,
    pending: Vec<PendingOp>,
    dirty: HashSet<PageId>,
    shadow: HashMap<PageId, Arc<[u8; PAGE_SIZE]>>,
    /// Images staged into the log but not yet sealed by a commit marker.
    staged: Vec<StagedImage>,
    /// Committed batches awaiting durability before applying to `inner`.
    unapplied: VecDeque<(u64, Vec<StagedImage>)>,
    n_pages: u64,
    free: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl<S: PageStore> WalStore<S> {
    /// Wraps `inner`, journaling to `wal` under store tag `tag`, with an
    /// explicit shadow allocation state (`n_pages` page extent + free
    /// list) — the state recovery computed by replaying the log.
    pub fn attach(
        inner: S,
        wal: Arc<Mutex<Wal>>,
        tag: u8,
        n_pages: u64,
        free: Vec<PageId>,
    ) -> Self {
        debug_assert!(free.iter().all(|&id| id < n_pages));
        let stats = Arc::new(IoStats::new());
        Self {
            inner,
            wal,
            tag,
            pending: Vec::new(),
            dirty: HashSet::new(),
            shadow: HashMap::new(),
            staged: Vec::new(),
            unapplied: VecDeque::new(),
            n_pages,
            free,
            stats,
        }
    }

    /// [`attach`](Self::attach) seeding the shadow allocation state from
    /// the backend itself (a freshly opened snapshot with no log to
    /// replay).
    pub fn wrap(inner: S, wal: Arc<Mutex<Wal>>, tag: u8) -> Self {
        let n_pages = inner.capacity_pages() as u64;
        let free = inner.free_list();
        Self::attach(inner, wal, tag, n_pages, free)
    }

    /// The shared log handle.
    pub fn wal_handle(&self) -> Arc<Mutex<Wal>> {
        Arc::clone(&self.wal)
    }

    /// The store tag this store journals under.
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// The wrapped backend (diagnostics).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of mutations accumulated since the last stage (tests).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Number of committed batches not yet applied to the backend
    /// (non-zero only under a deferred group commit).
    pub fn unapplied_batches(&self) -> usize {
        self.unapplied.len()
    }

    /// Serializes every pending op into the log, in mutation order. The
    /// caller holds the log lock and decides when to seal the batch.
    pub fn stage(&mut self, wal: &mut Wal) {
        for op in self.pending.drain(..) {
            match op {
                PendingOp::Alloc(id) => {
                    wal.append_alloc(self.tag, id);
                }
                PendingOp::Release(id) => {
                    wal.append_release(self.tag, id);
                }
                PendingOp::Write(id) => {
                    let data = self
                        .shadow
                        .get(&id)
                        // xlint: allow(panic-freedom) -- invariant: wal store: dirty page must be shadowed
                        .expect("wal store: dirty page must be shadowed")
                        .clone();
                    wal.append_image(self.tag, id, &data);
                    self.staged.push((id, data));
                }
            }
        }
        self.dirty.clear();
    }

    /// Seals the staged images into the batch committed as `lsn`.
    pub fn note_commit(&mut self, lsn: u64) {
        if !self.staged.is_empty() {
            self.unapplied
                .push_back((lsn, std::mem::take(&mut self.staged)));
        }
    }

    /// Applies every committed batch with LSN `<= durable_lsn` to the
    /// backend, retiring shadow entries that the apply made current.
    ///
    /// On a backend write failure the not-yet-applied images stay queued
    /// (full page images are idempotent, so a later retry — or crash
    /// recovery replaying the durable log — lands the same state) and the
    /// error surfaces to the caller. Reads remain coherent meanwhile: any
    /// unretired page is still served from the shadow table.
    pub fn apply_through(&mut self, durable_lsn: u64) -> io::Result<()> {
        while let Some(&(lsn, _)) = self.unapplied.front() {
            if lsn > durable_lsn {
                break;
            }
            // xlint: allow(panic-freedom) -- invariant: front just probed
            let (lsn, images) = self.unapplied.pop_front().expect("front just probed");
            for (i, (id, data)) in images.iter().enumerate() {
                if let Err(e) = self.inner.write(*id, &data[..]) {
                    // Re-queue the unapplied suffix (this image included)
                    // so the batch can be retried or recovered.
                    self.unapplied.push_front((lsn, images[i..].to_vec()));
                    return Err(e);
                }
                if let Some(cur) = self.shadow.get(id) {
                    if Arc::ptr_eq(cur, data) {
                        self.shadow.remove(id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Stage + commit + apply for a store that owns its log alone (the
    /// tree layer orchestrates the multi-store version by hand so index
    /// and heap share one batch). `force_sync` overrides a deferred group
    /// commit.
    pub fn commit(&mut self, force_sync: bool) -> io::Result<CommitReceipt> {
        let wal = Arc::clone(&self.wal);
        let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
        self.stage(&mut w);
        let receipt = w.commit()?;
        if force_sync && !receipt.durable {
            w.sync()?;
        }
        let durable = w.durable_lsn();
        drop(w);
        self.note_commit(receipt.lsn);
        // The commit is in the durable log even if the backend apply
        // fails here — recovery replays it — but the caller must hear
        // about the sick backend.
        self.apply_through(durable)?;
        Ok(CommitReceipt {
            lsn: receipt.lsn,
            durable: durable >= receipt.lsn,
        })
    }

    /// Whether commits have been appended whose fsync was deferred by the
    /// group-commit window — state a crash would lose.
    pub fn has_deferred_commits(&self) -> bool {
        match self.wal.lock() {
            Ok(w) => w.durable_lsn() < w.last_commit_lsn(),
            Err(_) => true,
        }
    }
}

impl<S: PageStore> Drop for WalStore<S> {
    /// A commit that returned `CommitReceipt { durable: false }` promised
    /// the caller its batch would reach disk by the *next* fsync — letting
    /// the store die with that fsync still owed would silently break the
    /// promise. Best-effort close the group-commit window; a clean process
    /// exit then loses nothing, and an actual crash still only loses what
    /// the receipt already declared volatile.
    fn drop(&mut self) {
        if let Ok(mut w) = self.wal.lock() {
            if w.durable_lsn() < w.last_commit_lsn() {
                let _ = w.sync();
            }
        }
    }
}

impl<S: PageStore> PageStore for WalStore<S> {
    fn allocate(&mut self) -> io::Result<PageId> {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = self.n_pages;
                self.n_pages += 1;
                id
            }
        };
        self.pending.push(PendingOp::Alloc(id));
        // A fresh allocation reads as zeros until written; shadowing the
        // zero page also guarantees every allocated page has an image in
        // the batch (the image is superseded in place by the first real
        // write). The extra Write entry is load-bearing for
        // release-then-reallocate within one batch: replay passes through
        // the zeroing `Alloc`, so the final image must come after it.
        self.shadow.insert(id, Arc::new([0u8; PAGE_SIZE]));
        self.pending.push(PendingOp::Write(id));
        self.dirty.insert(id);
        Ok(id)
    }

    fn release(&mut self, id: PageId) {
        debug_assert!(id < self.n_pages);
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.free.push(id);
        self.pending.push(PendingOp::Release(id));
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.stats.record_read();
        if let Some(page) = self.shadow.get(&id) {
            out.copy_from_slice(&page[..]);
            Ok(())
        } else {
            self.inner.read_into(id, out)
        }
    }

    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        if let Some(page) = self.shadow.get(&id) {
            out.copy_from_slice(&page[..]);
            Ok(())
        } else {
            self.inner.peek_into(id, out)
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let mut page = [0u8; PAGE_SIZE];
        page[..data.len()].copy_from_slice(data);
        self.shadow.insert(id, Arc::new(page));
        if self.dirty.insert(id) {
            self.pending.push(PendingOp::Write(id));
        }
        Ok(())
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        self.n_pages as usize - self.free.len()
    }

    fn capacity_pages(&self) -> usize {
        self.n_pages as usize
    }

    fn free_list(&self) -> Vec<PageId> {
        self.free.clone()
    }

    /// Stages pending ops and syncs the log — **without** a commit
    /// marker. The bytes are on disk, but recovery rolls uncommitted
    /// records back: durability with recovery needs a commit (see the
    /// type docs). This is what makes dropping an uncommitted store a
    /// clean rollback instead of a torn half-batch.
    ///
    /// The sync also closes any open group-commit window, so batches the
    /// window had deferred become durable here and are applied to the
    /// backend — a store going through `flush` (e.g. from a dropping
    /// buffer pool) leaves no committed batch stranded in memory.
    fn flush(&mut self) -> io::Result<()> {
        let wal = Arc::clone(&self.wal);
        let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
        self.stage(&mut w);
        w.sync()?;
        let durable = w.durable_lsn();
        drop(w);
        self.apply_through(durable)?;
        self.inner.flush()
    }

    fn backing_path(&self) -> Option<PathBuf> {
        self.inner.backing_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskPageFile;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("utree-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn commit_recover_roundtrip() {
        let path = temp_path("roundtrip.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            let img = [7u8; PAGE_SIZE];
            wal.append_alloc(0, 3);
            wal.append_image(0, 3, &img);
            wal.append_meta(b"meta-1");
            assert!(wal.commit().unwrap().durable);
            wal.append_release(1, 9);
            wal.commit().unwrap();
        }
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0][0], WalRecord::Alloc { store: 0, page: 3 });
        match &rec.batches[0][1] {
            WalRecord::PageImage {
                store: 0,
                page: 3,
                data,
            } => {
                assert!(data.iter().all(|&b| b == 7));
            }
            other => panic!("unexpected record {other:?}"),
        }
        assert_eq!(rec.batches[0][2], WalRecord::Meta(b"meta-1".to_vec()));
        assert_eq!(
            rec.batches[1],
            vec![WalRecord::Release { store: 1, page: 9 }]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let path = temp_path("torn.wal");
        let full_len;
        {
            let mut wal = Wal::create(&path).unwrap();
            for batch in 0..3u8 {
                let img = [batch + 1; PAGE_SIZE];
                wal.append_alloc(0, batch as u64);
                wal.append_image(0, batch as u64, &img);
                wal.commit().unwrap();
            }
            full_len = wal.len_bytes();
        }
        let frames = Wal::scan(&path).unwrap();
        assert_eq!(frames.len(), 9, "3 batches x (alloc + image + commit)");
        assert_eq!(frames.last().unwrap().end, full_len);
        let original = std::fs::read(&path).unwrap();

        // Truncate at every frame boundary and at a byte inside every
        // frame; recovery must keep exactly the fully committed prefix.
        let mut cut_points: Vec<u64> = vec![HEADER];
        for f in &frames {
            cut_points.push(f.end);
            cut_points.push(f.end - 1); // mid-frame (torn append)
            cut_points.push(f.end + 3); // mid-prefix of the next frame
        }
        for cut in cut_points {
            let cut = cut.min(full_len);
            std::fs::write(&path, &original[..cut as usize]).unwrap();
            let rec = Wal::recover(&path).unwrap();
            let commits_before = frames
                .iter()
                .filter(|f| f.kind == KIND_COMMIT && f.end <= cut)
                .count();
            assert_eq!(
                rec.batches.len(),
                commits_before,
                "cut at {cut}: wrong committed prefix"
            );
            // Recovery truncated the tail: a second recovery agrees.
            let again = Wal::recover(&path).unwrap();
            assert_eq!(again.batches.len(), commits_before);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_crc_cuts_the_log_there() {
        let path = temp_path("crc.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            for i in 0..3u64 {
                wal.append_alloc(0, i);
                wal.commit().unwrap();
            }
        }
        let frames = Wal::scan(&path).unwrap();
        // Flip one byte inside the second batch's alloc record body
        // (frame 2, starting where frame 1 — the first commit — ends).
        let mut bytes = std::fs::read(&path).unwrap();
        let target = frames[1].end as usize + FRAME_PREFIX + PAYLOAD_PREFIX;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.batches.len(), 1, "corruption voids that batch onward");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let path = temp_path("group.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.set_group_commit(3);
        let mut durable = Vec::new();
        for i in 0..7u64 {
            wal.append_alloc(0, i);
            durable.push(wal.commit().unwrap().durable);
        }
        // Syncs on commits 3 and 6 only.
        assert_eq!(durable, vec![false, false, true, false, false, true, false]);
        assert_eq!(wal.sync_count(), 2);
        let before = wal.durable_lsn();
        assert!(before < wal.last_commit_lsn());
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.last_commit_lsn());
        assert_eq!(wal.sync_count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_missing_and_embryonic_files() {
        let path = temp_path("fresh.wal");
        let rec = Wal::recover(&path).unwrap();
        assert!(rec.batches.is_empty());
        drop(rec);
        // Crash between create and header write: a too-short file.
        std::fs::write(&path, b"UW").unwrap();
        let rec = Wal::recover(&path).unwrap();
        assert!(rec.batches.is_empty());
        // A foreign file is refused, not truncated.
        std::fs::write(&path, vec![0xAB; 64]).unwrap();
        assert!(Wal::recover(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_resets_the_log_but_not_the_lsns() {
        let path = temp_path("trunc.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append_alloc(0, 1);
        wal.commit().unwrap();
        let lsn_before = wal.last_commit_lsn();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), HEADER);
        wal.append_alloc(0, 2);
        let r = wal.commit().unwrap();
        assert!(r.lsn > lsn_before, "LSNs stay monotonic across truncate");
        drop(wal);
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.batches.len(), 1, "only the post-truncate batch");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wal_store_journals_before_the_backend_and_rolls_back_uncommitted() {
        let dir = std::env::temp_dir();
        let data_path = dir.join(format!("utree-walstore-{}-data.pg", std::process::id()));
        let wal_path = dir.join(format!("utree-walstore-{}-log.wal", std::process::id()));
        let _ = std::fs::remove_file(&data_path);
        let _ = std::fs::remove_file(&wal_path);

        let expected_a;
        {
            let inner = DiskPageFile::create(&data_path).unwrap();
            let wal = Arc::new(Mutex::new(Wal::create(&wal_path).unwrap()));
            let mut store = WalStore::wrap(inner, wal, 0);
            let a = store.allocate().unwrap();
            store.write(a, b"committed").unwrap();
            expected_a = a;
            // Before commit: backend file does not see the page content.
            assert_eq!(store.unapplied_batches(), 0);
            let r = store.commit(true).unwrap();
            assert!(r.durable);
            assert_eq!(store.unapplied_batches(), 0, "durable commit applies");
            assert_eq!(&store.inner().peek_page(a).unwrap()[..9], b"committed");

            // A second, uncommitted mutation: flush (stage+sync, no
            // marker) then drop — recovery must roll it back.
            let b = store.allocate().unwrap();
            store.write(b, b"uncommitted").unwrap();
            store.flush().unwrap();
        }
        let rec = Wal::recover(&wal_path).unwrap();
        assert_eq!(rec.batches.len(), 1, "uncommitted tail rolled back");
        // Rebuild the store from the recovered allocation state.
        struct Sink {
            n_pages: u64,
            free: Vec<PageId>,
        }
        impl ReplayTarget for Sink {
            fn apply_image(&mut self, _page: PageId, _data: &[u8; PAGE_SIZE]) -> io::Result<()> {
                Ok(())
            }
            fn apply_alloc(&mut self, page: PageId) -> io::Result<()> {
                self.free.retain(|&f| f != page);
                if page >= self.n_pages {
                    self.n_pages = page + 1;
                }
                Ok(())
            }
            fn apply_release(&mut self, page: PageId) -> io::Result<()> {
                if !self.free.contains(&page) {
                    self.free.push(page);
                }
                Ok(())
            }
        }
        let mut sink = Sink {
            n_pages: 0,
            free: Vec::new(),
        };
        replay(&rec.batches, &mut [&mut sink]).unwrap();
        assert_eq!(sink.n_pages, expected_a + 1, "only the committed page");
        let _ = std::fs::remove_file(&data_path);
        let _ = std::fs::remove_file(&wal_path);
    }

    #[test]
    fn release_then_reallocate_within_one_batch_replays_correctly() {
        let path = temp_path("realloc.wal");
        let data_path = temp_path("realloc.pg");
        let wal = Wal::create(&path).unwrap();
        // The backend must absorb extending writes (the contract the
        // apply path relies on) — that's the disk file, not PageFile.
        let inner = DiskPageFile::create(&data_path).unwrap();
        let wal = Arc::new(Mutex::new(wal));
        let mut store = WalStore::wrap(inner, wal, 0);
        let a = store.allocate().unwrap();
        store.write(a, b"first life").unwrap();
        store.commit(true).unwrap();
        // One batch: release a, reallocate it (same id), write new bytes.
        store.release(a);
        let b = store.allocate().unwrap();
        assert_eq!(b, a, "free list must hand the id back");
        store.write(b, b"second life").unwrap();
        store.commit(true).unwrap();
        drop(store);

        let rec = Wal::recover(&path).unwrap();
        // Replay into a byte-level target and check the final content.
        struct Pages(HashMap<PageId, [u8; PAGE_SIZE]>, Vec<PageId>);
        impl ReplayTarget for Pages {
            fn apply_image(&mut self, page: PageId, data: &[u8; PAGE_SIZE]) -> io::Result<()> {
                self.0.insert(page, *data);
                Ok(())
            }
            fn apply_alloc(&mut self, page: PageId) -> io::Result<()> {
                self.1.retain(|&f| f != page);
                self.0.insert(page, [0u8; PAGE_SIZE]);
                Ok(())
            }
            fn apply_release(&mut self, page: PageId) -> io::Result<()> {
                if !self.1.contains(&page) {
                    self.1.push(page);
                }
                Ok(())
            }
        }
        let mut pages = Pages(HashMap::new(), Vec::new());
        replay(&rec.batches, &mut [&mut pages]).unwrap();
        assert_eq!(&pages.0[&a][..11], b"second life");
        assert!(pages.1.is_empty(), "the page ends the log allocated");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&data_path);
    }

    #[test]
    fn group_commit_defers_apply_until_durable() {
        let dir = std::env::temp_dir();
        let data_path = dir.join(format!("utree-walgrp-{}-data.pg", std::process::id()));
        let wal_path = dir.join(format!("utree-walgrp-{}-log.wal", std::process::id()));
        let _ = std::fs::remove_file(&data_path);
        let _ = std::fs::remove_file(&wal_path);
        let inner = DiskPageFile::create(&data_path).unwrap();
        let wal = Arc::new(Mutex::new(Wal::create(&wal_path).unwrap()));
        wal.lock().unwrap().set_group_commit(2);
        let mut store = WalStore::wrap(inner, wal, 0);

        let a = store.allocate().unwrap();
        store.write(a, b"deferred").unwrap();
        let r1 = store.commit(false).unwrap();
        assert!(!r1.durable, "first commit of the window is deferred");
        assert_eq!(store.unapplied_batches(), 1, "apply waits for the sync");
        assert!(
            store.has_deferred_commits(),
            "window left a commit unsynced"
        );
        // The shadow still serves reads coherently meanwhile.
        assert_eq!(&store.read_page(a).unwrap()[..8], b"deferred");

        store.write(a, b"second").unwrap();
        let r2 = store.commit(false).unwrap();
        assert!(r2.durable, "second commit closes the group window");
        assert_eq!(store.unapplied_batches(), 0);
        assert!(!store.has_deferred_commits());
        assert_eq!(&store.inner().peek_page(a).unwrap()[..6], b"second");
        let _ = std::fs::remove_file(&data_path);
        let _ = std::fs::remove_file(&wal_path);
    }
}
