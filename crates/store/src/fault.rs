//! Fault injection for crash tests: a [`PageStore`] wrapper that kills the
//! backend write path on command.
//!
//! [`FaultStore`] passes everything through to the wrapped store until its
//! trigger fires — on the Nth write (1-based) it injects the configured
//! [`FaultMode`] and from then on behaves like a device that dropped off
//! the bus: writes fail (nothing reaches the backend) and `flush` fails.
//! Reads keep serving whatever the backend holds, which is exactly the
//! view a post-crash recovery sees.

use crate::pagefile::{PageId, PageStore, PAGE_SIZE};
use crate::IoStats;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What happens to the write that trips the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The tripping write is dropped entirely (power loss before the
    /// sector reached the platter).
    Fail,
    /// The tripping write lands torn: only the first `n` bytes are
    /// applied, the tail of the page is zero-filled (a partial sector
    /// write).
    ShortWrite(usize),
}

/// Per-operation counters, shared so tests can watch them while the store
/// is owned elsewhere.
#[derive(Debug, Default)]
pub struct FaultCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    releases: AtomicU64,
    flushes: AtomicU64,
}

impl FaultCounters {
    /// Counted reads observed (peeks excluded, matching the I/O model).
    pub fn reads(&self) -> u64 {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.reads.load(Ordering::Relaxed)
    }
    /// Writes observed, including the tripping one and black-holed ones.
    pub fn writes(&self) -> u64 {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.writes.load(Ordering::Relaxed)
    }
    /// Allocations observed.
    pub fn allocs(&self) -> u64 {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.allocs.load(Ordering::Relaxed)
    }
    /// Releases observed.
    pub fn releases(&self) -> u64 {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.releases.load(Ordering::Relaxed)
    }
    /// Flush attempts observed.
    pub fn flushes(&self) -> u64 {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.flushes.load(Ordering::Relaxed)
    }
}

/// A [`PageStore`] that injects a write fault on the Nth write.
///
/// Until the trigger: full pass-through. On the tripping write: the
/// injected [`FaultMode`] applies and the call returns the injection
/// error. After it: every write and [`PageStore::flush`] keep failing
/// without touching the backend — the wrapped store is frozen at its
/// crash image, ready to be handed to recovery.
pub struct FaultStore<S: PageStore> {
    inner: S,
    /// Trip on this write ordinal (1-based); `0` disarms.
    trip_on_write: u64,
    /// Trip on this read/peek ordinal (1-based, counted together); `0`
    /// disarms. Interior-mutable because the read path takes `&self`
    /// and tests arm it on a store already owned by a tree.
    trip_on_read: AtomicU64,
    read_ops: AtomicU64,
    mode: FaultMode,
    counters: Arc<FaultCounters>,
    tripped: bool,
}

impl<S: PageStore> FaultStore<S> {
    /// Wraps `inner`, tripping `mode` on the `nth_write`-th write
    /// (1-based; `0` never trips).
    pub fn new(inner: S, nth_write: u64, mode: FaultMode) -> Self {
        Self {
            inner,
            trip_on_write: nth_write,
            trip_on_read: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
            mode,
            counters: Arc::new(FaultCounters::default()),
            tripped: false,
        }
    }

    /// Arms (or, with `0`, disarms) the read path: the `nth`-th read or
    /// peek (1-based, counted across both) after this call and everything
    /// following it fail with the injection error, without touching the
    /// backend. Takes `&self` so tests can arm a store already owned by
    /// an index. Write faults are unaffected; combine with a disarmed
    /// `new(_, 0, _)` wrapper to test pure read-failure handling.
    pub fn arm_read_fault(&self, nth: u64) {
        // ordering: Relaxed suffices — test-only trigger config with no
        // other memory it must order.
        self.trip_on_read.store(nth, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
    }

    /// Whether the read fault has fired.
    pub fn read_tripped(&self) -> bool {
        // ordering: Relaxed suffices — a monotone test-only ordinal with
        // no other memory it must order.
        let trip = self.trip_on_read.load(Ordering::Relaxed);
        trip != 0 && self.read_ops.load(Ordering::Relaxed) >= trip
    }

    /// Bumps the read-fault ordinal; `Err` once the trigger is reached.
    fn check_read_fault(&self) -> io::Result<()> {
        // ordering: Relaxed suffices — a monotone test-only ordinal with
        // no other memory it must order.
        let trip = self.trip_on_read.load(Ordering::Relaxed);
        if trip == 0 {
            return Ok(());
        }
        // ordering: Relaxed suffices — same single-purpose ordinal.
        let n = self.read_ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= trip {
            return Err(Self::injected_error());
        }
        Ok(())
    }

    /// The shared operation counters.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Whether the fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The wrapped store (the "disk image" a recovery would see).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn injected_error() -> io::Error {
        io::Error::other("injected fault: device gone")
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn allocate(&mut self) -> io::Result<PageId> {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.counters.allocs.fetch_add(1, Ordering::Relaxed);
        self.inner.allocate()
    }

    fn release(&mut self, id: PageId) {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.counters.releases.fetch_add(1, Ordering::Relaxed);
        self.inner.release(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.check_read_fault()?;
        self.inner.read_into(id, out)
    }

    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.check_read_fault()?;
        self.inner.peek_into(id, out)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        // ordering: Relaxed — the write ordinal is only consulted by
        // this same single-writer `&mut self` path.
        let n = self.counters.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.tripped {
            return Err(Self::injected_error()); // device is gone
        }
        if self.trip_on_write != 0 && n >= self.trip_on_write {
            self.tripped = true;
            if let FaultMode::ShortWrite(keep) = self.mode {
                // A torn page: the written prefix survives, the rest of
                // the page is whatever `write`'s zero-fill left — i.e.
                // we apply a truncated slice through the normal path.
                let keep = keep.min(data.len());
                self.inner.write(id, &data[..keep])?;
            }
            return Err(Self::injected_error());
        }
        self.inner.write(id, data)
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn capacity_pages(&self) -> usize {
        self.inner.capacity_pages()
    }

    fn free_list(&self) -> Vec<PageId> {
        self.inner.free_list()
    }

    fn flush(&mut self) -> io::Result<()> {
        // ordering: Relaxed — independent test-observability counter,
        // read after the exercised store has quiesced.
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        if self.tripped {
            return Err(Self::injected_error());
        }
        self.inner.flush()
    }

    fn backing_path(&self) -> Option<std::path::PathBuf> {
        self.inner.backing_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageFile;

    #[test]
    fn passes_through_until_armed_count() {
        let mut s = FaultStore::new(PageFile::new(), 3, FaultMode::Fail);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, b"one").unwrap();
        s.write(b, b"two").unwrap();
        assert!(!s.tripped());
        assert!(s.write(a, b"three").is_err()); // trips: dropped + surfaced
        assert!(s.tripped());
        assert!(s.write(b, b"four").is_err()); // device stays gone
        assert_eq!(&s.read_page(a).unwrap()[..3], b"one");
        assert_eq!(&s.read_page(b).unwrap()[..3], b"two");
        assert!(s.flush().is_err());
        let c = s.counters();
        assert_eq!(c.writes(), 4);
        assert_eq!(c.allocs(), 2);
        assert_eq!(c.reads(), 2);
        assert_eq!(c.flushes(), 1);
    }

    #[test]
    fn short_write_tears_the_page_and_reports_the_fault() {
        let mut s = FaultStore::new(PageFile::new(), 2, FaultMode::ShortWrite(4));
        let a = s.allocate().unwrap();
        s.write(a, b"full page content").unwrap();
        // Torn: only "REPL" lands, and the caller hears about it.
        assert!(s.write(a, b"REPLACEMENT").is_err());
        let page = s.read_page(a).unwrap();
        assert_eq!(&page[..4], b"REPL");
        assert_eq!(page[4], 0, "the torn tail reads as zeros");
    }

    #[test]
    fn read_fault_trips_reads_and_peeks_but_not_writes() {
        let mut s = FaultStore::new(PageFile::new(), 0, FaultMode::Fail);
        let a = s.allocate().unwrap();
        s.write(a, b"data").unwrap();
        assert_eq!(&s.read_page(a).unwrap()[..4], b"data");
        s.arm_read_fault(2);
        assert_eq!(&s.read_page(a).unwrap()[..4], b"data"); // ordinal 1: still fine
        assert!(s.read_page(a).is_err()); // ordinal 2: trips
        assert!(s.read_tripped());
        let mut buf = [0u8; PAGE_SIZE];
        assert!(s.peek_into(a, &mut buf).is_err()); // peeks share the trigger
        s.write(a, b"still writable").unwrap(); // the write path is independent
        s.arm_read_fault(0); // disarm: reads recover
        assert_eq!(&s.read_page(a).unwrap()[..5], b"still");
        assert!(!s.read_tripped());
    }

    #[test]
    fn disarmed_store_never_trips() {
        let mut s = FaultStore::new(PageFile::new(), 0, FaultMode::Fail);
        let a = s.allocate().unwrap();
        for i in 0..100u8 {
            s.write(a, &[i]).unwrap();
        }
        assert!(!s.tripped());
        assert!(s.flush().is_ok());
    }
}
