//! The [`PageStore`] contract and the in-memory reference backend.

use crate::IoStats;
use std::io;
use std::sync::Arc;

/// Page size in bytes; the paper fixes this to 4096 (Sec 6).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a page store.
pub type PageId = u64;

/// A page-granular store: fixed-size pages addressed by [`PageId`], with
/// every counted access recorded in shared [`IoStats`].
///
/// # Contract
///
/// * [`allocate`](Self::allocate) returns a zeroed page, reusing released
///   ids first. Allocation itself is **not** counted as I/O; the subsequent
///   `write` is.
/// * [`read_into`](Self::read_into) / [`write`](Self::write) are the
///   counted access paths — one call, one recorded page access. `write`
///   accepts at most [`PAGE_SIZE`] bytes and zero-fills the page tail, so a
///   page's content is always fully determined by its last write.
/// * [`peek_into`](Self::peek_into) is the *uncounted* read used by
///   in-place page editors and diagnostics: the caller accounts for I/O
///   itself (e.g. a read-modify-write charged as one read + one write), or
///   is explicitly outside the cost model (invariant checks, statistics,
///   persistence snapshots). Caching stores must serve `peek` from the same
///   coherent view as `read` but must not touch any counter.
/// * [`release`](Self::release) returns a page to the free list; its
///   content becomes unspecified until the id is reallocated (then zeroed).
/// * [`flush`](Self::flush) makes all prior writes durable on backends
///   with volatile state (buffer pools, OS caches). In-memory stores treat
///   it as a no-op.
///
/// # Fallibility
///
/// `allocate`, `read_into`, `peek_into` and `write` return `io::Result`:
/// a backend over real storage surfaces a failed pread/pwrite as a typed
/// error instead of aborting the process, and every wrapper (buffer pool,
/// journaling store, fault injector) propagates it. In-memory backends
/// never fail and always return `Ok`. Reading or writing an id that was
/// never allocated remains a logic error and may panic — fallibility is
/// for the storage medium, not for misuse.
///
/// # Sharing (`Send`/`Sync`)
///
/// The trait deliberately does not require `Send + Sync` — a backend over
/// a thread-bound resource is legal — but every backend in this crate
/// ([`PageFile`], [`crate::DiskPageFile`], [`crate::BufferPool`] over
/// either) is both, and the read-side methods (`read_into`, `peek_into`,
/// `stats`) take `&self` precisely so a shared store can serve many reader
/// threads at once. Implementations that are `Sync` must keep those
/// `&self` paths safe under concurrent callers (the in-memory file reads
/// immutable pages, the disk file uses positional I/O, the buffer pool
/// latches per shard). Mutating methods keep `&mut self`, so updates
/// remain exclusive by construction.
pub trait PageStore {
    /// Allocates a zeroed page (reusing freed pages first; uncounted).
    fn allocate(&mut self) -> io::Result<PageId>;

    /// Returns a page to the free list (uncounted).
    fn release(&mut self, id: PageId);

    /// Reads page `id` into `out` (counted).
    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()>;

    /// Reads page `id` into `out` without touching any counter.
    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()>;

    /// Writes `data` (at most one page) to `id` (counted). Shorter slices
    /// leave the page tail zeroed.
    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()>;

    /// The shared I/O counters of this store.
    fn stats(&self) -> &Arc<IoStats>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// Total allocated pages including freed ones — the extent of the id
    /// space (`0..capacity_pages()` are all valid page ids).
    fn capacity_pages(&self) -> usize;

    /// The currently free (released, unallocated) page ids, in the order
    /// they would be reused (last element first).
    fn free_list(&self) -> Vec<PageId>;

    /// Makes all prior writes durable. In-memory stores are a no-op.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// The on-disk file backing this store, when there is one (caches
    /// report their backend's). Lets persistence layers locate sibling
    /// metadata next to the page file; `None` for in-memory stores.
    fn backing_path(&self) -> Option<std::path::PathBuf> {
        None
    }

    /// Size of the live portion of the store in bytes — the paper's
    /// Table 1 metric.
    fn size_bytes(&self) -> u64 {
        (self.live_pages() * PAGE_SIZE) as u64
    }

    /// [`read_into`](Self::read_into) returning a fresh boxed page.
    fn read_page(&self, id: PageId) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        let mut out = Box::new([0u8; PAGE_SIZE]);
        self.read_into(id, &mut out)?;
        Ok(out)
    }

    /// [`peek_into`](Self::peek_into) returning a fresh boxed page.
    fn peek_page(&self, id: PageId) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        let mut out = Box::new([0u8; PAGE_SIZE]);
        self.peek_into(id, &mut out)?;
        Ok(out)
    }
}

/// The in-memory [`PageStore`]: a `Vec` of pages with simulated I/O
/// accounting — the substrate the paper's "node accesses" experiments run
/// on, and the default backend of every index.
///
/// Experiment harnesses reset the counters around each query to obtain the
/// paper's metric.
#[derive(Debug)]
pub struct PageFile {
    pages: Vec<Box<[u8]>>,
    free: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl Default for PageFile {
    fn default() -> Self {
        Self::new()
    }
}

impl PageFile {
    /// An empty file with fresh counters.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Zero-copy counted read (in-memory only; generic code goes through
    /// [`PageStore::read_into`]).
    pub fn read(&self, id: PageId) -> &[u8] {
        self.stats.record_read();
        &self.pages[id as usize]
    }

    /// Zero-copy uncounted read (see [`PageStore::peek_into`] for the
    /// counting contract).
    pub fn peek(&self, id: PageId) -> &[u8] {
        &self.pages[id as usize]
    }
}

impl PageStore for PageFile {
    fn allocate(&mut self) -> io::Result<PageId> {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = vec![0u8; PAGE_SIZE].into_boxed_slice();
            return Ok(id);
        }
        let id = self.pages.len() as PageId;
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(id)
    }

    fn release(&mut self, id: PageId) {
        debug_assert!((id as usize) < self.pages.len());
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.free.push(id);
    }

    fn read_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.stats.record_read();
        out.copy_from_slice(&self.pages[id as usize]);
        Ok(())
    }

    fn peek_into(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        out.copy_from_slice(&self.pages[id as usize]);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let page = &mut self.pages[id as usize];
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        Ok(())
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    fn free_list(&self) -> Vec<PageId> {
        self.free.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every backend in this crate must stay shareable across threads —
    /// the concurrency contract the query engine builds on. Compile-time
    /// only; if a field ever loses `Send`/`Sync`, this fails to build.
    #[test]
    fn backends_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IoStats>();
        assert_send_sync::<PageFile>();
        assert_send_sync::<crate::DiskPageFile>();
        assert_send_sync::<crate::BufferPool<PageFile>>();
        assert_send_sync::<crate::BufferPool<crate::DiskPageFile>>();
        assert_send_sync::<crate::ObjectHeap<PageFile>>();
        assert_send_sync::<crate::ObjectHeap<crate::BufferPool<crate::DiskPageFile>>>();
        assert_send_sync::<crate::ShadowPageFile>();
        assert_send_sync::<crate::FaultStore<PageFile>>();
        assert_send_sync::<crate::WalStore<crate::DiskPageFile>>();
        assert_send_sync::<crate::BufferPool<crate::WalStore<crate::DiskPageFile>>>();
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut f = PageFile::new();
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        f.write(a, b"hello").unwrap();
        f.write(b, &[9u8; PAGE_SIZE]).unwrap();
        let pa = f.read(a);
        assert_eq!(&pa[..5], b"hello");
        assert_eq!(pa[5], 0);
        assert_eq!(f.read(b)[PAGE_SIZE - 1], 9);
        assert_eq!(f.stats().reads(), 2);
        assert_eq!(f.stats().writes(), 2);
    }

    #[test]
    fn trait_read_matches_zero_copy_read() {
        let mut f = PageFile::new();
        let a = f.allocate().unwrap();
        f.write(a, b"trait").unwrap();
        let boxed = f.read_page(a).unwrap();
        assert_eq!(&boxed[..5], b"trait");
        let mut buf = [0u8; PAGE_SIZE];
        f.peek_into(a, &mut buf).unwrap();
        assert_eq!(buf[..], boxed[..]);
        // One counted read (read_page); peek stays uncounted.
        assert_eq!(f.stats().reads(), 1);
    }

    #[test]
    fn shorter_write_zeroes_tail() {
        let mut f = PageFile::new();
        let a = f.allocate().unwrap();
        f.write(a, &[1u8; 100]).unwrap();
        f.write(a, &[2u8; 10]).unwrap();
        let page = f.read(a);
        assert_eq!(page[9], 2);
        assert_eq!(page[10], 0);
    }

    #[test]
    fn release_reuses_pages() {
        let mut f = PageFile::new();
        let a = f.allocate().unwrap();
        let _b = f.allocate().unwrap();
        assert_eq!(f.live_pages(), 2);
        f.release(a);
        assert_eq!(f.live_pages(), 1);
        assert_eq!(f.free_list(), vec![a]);
        let c = f.allocate().unwrap();
        assert_eq!(c, a);
        assert_eq!(f.live_pages(), 2);
        assert_eq!(f.capacity_pages(), 2);
        // Reused page must come back zeroed.
        assert!(f.peek(c).iter().all(|&x| x == 0));
    }

    #[test]
    fn size_accounting() {
        let mut f = PageFile::new();
        for _ in 0..3 {
            f.allocate().unwrap();
        }
        assert_eq!(f.size_bytes(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let mut f = PageFile::new();
        let a = f.allocate().unwrap();
        let _ = f.write(a, &[0u8; PAGE_SIZE + 1]);
    }
}
