//! The page-granular store.

use crate::IoStats;
use std::sync::Arc;

/// Page size in bytes; the paper fixes this to 4096 (Sec 6).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`PageFile`].
pub type PageId = u64;

/// An in-memory simulation of a paged disk file.
///
/// Every `read`/`write` bumps the shared [`IoStats`]; experiment harnesses
/// reset the counters around each query to obtain the paper's
/// "node accesses" metric.
#[derive(Debug)]
pub struct PageFile {
    pages: Vec<Box<[u8]>>,
    free: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl Default for PageFile {
    fn default() -> Self {
        Self::new()
    }
}

impl PageFile {
    /// An empty file with fresh counters.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Allocates a zeroed page (reusing freed pages first). Allocation
    /// itself is not counted as I/O; the subsequent `write` is.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = vec![0u8; PAGE_SIZE].into_boxed_slice();
            return id;
        }
        let id = self.pages.len() as PageId;
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        id
    }

    /// Returns a page to the free list.
    pub fn release(&mut self, id: PageId) {
        debug_assert!((id as usize) < self.pages.len());
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.free.push(id);
    }

    /// Reads a page (counted).
    pub fn read(&self, id: PageId) -> &[u8] {
        self.stats.record_read();
        &self.pages[id as usize]
    }

    /// Writes `data` (at most one page) to `id` (counted). Shorter slices
    /// leave the page tail zeroed.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(data.len() <= PAGE_SIZE, "page overflow: {}", data.len());
        self.stats.record_write();
        let page = &mut self.pages[id as usize];
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
    }

    /// Uncounted read used by in-place page editors (the caller accounts
    /// for I/O itself, e.g. read-modify-write as a single read + write).
    pub fn peek(&self, id: PageId) -> &[u8] {
        &self.pages[id as usize]
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total allocated pages including freed ones.
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// Size of the live portion of the file in bytes — the paper's Table 1
    /// metric.
    pub fn size_bytes(&self) -> u64 {
        (self.live_pages() * PAGE_SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut f = PageFile::new();
        let a = f.allocate();
        let b = f.allocate();
        f.write(a, b"hello");
        f.write(b, &[9u8; PAGE_SIZE]);
        let pa = f.read(a);
        assert_eq!(&pa[..5], b"hello");
        assert_eq!(pa[5], 0);
        assert_eq!(f.read(b)[PAGE_SIZE - 1], 9);
        assert_eq!(f.stats().reads(), 2);
        assert_eq!(f.stats().writes(), 2);
    }

    #[test]
    fn shorter_write_zeroes_tail() {
        let mut f = PageFile::new();
        let a = f.allocate();
        f.write(a, &[1u8; 100]);
        f.write(a, &[2u8; 10]);
        let page = f.read(a);
        assert_eq!(page[9], 2);
        assert_eq!(page[10], 0);
    }

    #[test]
    fn release_reuses_pages() {
        let mut f = PageFile::new();
        let a = f.allocate();
        let _b = f.allocate();
        assert_eq!(f.live_pages(), 2);
        f.release(a);
        assert_eq!(f.live_pages(), 1);
        let c = f.allocate();
        assert_eq!(c, a);
        assert_eq!(f.live_pages(), 2);
        assert_eq!(f.capacity_pages(), 2);
        // Reused page must come back zeroed.
        assert!(f.peek(c).iter().all(|&x| x == 0));
    }

    #[test]
    fn size_accounting() {
        let mut f = PageFile::new();
        for _ in 0..3 {
            f.allocate();
        }
        assert_eq!(f.size_bytes(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let mut f = PageFile::new();
        let a = f.allocate();
        f.write(a, &[0u8; PAGE_SIZE + 1]);
    }
}
