//! Simulated paged storage with I/O accounting.
//!
//! The paper measures query cost in *node accesses* against a 4096-byte page
//! size (Sec 6). This crate provides the storage substrate both trees sit
//! on:
//!
//! * [`PageFile`] — a page-granular store where every read/write is counted
//!   (one tree node = one page, exactly like the paper's setup);
//! * [`ObjectHeap`] — a slotted-page heap file holding the "details of
//!   `o.ur` and the parameters of `o.pdf`" that leaf entries point to; the
//!   refinement step groups candidates by page and performs **one I/O per
//!   page** (Sec 5.2);
//! * [`codec`] — little-endian byte readers/writers. On-page floats are
//!   stored as `f32` (computation stays `f64`): this matches the paper's
//!   entry-size arithmetic (Table 1) and is standard practice for
//!   coordinate data.

pub mod codec;
mod heap;
mod iostats;
mod pagefile;

pub use codec::{f32_round_down, f32_round_up, ByteReader, ByteWriter};
pub use heap::{ObjectHeap, RecordAddr};
pub use iostats::IoStats;
pub use pagefile::{PageFile, PageId, PAGE_SIZE};
