//! Paged storage with I/O accounting: one trait, three backends.
//!
//! The paper measures query cost in *node accesses* against a 4096-byte
//! page size (Sec 6). This crate provides the storage substrate both trees
//! sit on, behind the [`PageStore`] trait
//! (allocate / release / read / write / stats):
//!
//! * [`PageFile`] — the in-memory reference backend where every counted
//!   read/write bumps simulated counters (one tree node = one page,
//!   exactly like the paper's setup);
//! * [`DiskPageFile`] — the same page space on a real file
//!   (positional I/O, free list persisted in a superblock), so indexes can
//!   be saved and reopened cold;
//! * [`BufferPool`] — a capacity-bounded LRU cache over any backend with
//!   dirty-page write-back, lock-striped into per-shard latches so
//!   concurrent readers of a shared index don't serialise on one global
//!   lock. Its own [`IoStats`] count *logical* accesses (plus cache
//!   hits/misses); the wrapped backend keeps counting *physical*
//!   transfers.
//!
//! All three backends are `Send + Sync`; the counted/uncounted read paths
//! take `&self`, so one store can serve many reader threads at once (see
//! the [`PageStore`] sharing contract).
//!
//! ## Counting contract
//!
//! [`PageStore::read_into`] and [`PageStore::write`] are counted: one call,
//! one recorded access on [`PageStore::stats`]. [`PageStore::peek_into`]
//! bypasses counting on **every** backend — it exists for in-place page
//! editors that account for I/O themselves (a read-modify-write charged as
//! one read + one write, as [`ObjectHeap::insert`] does) and for
//! out-of-model access (invariant checks, structure statistics,
//! persistence snapshots). A [`BufferPool`] still serves `peek` from the
//! coherent cached view, but touches neither its logical counters nor its
//! hit/miss counters.
//!
//! The other pieces:
//!
//! * [`ObjectHeap`] — a slotted-page heap file (generic over its store)
//!   holding the "details of `o.ur` and the parameters of `o.pdf`" that
//!   leaf entries point to; the refinement step groups candidates by page
//!   and performs **one I/O per page** (Sec 5.2);
//! * [`codec`] — little-endian byte readers/writers. On-page floats are
//!   stored as `f32` (computation stays `f64`): this matches the paper's
//!   entry-size arithmetic (Table 1) and is standard practice for
//!   coordinate data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod codec;
pub mod wal;

mod buffer;
mod disk;
mod fault;
mod heap;
mod iostats;
mod pagefile;
mod shadow;

pub use buffer::BufferPool;
pub use codec::{byte_array, f32_round_down, f32_round_up, ByteReader, ByteWriter};
pub use disk::DiskPageFile;
pub use fault::{FaultCounters, FaultMode, FaultStore};
pub use heap::{ObjectHeap, RecordAddr};
pub use iostats::IoStats;
pub use pagefile::{PageFile, PageId, PageStore, PAGE_SIZE};
pub use shadow::ShadowPageFile;
pub use wal::{fsync_dir, CommitReceipt, ReplayTarget, Wal, WalRecord, WalStore};
