//! Slotted-page heap file for object detail records.
//!
//! Leaf entries of both trees carry a [`RecordAddr`] pointing at the page
//! (and slot) holding the serialized uncertainty region + pdf parameters.
//! During refinement the query engine groups candidates by page so that
//! "for each address, one I/O is performed to load the detailed information
//! of all relevant candidates" (paper Sec 5.2).
//!
//! The heap is generic over its [`PageStore`], so the same slotted-page
//! code runs over the in-memory [`PageFile`], a [`crate::DiskPageFile`],
//! or a [`crate::BufferPool`] — only the I/O cost changes.

use crate::{PageFile, PageId, PageStore, PAGE_SIZE};
use std::io;

/// Page layout:
/// `[n_slots: u16][data_start: u16]` then `n_slots` descriptors of
/// `[offset: u16][len: u16]`; record bytes grow downward from the page end.
/// A zero-length descriptor is a tombstone.
const HEADER: usize = 4;
const SLOT: usize = 4;

/// Address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordAddr {
    /// Heap page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

/// An append-mostly heap of variable-length records packed into pages.
/// Cloning (when the store is `Clone`) clones the store with the store's
/// own semantics — on a copy-on-write store this is the cheap epoch fork.
#[derive(Debug, Default, Clone)]
pub struct ObjectHeap<S: PageStore = PageFile> {
    file: S,
    /// Page currently being filled.
    open_page: Option<PageId>,
}

impl ObjectHeap<PageFile> {
    /// An empty in-memory heap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S: PageStore> ObjectHeap<S> {
    /// An empty heap over the given store.
    pub fn with_store(file: S) -> Self {
        Self {
            file,
            open_page: None,
        }
    }

    /// Reattaches a heap persisted elsewhere: the store already holds the
    /// pages; `open_page` is the page inserts were filling (if any).
    pub fn from_raw_parts(file: S, open_page: Option<PageId>) -> Self {
        Self { file, open_page }
    }

    /// Underlying page store (for I/O statistics and size reporting).
    pub fn file(&self) -> &S {
        &self.file
    }

    /// Mutable access to the underlying store (flushing, pool tuning).
    pub fn file_mut(&mut self) -> &mut S {
        &mut self.file
    }

    /// The page inserts are currently filling (persistence metadata).
    pub fn open_page(&self) -> Option<PageId> {
        self.open_page
    }

    /// Inserts a record; returns its address.
    ///
    /// Records must fit a page (`len + 8 <= PAGE_SIZE`); the object records
    /// of the paper's datasets are well under 100 bytes.
    pub fn insert(&mut self, record: &[u8]) -> io::Result<RecordAddr> {
        assert!(
            record.len() + HEADER + SLOT <= PAGE_SIZE,
            "record of {} bytes cannot fit a page",
            record.len()
        );
        if let Some(page) = self.open_page {
            if let Some(addr) = self.try_append(page, record)? {
                return Ok(addr);
            }
        }
        let page = self.file.allocate()?;
        // Fresh page: initialise header (n=0, data_start=PAGE_SIZE).
        let mut buf = [0u8; PAGE_SIZE];
        buf[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        self.file.write(page, &buf)?;
        self.open_page = Some(page);
        Ok(self
            .try_append(page, record)?
            // xlint: allow(panic-freedom) -- invariant: fresh page must accept the record
            .expect("fresh page must accept the record"))
    }

    /// Appends to `page` if space allows; one read + one write when it does.
    fn try_append(&mut self, page: PageId, record: &[u8]) -> io::Result<Option<RecordAddr>> {
        let mut buf = self.file.peek_page(page)?;
        let n_slots = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let data_start = u16::from_le_bytes([buf[2], buf[3]]) as usize;
        let slot_table_end = HEADER + (n_slots + 1) * SLOT;
        if slot_table_end + record.len() > data_start {
            return Ok(None);
        }
        self.file.stats().record_read();
        let new_start = data_start - record.len();
        buf[new_start..data_start].copy_from_slice(record);
        let slot_off = HEADER + n_slots * SLOT;
        buf[slot_off..slot_off + 2].copy_from_slice(&(new_start as u16).to_le_bytes());
        buf[slot_off + 2..slot_off + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        buf[0..2].copy_from_slice(&((n_slots + 1) as u16).to_le_bytes());
        buf[2..4].copy_from_slice(&(new_start as u16).to_le_bytes());
        self.file.write(page, &buf[..])?;
        Ok(Some(RecordAddr {
            page,
            slot: n_slots as u16,
        }))
    }

    /// Reads one record (counted as one page read).
    pub fn get(&self, addr: RecordAddr) -> io::Result<Option<Vec<u8>>> {
        let buf = self.file.read_page(addr.page)?;
        Ok(Self::record_in(&buf[..], addr.slot))
    }

    /// Reads a whole page and returns every live record with its slot —
    /// the refinement step's one-I/O-per-page access path.
    pub fn page_records(&self, page: PageId) -> io::Result<Vec<(u16, Vec<u8>)>> {
        let buf = self.file.read_page(page)?;
        let n_slots = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let mut out = Vec::with_capacity(n_slots);
        for slot in 0..n_slots {
            if let Some(rec) = Self::record_in(&buf[..], slot as u16) {
                out.push((slot as u16, rec));
            }
        }
        Ok(out)
    }

    fn record_in(buf: &[u8], slot: u16) -> Option<Vec<u8>> {
        let n_slots = u16::from_le_bytes([buf[0], buf[1]]);
        if slot >= n_slots {
            return None;
        }
        let off = HEADER + slot as usize * SLOT;
        let start = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let len = u16::from_le_bytes([buf[off + 2], buf[off + 3]]) as usize;
        if len == 0 {
            return None;
        }
        Some(buf[start..start + len].to_vec())
    }

    /// Tombstones a record (read + write of its page). Space is not
    /// compacted — deletions in the paper's workload are index-side.
    pub fn remove(&mut self, addr: RecordAddr) -> io::Result<()> {
        let mut buf = self.file.read_page(addr.page)?;
        let n_slots = u16::from_le_bytes([buf[0], buf[1]]);
        assert!(addr.slot < n_slots, "remove of unknown slot");
        let off = HEADER + addr.slot as usize * SLOT;
        buf[off + 2..off + 4].copy_from_slice(&0u16.to_le_bytes());
        self.file.write(addr.page, &buf[..])
    }

    /// Size of the heap in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.file.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut h = ObjectHeap::new();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap().unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap().unwrap(), b"beta");
    }

    #[test]
    fn records_pack_into_shared_pages() {
        let mut h = ObjectHeap::new();
        let a = h.insert(&[1u8; 100]).unwrap();
        let b = h.insert(&[2u8; 100]).unwrap();
        assert_eq!(a.page, b.page, "small records should share a page");
        assert_ne!(a.slot, b.slot);
    }

    #[test]
    fn page_overflows_to_next() {
        let mut h = ObjectHeap::new();
        let big = vec![7u8; 1500];
        let a = h.insert(&big).unwrap();
        let b = h.insert(&big).unwrap();
        let c = h.insert(&big).unwrap();
        assert_eq!(a.page, b.page);
        assert_ne!(a.page, c.page, "third 1500B record cannot fit the page");
    }

    #[test]
    fn page_records_returns_all_live() {
        let mut h = ObjectHeap::new();
        let a = h.insert(b"one").unwrap();
        let _b = h.insert(b"two").unwrap();
        let _c = h.insert(b"three").unwrap();
        h.remove(a).unwrap();
        let recs = h.page_records(a.page).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|(_, r)| r == b"two"));
        assert!(recs.iter().any(|(_, r)| r == b"three"));
    }

    #[test]
    fn removed_record_is_gone() {
        let mut h = ObjectHeap::new();
        let a = h.insert(b"dead").unwrap();
        h.remove(a).unwrap();
        assert!(h.get(a).unwrap().is_none());
    }

    #[test]
    fn many_records_addressable() {
        let mut h = ObjectHeap::new();
        let addrs: Vec<_> = (0..500u32)
            .map(|i| {
                let mut rec = vec![0u8; 40];
                rec[..4].copy_from_slice(&i.to_le_bytes());
                h.insert(&rec).unwrap()
            })
            .collect();
        for (i, addr) in addrs.iter().enumerate() {
            let rec = h.get(*addr).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(rec[..4].try_into().unwrap()), i as u32);
        }
        assert!(
            h.file().live_pages() > 1,
            "40B x500 records must span pages"
        );
    }

    #[test]
    fn heap_works_over_a_buffer_pool() {
        let pool = crate::BufferPool::new(PageFile::new(), 2);
        let mut h = ObjectHeap::with_store(pool);
        let addrs: Vec<_> = (0..300u32)
            .map(|i| h.insert(&i.to_le_bytes()).unwrap())
            .collect();
        for (i, addr) in addrs.iter().enumerate() {
            let rec = h.get(*addr).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(rec[..4].try_into().unwrap()), i as u32);
        }
        assert!(h.file().resident_pages() <= 2);
    }
}
