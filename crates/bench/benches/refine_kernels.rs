//! Criterion micro-benchmarks of the Monte-Carlo refinement kernels: the
//! scalar per-sample oracle (`MonteCarlo::estimate`) against the chunked
//! SoA kernel path (`MonteCarlo::estimate_with` over a `PreparedPdf` and a
//! reused `RefineScratch`), per PDF variant.
//!
//! The kernel path is the one the query engine runs; the scalar path is
//! kept as the equivalence oracle. The interesting number is the ratio —
//! a regression back to per-sample enum dispatch shows up here first (and
//! in `check_bench.py`'s refine-cost gate on the committed baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uncertain_geom::{Point, Rect};
use uncertain_pdf::{HistogramPdf, MonteCarlo, ObjectPdf, PreparedPdf, RefineScratch};

const N1: usize = 10_000;

/// The four PDF variants at the paper's Sec 6 object scale: 250-unit
/// supports in a 10k² space, query rect overlapping roughly half the
/// support so neither short-circuit fires.
fn variants() -> Vec<(&'static str, ObjectPdf<2>)> {
    let center = Point::new([5_000.0, 5_000.0]);
    vec![
        (
            "uniform_ball",
            ObjectPdf::UniformBall {
                center,
                radius: 250.0,
            },
        ),
        (
            "uniform_box",
            ObjectPdf::UniformBox {
                rect: Rect::new([4_750.0, 4_800.0], [5_250.0, 5_150.0]),
            },
        ),
        (
            "con_gau_ball",
            ObjectPdf::ConGauBall {
                center,
                radius: 250.0,
                sigma: 125.0,
            },
        ),
        (
            "histogram",
            ObjectPdf::Histogram(HistogramPdf::from_fn(
                Rect::new([4_750.0, 4_750.0], [5_250.0, 5_250.0]),
                [8, 8],
                |p| {
                    let dx = p.coords[0] - 5_000.0;
                    let dy = p.coords[1] - 5_000.0;
                    (-(dx * dx + dy * dy) / 50_000.0).exp()
                },
            )),
        ),
    ]
}

fn query_rect() -> Rect<2> {
    Rect::new([4_900.0, 4_850.0], [5_400.0, 5_300.0])
}

fn bench_scalar(c: &mut Criterion) {
    let rq = query_rect();
    let mc = MonteCarlo::new(N1);
    let mut g = c.benchmark_group("refine_scalar_n10k");
    for (name, pdf) in variants() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(9);
                black_box(mc.estimate(&pdf, &rq, &mut rng))
            })
        });
    }
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let rq = query_rect();
    let mc = MonteCarlo::new(N1);
    let mut g = c.benchmark_group("refine_kernel_n10k");
    for (name, pdf) in variants() {
        // The scratch is reused across iterations exactly as QueryCtx
        // reuses it across candidates: steady state is allocation-free.
        let mut scratch = RefineScratch::new();
        g.bench_function(name, |b| {
            b.iter(|| {
                let prepared = PreparedPdf::new(&pdf);
                let mut rng = SmallRng::seed_from_u64(9);
                black_box(mc.estimate_with(&prepared, &rq, &mut rng, &mut scratch))
            })
        });
    }
    g.finish();
}

fn bench_prepare(c: &mut Criterion) {
    // PreparedPdf is rebuilt per candidate (it borrows the pdf), so its
    // construction must stay negligible next to n1 samples.
    let mut g = c.benchmark_group("prepare_pdf");
    for (name, pdf) in variants() {
        g.bench_function(name, |b| b.iter(|| black_box(PreparedPdf::new(&pdf))));
    }
    g.finish();
}

criterion_group!(benches, bench_scalar, bench_kernel, bench_prepare);
criterion_main!(benches);
