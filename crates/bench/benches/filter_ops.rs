//! Criterion micro-benchmarks of the per-object filter machinery:
//! the operations whose costs drive Fig 7 (Monte-Carlo) and Fig 11a's CPU
//! breakdown (PCR computation + Simplex CFB fitting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uncertain_geom::{Point, Rect};
use uncertain_pdf::{MonteCarlo, ObjectPdf};
use utree::{filter_object, fit_cfb_pair, CfbView, PcrSet, UCatalog};

fn disk() -> ObjectPdf<2> {
    ObjectPdf::UniformBall {
        center: Point::new([5_000.0, 5_000.0]),
        radius: 250.0,
    }
}

fn congau() -> ObjectPdf<2> {
    ObjectPdf::ConGauBall {
        center: Point::new([5_000.0, 5_000.0]),
        radius: 250.0,
        sigma: 125.0,
    }
}

fn bench_pcr_compute(c: &mut Criterion) {
    let cat = UCatalog::paper_utree_default();
    let mut g = c.benchmark_group("pcr_compute_m15");
    g.bench_function("uniform_disk", |b| {
        let pdf = disk();
        b.iter(|| black_box(PcrSet::compute(&pdf, &cat)))
    });
    g.bench_function("con_gau", |b| {
        let pdf = congau();
        b.iter(|| black_box(PcrSet::compute(&pdf, &cat)))
    });
    g.bench_function("uniform_sphere_3d", |b| {
        let pdf: ObjectPdf<3> = ObjectPdf::UniformBall {
            center: Point::new([5_000.0, 5_000.0, 5_000.0]),
            radius: 125.0,
        };
        b.iter(|| black_box(PcrSet::compute(&pdf, &cat)))
    });
    g.finish();
}

fn bench_cfb_fit(c: &mut Criterion) {
    // Fig 11a's "simplex" slice: 3 LPs per dimension per object.
    let mut g = c.benchmark_group("cfb_fit_simplex");
    for m in [5usize, 9, 15] {
        let cat = UCatalog::uniform(m);
        let pcrs = PcrSet::compute(&disk(), &cat);
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| black_box(fit_cfb_pair(&pcrs, &cat)))
        });
    }
    g.finish();
}

fn bench_filter_object(c: &mut Criterion) {
    // The O(d·m) decision the tree makes per inspected leaf entry — must
    // be orders of magnitude below one Monte-Carlo integration.
    let cat = UCatalog::paper_utree_default();
    let pdf = disk();
    let pcrs = PcrSet::compute(&pdf, &cat);
    let pair = fit_cfb_pair(&pcrs, &cat);
    let mbr = pdf.mbr();
    let rq = Rect::new([4_900.0, 4_800.0], [5_400.0, 5_300.0]);
    let mut g = c.benchmark_group("filter_object");
    g.bench_function("cfb_view", |b| {
        let view = CfbView {
            pair: &pair,
            catalog: &cat,
        };
        b.iter(|| black_box(filter_object(&view, &mbr, &cat, &rq, 0.6)))
    });
    g.bench_function("exact_pcrs", |b| {
        b.iter(|| black_box(filter_object(&pcrs, &mbr, &cat, &rq, 0.6)))
    });
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    // Fig 7's per-computation time at representative n1 values.
    let pdf = disk();
    let rq = Rect::new([4_900.0, 4_800.0], [5_400.0, 5_300.0]);
    let mut g = c.benchmark_group("monte_carlo_papp");
    g.sample_size(10);
    for n1 in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("n1", n1), &n1, |b, &n1| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mc = MonteCarlo::new(n1);
            b.iter(|| black_box(mc.estimate(&pdf, &rq, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pcr_compute,
    bench_cfb_fit,
    bench_filter_object,
    bench_monte_carlo
);
criterion_main!(benches);
