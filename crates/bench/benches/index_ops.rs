//! Criterion benchmarks of whole-index operations: the per-query costs
//! behind Fig 9/10 and the per-update costs behind Fig 11, plus the
//! baseline R*-tree substrate for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rstar_base::RectRStarTree;
use std::hint::black_box;
use uncertain_geom::Rect;
use utree::{ProbRangeQuery, Query, RefineMode, UCatalog, UPcrTree, UTree};

const N: usize = 4_000;

fn dataset() -> Vec<uncertain_pdf::UncertainObject<2>> {
    datagen::lb_dataset(N, 1)
}

fn bench_insert(c: &mut Criterion) {
    let objs = dataset();
    let mut g = c.benchmark_group("insert");
    g.sample_size(10);
    g.bench_function("utree_4k", |b| {
        b.iter(|| {
            let mut t = UTree::<2>::new(UCatalog::paper_utree_default());
            for o in objs.iter().take(1_000) {
                t.insert(o);
            }
            black_box(t.len())
        })
    });
    g.bench_function("upcr_4k", |b| {
        b.iter(|| {
            let mut t = UPcrTree::<2>::new(UCatalog::uniform(9));
            for o in objs.iter().take(1_000) {
                t.insert(o);
            }
            black_box(t.len())
        })
    });
    g.bench_function("rstar_baseline_4k", |b| {
        b.iter(|| {
            let mut t = RectRStarTree::<2>::new();
            for o in objs.iter().take(1_000) {
                t.insert(o.mbr(), o.id);
            }
            black_box(t.len())
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let objs = dataset();
    let mut utree = UTree::<2>::new(UCatalog::paper_utree_default());
    let mut upcr = UPcrTree::<2>::new(UCatalog::uniform(9));
    for o in &objs {
        utree.insert(o);
        upcr.insert(o);
    }
    let mut rng = SmallRng::seed_from_u64(5);
    let queries: Vec<ProbRangeQuery<2>> = (0..64)
        .map(|_| {
            let i = rng.gen_range(0..objs.len());
            let c = objs[i].mbr().center();
            ProbRangeQuery::new(Rect::cube(&c, 1_500.0), 0.6)
        })
        .collect();
    let mode = RefineMode::MonteCarlo {
        n1: 10_000,
        seed: 3,
    };

    let mut g = c.benchmark_group("prob_range_query_qs1500_pq0.6");
    for (name, run) in [
        (
            "utree",
            Box::new(|q: &ProbRangeQuery<2>| utree.execute(&Query::from_prob_range(*q, mode)).len())
                as Box<dyn Fn(&ProbRangeQuery<2>) -> usize>,
        ),
        (
            "upcr",
            Box::new(|q: &ProbRangeQuery<2>| upcr.execute(&Query::from_prob_range(*q, mode)).len()),
        ),
    ] {
        let mut k = 0usize;
        g.bench_function(name, |b| {
            b.iter(|| {
                let q = &queries[k % queries.len()];
                k += 1;
                black_box(run(q))
            })
        });
    }
    g.finish();
}

fn bench_threshold_sensitivity(c: &mut Criterion) {
    // Fig 10 per-op: the same query region at different thresholds.
    let objs = dataset();
    let mut utree = UTree::<2>::new(UCatalog::paper_utree_default());
    for o in &objs {
        utree.insert(o);
    }
    let center = objs[7].mbr().center();
    let region = Rect::cube(&center, 1_500.0);
    let mode = RefineMode::MonteCarlo {
        n1: 10_000,
        seed: 3,
    };
    let mut g = c.benchmark_group("query_vs_threshold");
    for pq in [0.3f64, 0.6, 0.9] {
        g.bench_with_input(BenchmarkId::new("pq", pq), &pq, |b, &pq| {
            let q = Query::from_prob_range(ProbRangeQuery::new(region, pq), mode);
            b.iter(|| black_box(utree.execute(&q).len()))
        });
    }
    g.finish();
}

fn bench_delete(c: &mut Criterion) {
    let objs = dataset();
    let mut g = c.benchmark_group("delete");
    g.sample_size(10);
    g.bench_function("utree_build_and_drain_1k", |b| {
        b.iter(|| {
            let mut t = UTree::<2>::new(UCatalog::uniform(9));
            for o in objs.iter().take(1_000) {
                t.insert(o);
            }
            for o in objs.iter().take(1_000) {
                assert!(t.delete(o));
            }
            black_box(t.len())
        })
    });
    g.finish();
}

fn bench_rstar_query_baseline(c: &mut Criterion) {
    // Conventional range search on precise data (Sec 2.2) — context for
    // how much the probabilistic machinery costs on top.
    let objs = dataset();
    let mut t = RectRStarTree::<2>::new();
    for o in &objs {
        t.insert(o.mbr(), o.id);
    }
    let region = Rect::cube(&objs[7].mbr().center(), 1_500.0);
    c.bench_function("rstar_precise_range_baseline", |b| {
        b.iter(|| black_box(t.range(&region).len()))
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_query,
    bench_threshold_sensitivity,
    bench_delete,
    bench_rstar_query_baseline
);
criterion_main!(benches);
