//! Top-k ranking cost: the PCR-bounded best-first traversal vs the
//! refine-everything sequential oracle, swept over k.
//!
//! For every k the two backends must return *identical* ranked answers
//! (hard assert — deterministic quadrature refinement), and the bounded
//! traversal must compute strictly fewer appearance probabilities than
//! the oracle on the bench dataset — the acceptance gate of the ranking
//! workload.
//!
//! Emits one machine-readable `TOPK_SCALING_JSON:` line so future PRs can
//! track the pruning power from CI logs.
//!
//! Knobs: `UTREE_SCALE`, `UTREE_QUERIES` (queries per k).

use bench::{fmt, print_table, HarnessConfig};
use utree::{ProbIndex, Query, QueryCtx, QueryStats, RankQuery, Refine, SeqScan, UTree};

const K_SWEEP: [usize; 5] = [1, 5, 10, 25, 50];
const QS: f64 = 2_000.0;

struct Sample {
    k: usize,
    utree: QueryStats,
    scan: QueryStats,
    queries: usize,
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    println!(
        "scale {} | {} objects | {} queries per k | reference refinement",
        cfg.scale, n, cfg.queries
    );

    let objs = datagen::lb_dataset(n, 1);
    let mut tree = UTree::<2>::builder().build().expect("paper catalog");
    let mut scan = SeqScan::<2>::builder().build().expect("paper catalog");
    tree.bulk_load(&objs);
    scan.bulk_load(&objs);
    let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut ctx_tree = QueryCtx::new();
    let mut ctx_scan = QueryCtx::new();
    for &k in &K_SWEEP {
        let queries: Vec<RankQuery<2>> =
            datagen::workload(&centers, QS, 0.0, cfg.queries, k as u64)
                .queries
                .iter()
                .map(|q| {
                    Query::range(q.region)
                        .top(k)
                        // Deterministic quadrature: byte-comparable answers.
                        .refine(Refine::reference(1e-8))
                        .build()
                        .expect("valid ranking query")
                })
                .collect();
        let mut acc_tree = QueryStats::default();
        let mut acc_scan = QueryStats::default();
        for (qi, q) in queries.iter().enumerate() {
            let a = tree.rank_topk_with(q, &mut ctx_tree);
            let b = scan.rank_topk_with(q, &mut ctx_scan);
            assert_eq!(
                a.matches, b.matches,
                "k={k} query {qi}: bounded traversal diverged from the oracle"
            );
            acc_tree += &a.stats;
            acc_scan += &b.stats;
        }
        samples.push(Sample {
            k,
            utree: acc_tree,
            scan: acc_scan,
            queries: queries.len(),
        });
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let nq = s.queries as f64;
            vec![
                s.k.to_string(),
                fmt(s.utree.prob_computations as f64 / nq),
                fmt(s.scan.prob_computations as f64 / nq),
                fmt(s.utree.node_reads as f64 / nq),
                fmt(s.scan.node_reads as f64 / nq),
                format!(
                    "{:.0}%",
                    100.0
                        * (1.0
                            - s.utree.prob_computations as f64
                                / s.scan.prob_computations.max(1) as f64)
                ),
            ]
        })
        .collect();
    print_table(
        "top-k ranking: avg cost per query (identical answers verified per query)",
        &[
            "k",
            "probes U-tree",
            "probes scan",
            "nodes U-tree",
            "nodes scan",
            "probes saved",
        ],
        &rows,
    );

    let json_results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"k":{},"utree_probes":{},"scan_probes":{},"utree_nodes":{},"scan_nodes":{}}}"#,
                s.k,
                s.utree.prob_computations,
                s.scan.prob_computations,
                s.utree.node_reads,
                s.scan.node_reads
            )
        })
        .collect();
    println!(
        r#"TOPK_SCALING_JSON: {{"bench":"topk_scaling","objects":{},"queries_per_k":{},"results":[{}]}}"#,
        n,
        cfg.queries,
        json_results.join(",")
    );

    // Acceptance gate: the whole point of the bounded traversal is to
    // skip probability computations. Fewer per sweep point, strictly.
    for s in &samples {
        assert!(
            s.utree.prob_computations < s.scan.prob_computations,
            "k={}: bounded traversal computed {} probabilities, oracle {}",
            s.k,
            s.utree.prob_computations,
            s.scan.prob_computations
        );
    }
    println!("pruning gate: OK — bounded traversal refined strictly less at every k");
}
