//! STR bulk load vs repeated insert (the Table-1-style build experiment
//! for the packed serving tier): build the same dataset both ways, save
//! both, and serve an identical workload cold through the same buffer
//! pool.
//!
//! Two figures must favour the packed build, and both are hard-asserted:
//!
//! * **build wall-clock** — one payload pass + an O(n log n) STR sort
//!   beats n root-to-leaf descents with R* splits/reinsertions;
//! * **physical node reads per workload** — full fan-out packing means
//!   fewer node pages overall and a level-contiguous layout on disk, so
//!   the same queries pull fewer pages off the file.
//!
//! Emits a `BULKLOAD_SCALING_JSON:` line; CI compares it against the
//! committed `BENCH_bulkload.json` via `scripts/check_bench.py`.

use bench::{fmt, fmt_mb, print_table, timed, HarnessConfig};
use datagen::workload;
use utree::{DiskUTree, ProbRangeQuery, Query, Refine, UTree};

const QS: f64 = 1_000.0;
const PQ: f64 = 0.6;
const POOL_FRAMES: usize = 256;

struct BuildSample {
    build: &'static str,
    build_secs: f64,
    index_bytes: u64,
    node_pages: u64,
    phys_node_reads: u64,
    phys_heap_reads: u64,
}

fn serve(tree: &UTree<2>, tag: &str, queries: &[ProbRangeQuery<2>]) -> (u64, u64) {
    let mut dir = std::env::temp_dir();
    dir.push(format!("utree-bulkbench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tree.save(&dir).expect("save index");
    let reopened = DiskUTree::<2>::open(&dir, POOL_FRAMES).expect("open saved index");
    // Quadrature refinement: pure CPU, identical for both builds — only
    // the I/O being measured differs.
    let mode = Refine::reference(1e-6);
    for q in queries {
        let _ = reopened.execute(&Query::from_prob_range(*q, mode));
    }
    let node = reopened.node_store().backend_stats().reads();
    let heap = reopened.heap().file().backend_stats().reads();
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    (node, heap)
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::AIRCRAFT_SIZE);
    println!(
        "scale {} | {} objects | {} queries | {}-frame pool",
        cfg.scale, n, cfg.queries, POOL_FRAMES
    );

    let objs = datagen::lb_dataset(n, 1);
    let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = workload(&centers, QS, PQ, cfg.queries, 17);

    let mut bulk = UTree::<2>::builder()
        .build()
        .expect("paper default catalog");
    let (_, bulk_secs) = timed(|| bulk.bulk_load(&objs));

    let mut incr = UTree::<2>::builder()
        .build()
        .expect("paper default catalog");
    let (_, incr_secs) = timed(|| {
        for o in &objs {
            incr.insert(o);
        }
    });

    let mut samples = Vec::new();
    for (build, tree, secs) in [("bulk", &bulk, bulk_secs), ("insert", &incr, incr_secs)] {
        let (phys_node_reads, phys_heap_reads) = serve(tree, build, &w.queries);
        samples.push(BuildSample {
            build,
            build_secs: secs,
            index_bytes: tree.index_size_bytes(),
            node_pages: tree.tree_stats().expect("stats walk").total_nodes() as u64,
            phys_node_reads,
            phys_heap_reads,
        });
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.build.to_string(),
                format!("{:.3}", s.build_secs),
                fmt_mb(s.index_bytes),
                s.node_pages.to_string(),
                fmt(s.phys_node_reads as f64 / w.len() as f64),
                fmt(s.phys_heap_reads as f64 / w.len() as f64),
            ]
        })
        .collect();
    print_table(
        "STR bulk load vs repeated insert (same data, same cold workload)",
        &[
            "build",
            "build s",
            "index",
            "nodes",
            "disk node/q",
            "disk heap/q",
        ],
        &rows,
    );

    let json_results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"build":"{}","build_secs":{:.4},"index_bytes":{},"node_pages":{},"phys_node_reads":{},"phys_heap_reads":{}}}"#,
                s.build, s.build_secs, s.index_bytes, s.node_pages, s.phys_node_reads, s.phys_heap_reads
            )
        })
        .collect();
    println!(
        r#"BULKLOAD_SCALING_JSON: {{"bench":"bulk_vs_incremental","objects":{},"queries":{},"pool_frames":{},"results":[{}]}}"#,
        n,
        cfg.queries,
        POOL_FRAMES,
        json_results.join(",")
    );

    let (b, i) = (&samples[0], &samples[1]);
    println!(
        "\nbuild speedup {:.1}x | node pages {} vs {} | physical node reads {} vs {}",
        i.build_secs / b.build_secs.max(1e-9),
        b.node_pages,
        i.node_pages,
        b.phys_node_reads,
        i.phys_node_reads
    );
    assert!(
        b.build_secs < i.build_secs,
        "bulk build ({:.3}s) must beat repeated insert ({:.3}s)",
        b.build_secs,
        i.build_secs
    );
    assert!(
        b.index_bytes < i.index_bytes,
        "packed index must be smaller: {} vs {} bytes",
        b.index_bytes,
        i.index_bytes
    );
    assert!(
        b.phys_node_reads < i.phys_node_reads,
        "packed layout must cost fewer physical node reads: {} vs {}",
        b.phys_node_reads,
        i.phys_node_reads
    );
}
