//! Table 1: space consumption of U-PCR vs the U-tree.
//!
//! Paper numbers (bytes): LB 11.9M vs 5.0M, CA 14.0M vs 5.9M, Aircraft
//! 40.1M vs 14.2M — the U-tree is 2.4–2.8x smaller because each entry
//! stores two CFBs (8d values) instead of m PCRs (2d·m values), and "the
//! size of a U-tree is not affected by its catalog size".
//!
//! Catalogs follow Sec 6.2: U-PCR m = 9 (2D) / 10 (3D); U-tree m = 15.
//! At `--full` scale the absolute numbers are directly comparable to the
//! paper's; at smaller scales the table also reports the full-scale
//! extrapolation (sizes are linear in N).

use bench::{fmt_mb, print_table, timed, HarnessConfig};
use utree::{UPcrTree, UTree};

fn main() {
    let cfg = HarnessConfig::from_env();
    let n_lb = cfg.sized(datagen::LB_SIZE);
    let n_ca = cfg.sized(datagen::CA_SIZE);
    let n_air = cfg.sized(datagen::AIRCRAFT_SIZE);
    println!(
        "building at scale {} (LB {n_lb}, CA {n_ca}, Aircraft {n_air})…",
        cfg.scale
    );

    let lb = datagen::lb_dataset(n_lb, 1);
    let ca = datagen::ca_dataset(n_ca, 1);
    let air = datagen::aircraft_dataset(n_air, 1);

    let ((lb_pcr, lb_u), t2) = timed(|| {
        let mut upcr = UPcrTree::<2>::builder().build().expect("valid");
        let mut utree = UTree::<2>::builder().build().expect("valid");
        upcr.bulk_load(&lb);
        utree.bulk_load(&lb);
        (upcr.index_size_bytes(), utree.index_size_bytes())
    });
    println!("LB built in {t2:.1}s");

    let ((ca_pcr, ca_u), t3) = timed(|| {
        let mut upcr = UPcrTree::<2>::builder().build().expect("valid");
        let mut utree = UTree::<2>::builder().build().expect("valid");
        upcr.bulk_load(&ca);
        utree.bulk_load(&ca);
        (upcr.index_size_bytes(), utree.index_size_bytes())
    });
    println!("CA built in {t3:.1}s");

    let ((air_pcr, air_u), t4) = timed(|| {
        let mut upcr = UPcrTree::<3>::builder().build().expect("valid");
        let mut utree = UTree::<3>::builder().build().expect("valid");
        upcr.bulk_load(&air);
        utree.bulk_load(&air);
        (upcr.index_size_bytes(), utree.index_size_bytes())
    });
    println!("Aircraft built in {t4:.1}s");

    let rows = vec![
        vec![
            "U-PCR".into(),
            fmt_mb(lb_pcr),
            fmt_mb(ca_pcr),
            fmt_mb(air_pcr),
        ],
        vec!["U-tree".into(), fmt_mb(lb_u), fmt_mb(ca_u), fmt_mb(air_u)],
        vec![
            "ratio".into(),
            format!("{:.2}x", lb_pcr as f64 / lb_u as f64),
            format!("{:.2}x", ca_pcr as f64 / ca_u as f64),
            format!("{:.2}x", air_pcr as f64 / air_u as f64),
        ],
    ];
    print_table(
        "Table 1 — index size (measured)",
        &["", "LB", "CA", "Aircraft"],
        &rows,
    );

    if cfg.scale < 1.0 {
        let s = 1.0 / cfg.scale;
        let rows = vec![
            vec![
                "U-PCR".into(),
                fmt_mb((lb_pcr as f64 * s) as u64),
                fmt_mb((ca_pcr as f64 * s) as u64),
                fmt_mb((air_pcr as f64 * s) as u64),
            ],
            vec![
                "U-tree".into(),
                fmt_mb((lb_u as f64 * s) as u64),
                fmt_mb((ca_u as f64 * s) as u64),
                fmt_mb((air_u as f64 * s) as u64),
            ],
        ];
        print_table(
            "Table 1 — extrapolated to paper scale (linear in N)",
            &["", "LB", "CA", "Aircraft"],
            &rows,
        );
    }
    println!(
        "\npaper:   U-PCR 11.9M / 14.0M / 40.1M ; U-tree 5.0M / 5.9M / 14.2M (ratios 2.4/2.4/2.8)"
    );
}
