//! Figure 7: cost of the numerical (Monte-Carlo) evaluation of appearance
//! probabilities — workload relative error and per-computation time as a
//! function of n₁, in 2D and 3D.
//!
//! Paper setup: queries of size q_s = 500 intersecting one object's
//! uncertainty region in different ways; the error of each estimate is
//! measured against the true value; accuracy depends only on the region's
//! area/volume, not the pdf. The paper sweeps n₁ = 10⁴…10⁸ and settles on
//! 10⁶ (≈1% error, 1.3 ms per computation on its hardware).
//!
//! `--full` extends the sweep to 10⁷ (10⁸ only costs time and adds no
//! information about the 1/√n₁ shape).

use bench::{fmt, print_table, timed, HarnessConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::{Point, Rect};
use uncertain_pdf::{appearance_reference, MonteCarlo, ObjectPdf};

fn sweep<const D: usize>(pdf: &ObjectPdf<D>, n1s: &[usize], queries: usize) -> Vec<(f64, f64)> {
    // Queries of side 500 at varying offsets from the object's center, so
    // the intersections range from slivers to near-total coverage.
    let mut rng = SmallRng::seed_from_u64(0xF167);
    let mbr = pdf.mbr();
    let c = mbr.center();
    let r = mbr.extent(0) / 2.0;
    let qs = 500.0;
    let mut regions = Vec::new();
    while regions.len() < queries {
        let mut corner = [0.0; D];
        for (i, v) in corner.iter_mut().enumerate() {
            *v = c.coords[i] + rng.gen_range(-r - qs * 0.8..r);
        }
        let mut hi = corner;
        for v in hi.iter_mut() {
            *v += qs;
        }
        let rq = Rect::new(corner, hi);
        let truth = appearance_reference(pdf, &rq, 1e-6);
        if truth > 1e-3 && truth < 0.999 {
            regions.push((rq, truth));
        }
    }

    n1s.iter()
        .map(|&n1| {
            let mc = MonteCarlo::new(n1);
            let mut err_sum = 0.0;
            let (_, secs) = timed(|| {
                for (rq, truth) in &regions {
                    let est = mc.estimate(pdf, rq, &mut rng);
                    err_sum += ((est - truth) / truth).abs();
                }
            });
            (err_sum / regions.len() as f64, secs / regions.len() as f64)
        })
        .collect()
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let mut n1s = vec![1_000, 10_000, 100_000, 1_000_000];
    if std::env::args().any(|a| a == "--full") {
        n1s.push(10_000_000);
    }

    // 2D: a radius-250 disk (the LB/CA object shape).
    let disk: ObjectPdf<2> = ObjectPdf::UniformBall {
        center: Point::new([5_000.0, 5_000.0]),
        radius: 250.0,
    };
    // 3D: a radius-250 sphere (the paper notes 3D regions are "larger",
    // needing higher n₁ for the same error).
    let sphere: ObjectPdf<3> = ObjectPdf::UniformBall {
        center: Point::new([5_000.0, 5_000.0, 5_000.0]),
        radius: 250.0,
    };

    let q = cfg.queries.clamp(10, 40);
    let r2 = sweep(&disk, &n1s, q);
    let r3 = sweep(&sphere, &n1s, q);

    let rows: Vec<Vec<String>> = n1s
        .iter()
        .zip(r2.iter().zip(&r3))
        .map(|(&n1, ((e2, t2), (e3, t3)))| {
            vec![
                format!("1e{}", (n1 as f64).log10().round() as i32),
                format!("{:.3}%", e2 * 100.0),
                format!("{:.3}%", e3 * 100.0),
                format!("{:.4}", t2 * 1e3),
                format!("{:.4}", t3 * 1e3),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — Monte-Carlo cost (workload error & ms/computation)",
        &["n1", "2D err", "3D err", "2D ms", "3D ms"],
        &rows,
    );

    // The paper's two take-aways, checked mechanically:
    let shrink2 = r2.first().unwrap().0 / r2.last().unwrap().0;
    println!(
        "\nerror shrinks {:.0}x across the sweep (expected ~sqrt(n1 ratio) = {:.0}x);",
        shrink2,
        ((*n1s.last().unwrap() as f64) / n1s[0] as f64).sqrt()
    );
    println!(
        "3D error {}≥ 2D error at n1=1e6 (larger uncertainty volume), paper's Sec 6.1 observation",
        if r3.last().unwrap().0 >= r2.last().unwrap().0 * 0.8 {
            ""
        } else {
            "NOT "
        }
    );
    let _ = fmt(0.0);
}
