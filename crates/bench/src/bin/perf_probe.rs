//! Quick throughput probe used to calibrate experiment scales (not a
//! paper figure).
use bench::timed;
use utree::{UPcrTree, UTree};

fn main() {
    let lb = datagen::lb_dataset(5_000, 1);
    let ca = datagen::ca_dataset(5_000, 1);
    let air = datagen::aircraft_dataset(5_000, 1);

    let (_, t) = timed(|| {
        let mut tree = UTree::<2>::builder().build().expect("valid");
        tree.bulk_load(&lb);
        tree.len()
    });
    println!(
        "U-tree LB (uniform) insert: {:.1} µs/obj",
        t / 5_000.0 * 1e6
    );

    let (_, t) = timed(|| {
        let mut tree = UTree::<2>::builder().build().expect("valid");
        tree.bulk_load(&ca);
    });
    println!(
        "U-tree CA (con-gau) insert: {:.1} µs/obj",
        t / 5_000.0 * 1e6
    );

    let (_, t) = timed(|| {
        let mut tree = UTree::<3>::builder().build().expect("valid");
        tree.bulk_load(&air);
    });
    println!("U-tree Aircraft insert: {:.1} µs/obj", t / 5_000.0 * 1e6);

    let (_, t) = timed(|| {
        let mut tree = UPcrTree::<2>::builder().build().expect("valid");
        tree.bulk_load(&lb);
    });
    println!("U-PCR LB insert: {:.1} µs/obj", t / 5_000.0 * 1e6);
}
