//! LP micro-probe (calibration, not a paper figure).
use bench::timed;
use uncertain_geom::Point;
use uncertain_pdf::ObjectPdf;
use utree::{fit_cfb_pair, PcrSet, UCatalog};

fn main() {
    let cat = UCatalog::paper_utree_default();
    let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
        center: Point::new([5000.0, 5000.0]),
        radius: 250.0,
    };
    let (pcrs, t) = timed(|| PcrSet::compute(&pdf, &cat));
    println!("PCR compute: {:.1} µs", t * 1e6);
    let (_, t) = timed(|| {
        for _ in 0..100 {
            std::hint::black_box(fit_cfb_pair(&pcrs, &cat));
        }
    });
    println!("fit_cfb_pair: {:.1} µs/call", t / 100.0 * 1e6);
    // isolate one outer LP
    let m = cat.len() as f64;
    let p_sum = cat.sum();
    let faces: Vec<f64> = pcrs.rects().iter().map(|r| r.min[0]).collect();
    let (_, t) = timed(|| {
        for _ in 0..100 {
            let mut lp = simplex_lp::LinearProgram::maximize(vec![m, -p_sum]);
            for (p, c) in cat.values().iter().zip(&faces) {
                lp.less_eq(vec![1.0, -p], *c);
            }
            std::hint::black_box(lp.solve().unwrap());
        }
    });
    println!("outer LP: {:.1} µs/call", t / 100.0 * 1e6);
}
