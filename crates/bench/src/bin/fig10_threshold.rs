//! Figure 10 (panels a–i): effect of the probability threshold p_q on
//! query performance, at q_s = 1500.
//!
//! p_q ∈ {0.3, 0.45, 0.6, 0.75, 0.9}; otherwise identical to Figure 9.

use bench::{build_pair, centers_of, print_fig_panels, run_pair, HarnessConfig, PairCost};
use datagen::workload;

const PQS: [f64; 5] = [0.3, 0.45, 0.6, 0.75, 0.9];
const QS: f64 = 1_500.0;

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "scale {} | {} queries/workload | n1 = {} | io = {} ms/page",
        cfg.scale, cfg.queries, cfg.n1, cfg.io_ms
    );
    let xs: Vec<String> = PQS.iter().map(|p| format!("{p}")).collect();

    let lb = datagen::lb_dataset(cfg.sized(datagen::LB_SIZE), 1);
    let (utree, upcr) = build_pair(&lb);
    let centers = centers_of(&lb);
    let costs: Vec<PairCost> = PQS
        .iter()
        .enumerate()
        .map(|(k, &pq)| {
            let w = workload(&centers, QS, pq, cfg.queries, 1090 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 10a-c LB", "pq", &xs, &costs, cfg.io_ms);

    let ca = datagen::ca_dataset(cfg.sized(datagen::CA_SIZE), 1);
    let (utree, upcr) = build_pair(&ca);
    let centers = centers_of(&ca);
    let costs: Vec<PairCost> = PQS
        .iter()
        .enumerate()
        .map(|(k, &pq)| {
            let w = workload(&centers, QS, pq, cfg.queries, 1190 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 10d-f CA", "pq", &xs, &costs, cfg.io_ms);

    let air = datagen::aircraft_dataset(cfg.sized(datagen::AIRCRAFT_SIZE), 1);
    let (utree, upcr) = build_pair(&air);
    let centers = centers_of(&air);
    let costs: Vec<PairCost> = PQS
        .iter()
        .enumerate()
        .map(|(k, &pq)| {
            let w = workload(&centers, QS, pq, cfg.queries, 1290 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 10g-i Aircraft", "pq", &xs, &costs, cfg.io_ms);

    println!(
        "\npaper shape: I/O decreases mildly as pq grows (stronger subtree pruning); \
         probability computations drop sharply at high pq; U-tree wins on overall cost."
    );
}
