//! Figure 11: update overhead of the U-tree.
//!
//! (a) average insertion cost during index construction, broken into I/O
//! and CPU — the CPU part "essentially corresponds to the combined cost of
//! (i) the simplex algorithm (for computing CFBs) and (ii) calculating the
//! necessary PCRs"; (b) amortized deletion cost after removing all
//! objects (the paper omits deletion CPU as negligible).

use bench::{print_table, timed, HarnessConfig};
use utree::UTree;

struct UpdateCost {
    insert_io_ms: f64,
    insert_cpu_ms: f64,
    pcr_ms: f64,
    lp_ms: f64,
    delete_io_ms: f64,
    delete_wall_ms: f64,
}

fn measure<const D: usize>(objs: &[uncertain_pdf::UncertainObject<D>], io_ms: f64) -> UpdateCost {
    let mut tree = UTree::<D>::builder()
        .build()
        .expect("paper default catalog is valid");
    let mut io = 0u64;
    let mut pcr_nanos = 0u128;
    let mut lp_nanos = 0u128;
    for o in objs {
        let s = tree.insert(o);
        io += s.io_reads + s.io_writes;
        pcr_nanos += s.pcr_nanos;
        lp_nanos += s.lp_nanos;
    }
    let n = objs.len() as f64;
    let insert_io_ms = io as f64 * io_ms / n;
    let pcr_ms = pcr_nanos as f64 / 1e6 / n;
    let lp_ms = lp_nanos as f64 / 1e6 / n;

    tree.reset_io();
    let (_, del_secs) = timed(|| {
        for o in objs {
            assert!(tree.delete(o), "object {} must be deletable", o.id);
        }
    });
    let del_io = tree.tree_stats().expect("stats walk"); // tree is empty; stats for sanity only
    let _ = del_io;
    let delete_io = tree_io_after_reset(&tree);
    UpdateCost {
        insert_io_ms,
        insert_cpu_ms: pcr_ms + lp_ms,
        pcr_ms,
        lp_ms,
        delete_io_ms: delete_io as f64 * io_ms / n,
        delete_wall_ms: del_secs * 1e3 / n,
    }
}

fn tree_io_after_reset<const D: usize>(tree: &UTree<D>) -> u64 {
    // reset_io() was called right before the deletion loop, so the index
    // counters now hold exactly the deletion I/O.
    tree_stats_io(tree)
}

fn tree_stats_io<const D: usize>(tree: &UTree<D>) -> u64 {
    // The UTree exposes reset_io; read the counters through a probe query
    // of zero cost? Simpler: the counters are reachable via tree internals
    // — expose through a tiny helper on UTree.
    tree.io_counters()
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n_lb = cfg.sized(datagen::LB_SIZE);
    let n_ca = cfg.sized(datagen::CA_SIZE);
    let n_air = cfg.sized(datagen::AIRCRAFT_SIZE);
    println!(
        "scale {} (LB {n_lb}, CA {n_ca}, Aircraft {n_air}), io = {} ms/page",
        cfg.scale, cfg.io_ms
    );

    let lb = measure(&datagen::lb_dataset(n_lb, 1), cfg.io_ms);
    let ca = measure(&datagen::ca_dataset(n_ca, 1), cfg.io_ms);
    let air = measure(&datagen::aircraft_dataset(n_air, 1), cfg.io_ms);

    let row = |name: &str, c: &UpdateCost| {
        vec![
            name.to_string(),
            format!("{:.2}", c.insert_io_ms),
            format!("{:.2}", c.insert_cpu_ms),
            format!("{:.2}", c.pcr_ms),
            format!("{:.2}", c.lp_ms),
            format!("{:.2}", c.insert_io_ms + c.insert_cpu_ms),
        ]
    };
    print_table(
        "Figure 11a — insertion cost (ms/object)",
        &["dataset", "I/O", "CPU", "(pcr)", "(simplex)", "total"],
        &[row("LB", &lb), row("CA", &ca), row("Aircraft", &air)],
    );

    let drow = |name: &str, c: &UpdateCost| {
        vec![
            name.to_string(),
            format!("{:.2}", c.delete_io_ms),
            format!("{:.2}", c.delete_wall_ms),
        ]
    };
    print_table(
        "Figure 11b — deletion cost (ms/object; wall = search + heap CPU)",
        &["dataset", "I/O", "wall CPU"],
        &[drow("LB", &lb), drow("CA", &ca), drow("Aircraft", &air)],
    );

    println!(
        "\npaper shape: insertions cost ~0.03–0.07 s on 2005 hardware with I/O \
         dominating; deletions several times more expensive than insertions \
         (tree condensation + reinsertion); CPU (simplex + PCR) is a small, \
         non-negligible slice of insertion."
    );
}
