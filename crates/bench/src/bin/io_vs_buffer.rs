//! Physical I/O vs buffer size (the Fig-9-style storage experiment): the
//! same workload runs against one saved U-tree reopened through LRU
//! buffer pools of growing capacity.
//!
//! The *logical* node accesses per query are backend-independent (they are
//! the paper's metric and must not move); the *physical* reads that reach
//! the disk file shrink as the pool grows, monotonically under LRU, until
//! the working set fits in memory.

use bench::{fmt, print_table, HarnessConfig};
use datagen::workload;
use page_store::PageStore;
use utree::{DiskUTree, Query, Refine, UTree};

const CAPACITIES: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
const QS: f64 = 1_000.0;
const PQ: f64 = 0.6;

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    println!(
        "scale {} | {} objects | {} queries/workload",
        cfg.scale, n, cfg.queries
    );

    let objs = datagen::lb_dataset(n, 1);
    let mut tree = UTree::<2>::builder()
        .build()
        .expect("paper default catalog");
    tree.bulk_load(&objs);
    let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = workload(&centers, QS, PQ, cfg.queries, 17);

    let mut dir = std::env::temp_dir();
    dir.push(format!("utree-io-vs-buffer-{}", std::process::id()));
    tree.save(&dir).expect("save index");
    println!(
        "saved {} nodes / {} heap pages to {}",
        tree.tree_stats().expect("stats walk").total_nodes(),
        tree.heap().file().live_pages(),
        dir.display()
    );

    // The refinement mode only burns CPU; reference quadrature keeps the
    // sweep fast without touching the I/O being measured.
    let mode = Refine::reference(1e-6);
    let nq = w.len() as f64;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut physical: Vec<u64> = Vec::new();
    for &cap in &CAPACITIES {
        // One shard pins the exact global-LRU pool: the monotonicity this
        // experiment asserts is the *stack-algorithm* property of true
        // LRU, which per-shard striping (the concurrency default for
        // large pools) deliberately trades away.
        let reopened = DiskUTree::<2>::open_with_shards(&dir, cap, 1).expect("open saved index");
        for q in &w.queries {
            let _ = reopened.execute(&Query::from_prob_range(*q, mode));
        }
        let logical = reopened.node_store().stats();
        let disk = reopened.node_store().backend_stats();
        let hits = logical.cache_hits();
        let total = hits + logical.cache_misses();
        physical.push(disk.reads());
        rows.push(vec![
            cap.to_string(),
            fmt(logical.reads() as f64 / nq),
            fmt(disk.reads() as f64 / nq),
            format!("{:.0}%", 100.0 * hits as f64 / total.max(1) as f64),
            fmt(reopened.heap().file().backend_stats().reads() as f64 / nq),
        ]);
    }
    print_table(
        "physical node reads vs buffer capacity (one saved U-tree, identical workload)",
        &["frames", "logical/q", "disk/q", "hit%", "heap disk/q"],
        &rows,
    );

    let monotone = physical.windows(2).all(|p| p[1] <= p[0]);
    println!(
        "\nphysical reads {:?} — {}",
        physical,
        if monotone {
            "monotonically non-increasing with capacity (LRU is a stack algorithm)"
        } else {
            "NOT monotone: buffer pool is broken"
        }
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        monotone,
        "physical reads must not grow with buffer capacity"
    );
}
