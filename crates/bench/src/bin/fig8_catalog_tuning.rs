//! Figure 8: tuning the U-PCR catalog size m.
//!
//! Paper setup: U-PCR trees with m = 3…12 on LB, CA and Aircraft; 80
//! workloads with q_s = 500 and p_q = 0.11…0.90; the chart shows average
//! query time as a function of m. U-PCR improves with m (more
//! pruning/validating power) until fanout loss dominates; the paper finds
//! the optimum at m = 9 (LB, CA) and m = 10 (Aircraft).
//!
//! Here every workload's p_q grid is preserved; the workload count per
//! grid point scales with `UTREE_QUERIES`.

use bench::{print_table, run_workload, HarnessConfig};
use datagen::workload;
use uncertain_geom::Point;
use utree::UPcrTree;

fn avg_cost_2d(objs: &[uncertain_pdf::UncertainObject<2>], m: usize, cfg: &HarnessConfig) -> f64 {
    let mut tree = UPcrTree::<2>::builder()
        .uniform_catalog(m)
        .build()
        .expect("m >= 3 catalogs are valid");
    tree.bulk_load(objs);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let mut total = 0.0;
    let mut n = 0;
    for k in 0..80 {
        let pq = 0.11 + 0.01 * k as f64;
        let w = workload(&centers, 500.0, pq, (cfg.queries / 10).max(2), 800 + k);
        let cost = run_workload(&tree, &w, cfg.refine_mode());
        total += cost.total_secs(cfg.io_ms);
        n += 1;
    }
    total / n as f64
}

fn avg_cost_3d(objs: &[uncertain_pdf::UncertainObject<3>], m: usize, cfg: &HarnessConfig) -> f64 {
    let mut tree = UPcrTree::<3>::builder()
        .uniform_catalog(m)
        .build()
        .expect("m >= 3 catalogs are valid");
    tree.bulk_load(objs);
    let centers: Vec<Point<3>> = objs.iter().map(|o| o.mbr().center()).collect();
    let mut total = 0.0;
    let mut n = 0;
    for k in 0..80 {
        let pq = 0.11 + 0.01 * k as f64;
        let w = workload(&centers, 500.0, pq, (cfg.queries / 10).max(2), 800 + k);
        let cost = run_workload(&tree, &w, cfg.refine_mode());
        total += cost.total_secs(cfg.io_ms);
        n += 1;
    }
    total / n as f64
}

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "datasets: LB {} / CA {} / Aircraft {} (scale {}), {} queries per p_q point, \
         n1 = {}, {} ms/page",
        cfg.sized(datagen::LB_SIZE),
        cfg.sized(datagen::CA_SIZE),
        cfg.sized(datagen::AIRCRAFT_SIZE),
        cfg.scale,
        (cfg.queries / 10).max(2),
        cfg.n1,
        cfg.io_ms
    );

    let lb = datagen::lb_dataset(cfg.sized(datagen::LB_SIZE), 1);
    let ca = datagen::ca_dataset(cfg.sized(datagen::CA_SIZE), 1);
    let air = datagen::aircraft_dataset(cfg.sized(datagen::AIRCRAFT_SIZE), 1);

    let ms = [3usize, 4, 6, 8, 9, 10, 12];
    let mut rows = Vec::new();
    let mut best = (
        0usize,
        f64::INFINITY,
        0usize,
        f64::INFINITY,
        0usize,
        f64::INFINITY,
    );
    for &m in &ms {
        let c_lb = avg_cost_2d(&lb, m, &cfg);
        let c_ca = avg_cost_2d(&ca, m, &cfg);
        let c_air = avg_cost_3d(&air, m, &cfg);
        if c_lb < best.1 {
            best.0 = m;
            best.1 = c_lb;
        }
        if c_ca < best.3 {
            best.2 = m;
            best.3 = c_ca;
        }
        if c_air < best.5 {
            best.4 = m;
            best.5 = c_air;
        }
        rows.push(vec![
            m.to_string(),
            format!("{:.3}", c_lb),
            format!("{:.3}", c_ca),
            format!("{:.3}", c_air),
        ]);
    }
    print_table(
        "Figure 8 — U-PCR query cost (sec) vs catalog size m (qs=500)",
        &["m", "LB", "CA", "Aircraft"],
        &rows,
    );
    println!(
        "\nbest m: LB={} CA={} Aircraft={}  (paper: 9, 9, 10)",
        best.0, best.2, best.4
    );
}
