//! Figure 9 (panels a–i): effect of the search-region size q_s on query
//! performance, at p_q = 0.6.
//!
//! For each dataset (LB, CA, Aircraft) and each q_s ∈ {500, 1000, 1500,
//! 2000, 2500}, a 100-query workload runs against the U-tree and U-PCR;
//! the three panels per dataset report (i) node accesses, (ii) number of
//! appearance-probability computations with the share of results
//! "directly reported", and (iii) total cost.

use bench::{build_pair, centers_of, print_fig_panels, run_pair, HarnessConfig, PairCost};
use datagen::workload;

const QS: [f64; 5] = [500.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0];
const PQ: f64 = 0.6;

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "scale {} | {} queries/workload | n1 = {} | io = {} ms/page",
        cfg.scale, cfg.queries, cfg.n1, cfg.io_ms
    );
    let xs: Vec<String> = QS.iter().map(|q| format!("{q:.0}")).collect();

    // LB (2D, uniform pdfs) — panels a, b, c.
    let lb = datagen::lb_dataset(cfg.sized(datagen::LB_SIZE), 1);
    let (utree, upcr) = build_pair(&lb);
    let centers = centers_of(&lb);
    let costs: Vec<PairCost> = QS
        .iter()
        .enumerate()
        .map(|(k, &qs)| {
            let w = workload(&centers, qs, PQ, cfg.queries, 90 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 9a-c LB", "qs", &xs, &costs, cfg.io_ms);

    // CA (2D, Con-Gau pdfs) — panels d, e, f.
    let ca = datagen::ca_dataset(cfg.sized(datagen::CA_SIZE), 1);
    let (utree, upcr) = build_pair(&ca);
    let centers = centers_of(&ca);
    let costs: Vec<PairCost> = QS
        .iter()
        .enumerate()
        .map(|(k, &qs)| {
            let w = workload(&centers, qs, PQ, cfg.queries, 190 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 9d-f CA", "qs", &xs, &costs, cfg.io_ms);

    // Aircraft (3D) — panels g, h, i.
    let air = datagen::aircraft_dataset(cfg.sized(datagen::AIRCRAFT_SIZE), 1);
    let (utree, upcr) = build_pair(&air);
    let centers = centers_of(&air);
    let costs: Vec<PairCost> = QS
        .iter()
        .enumerate()
        .map(|(k, &qs)| {
            let w = workload(&centers, qs, PQ, cfg.queries, 290 + k as u64);
            run_pair(&utree, &upcr, &w, cfg.refine_mode())
        })
        .collect();
    print_fig_panels("Fig 9g-i Aircraft", "qs", &xs, &costs, cfg.io_ms);

    println!(
        "\npaper shape: U-tree beats U-PCR on I/O everywhere; both grow with qs; \
         U-tree CPU slightly higher on LB/CA (CFB filters are weaker than PCRs) \
         but lower on Aircraft."
    );
}
