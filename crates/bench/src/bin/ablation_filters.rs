//! Ablation study (beyond the paper's figures): how much does each filter
//! component contribute?
//!
//! Four configurations of the same U-tree on the LB workload of Fig 9
//! (qs = 1500, pq = 0.6):
//!
//! * `full` — Observation 4 + Observation 3 pruning + validation;
//! * `no-obs4` — intermediate entries prune with plain `e.MBR(p₁)`
//!   intersection (an ordinary R-tree over the MBRs);
//! * `no-valid` — validation off: every qualifying object must be
//!   integrated (isolates the "directly reported" saving);
//! * `mbr-only` — no leaf rules at all: every MBR-intersecting object is
//!   refined (the "conventional range search" strawman of Sec 1 —
//!   correct, but pays the full integration bill).
//!
//! All four return identical result sets; only cost differs.

use bench::{fmt, print_table, run_workload_with_options, timed, HarnessConfig};
use datagen::workload;
use uncertain_geom::Point;
use utree::{Query, QueryOptions, Refine, UTree};

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    println!("LB at {n} objects, qs = 1500, pq = 0.6, n1 = {}", cfg.n1);

    let objs = datagen::lb_dataset(n, 1);
    let (tree, build_secs) = timed(|| {
        let mut t = UTree::<2>::builder()
            .build()
            .expect("paper default catalog is valid");
        t.bulk_load(&objs);
        t
    });
    println!("built in {build_secs:.1}s");

    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = workload(&centers, 1_500.0, 0.6, cfg.queries, 4242);

    let configs: [(&str, QueryOptions); 4] = [
        ("full", QueryOptions::default()),
        (
            "no-obs4",
            QueryOptions {
                observation4: false,
                ..QueryOptions::default()
            },
        ),
        (
            "no-valid",
            QueryOptions {
                validation: false,
                ..QueryOptions::default()
            },
        ),
        (
            "mbr-only",
            QueryOptions {
                leaf_filter: false,
                validation: false,
                observation4: false,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    for (name, opts) in configs {
        // Result-set agreement check on the first query.
        let ids = tree
            .execute(
                &Query::from_prob_range(w.queries[0], Refine::reference(1e-8)).with_options(opts),
            )
            .sorted_ids();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(r, &ids, "{name} changed the answers!"),
        }
        let cost = run_workload_with_options(&tree, &w, cfg.refine_mode(), opts);
        rows.push(vec![
            name.to_string(),
            fmt(cost.node_accesses),
            fmt(cost.prob_computations),
            format!("{:.0}%", cost.directly_reported_pct),
            format!("{:.3}", cost.total_secs(cfg.io_ms)),
        ]);
    }
    print_table(
        "Ablation — filter components (identical answers, different cost)",
        &["config", "node I/O", "#integrations", "free%", "total s"],
        &rows,
    );
    println!(
        "\nreading: obs-4 cuts subtree reads; the leaf rules cut integrations by ~10-100x; \
         validation alone accounts for the 'directly reported' share of results."
    );
}
