//! Multi-index serving: sustained qps and tail latency of the resident
//! [`QueryService`] loop over an [`IndexCatalog`] of named, sharded,
//! disk-backed indexes.
//!
//! The workload is heterogeneous by construction — probabilistic range
//! queries and top-k rankings, interleaved, spread across two named
//! indexes with different shard counts — because that is what the
//! single-index `BatchExecutor` experiment cannot show: admission
//! batching, per-request index dispatch, and scatter-gather across the
//! shards of whichever index each request names.
//!
//! Every sweep's replies are verified against direct scatter-gather
//! execution before its numbers are reported (a fast wrong answer is not
//! throughput) — that equality is a hard assertion. Besides the table,
//! the bin emits one machine-readable JSON line (prefixed
//! `SERVING_SCALING_JSON:`) recording qps and nearest-rank p50/p99 per
//! worker count, gated in CI by `scripts/check_bench.py` against
//! `BENCH_serving.json`.
//!
//! Knobs: `UTREE_SCALE`, `UTREE_QUERIES` (requests per kind per index),
//! `UTREE_N1` (Monte-Carlo samples per refinement).

use bench::{fmt, print_table, HarnessConfig};
use datagen::workload;
use utree::{
    IndexCatalog, ProbIndex, Query, QueryService, Refine, ServiceReply, ServiceReport,
    ServiceRequest, UCatalog,
};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const MAX_BATCH: usize = 16;
const QS: f64 = 1_200.0;
const REPS: usize = 3;

struct Sample {
    workers: usize,
    qps: f64,
    p50_nanos: u64,
    p99_nanos: u64,
    wall_nanos: u64,
}

fn expected_replies(catalog: &IndexCatalog<2>, requests: &[ServiceRequest<2>]) -> Vec<Vec<u64>> {
    requests
        .iter()
        .map(|r| match r {
            ServiceRequest::Range { index, query } => catalog
                .get(index)
                .expect("known index")
                .execute(query)
                .matches
                .iter()
                .map(|m| m.id)
                .collect(),
            ServiceRequest::TopK { index, query } => catalog
                .get(index)
                .expect("known index")
                .rank_topk(query)
                .matches
                .iter()
                .map(|m| m.id)
                .collect(),
        })
        .collect()
}

fn reply_ids(reply: &ServiceReply) -> Vec<u64> {
    match reply {
        ServiceReply::Range(out) => out.matches.iter().map(|m| m.id).collect(),
        ServiceReply::TopK(out) => out.matches.iter().map(|m| m.id).collect(),
        ServiceReply::Error(e) => panic!("request failed in the sweep: {e}"),
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "scale {} | {} objects/index | {} requests/kind/index | n1 {} | {} cores",
        cfg.scale, n, cfg.queries, cfg.n1, cores
    );

    // Two named indexes with different shard layouts in one catalog dir.
    let mut dir = std::env::temp_dir();
    dir.push(format!("utree-serving-latency-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let lb = datagen::lb_dataset(n, 1);
    let ca: Vec<_> = datagen::lb_dataset(n, 2)
        .into_iter()
        .enumerate()
        .map(|(i, o)| uncertain_pdf::UncertainObject::new(1_000_000 + i as u64, o.pdf))
        .collect();
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 256).expect("create catalog");
        cat.create_index("lb", UCatalog::uniform(10), Default::default(), 4)
            .expect("create lb");
        cat.create_index("ca", UCatalog::uniform(10), Default::default(), 2)
            .expect("create ca");
        for o in &lb {
            cat.get_mut("lb").unwrap().insert(o);
        }
        for o in &ca {
            cat.get_mut("ca").unwrap().insert(o);
        }
        cat.flush().expect("flush catalog");
    }
    let catalog = IndexCatalog::<2>::open(&dir, 256).expect("reopen catalog");

    // Heterogeneous request stream: ranges and top-k against both
    // indexes, interleaved. Seeds make every run byte-comparable.
    let mut requests: Vec<ServiceRequest<2>> = Vec::new();
    for (index, objs, seed) in [("lb", &lb, 17u64), ("ca", &ca, 19u64)] {
        let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();
        let probes = workload(&centers, QS, 0.0, cfg.queries, seed);
        for (i, q) in probes.queries.iter().enumerate() {
            let pq = 0.05 + 0.9 * ((i * 41 % 100) as f64 / 100.0);
            requests.push(ServiceRequest::Range {
                index: index.to_string(),
                query: Query::range(q.region)
                    .threshold(pq)
                    .refine(Refine::monte_carlo(cfg.n1, 0x5EED ^ i as u64))
                    .build()
                    .expect("valid query"),
            });
            requests.push(ServiceRequest::TopK {
                index: index.to_string(),
                query: Query::range(q.region)
                    .top(1 + i % 10)
                    .refine(Refine::monte_carlo(cfg.n1, 0xCAFE ^ i as u64))
                    .build()
                    .expect("valid query"),
            });
        }
    }
    // Interleave the two indexes' traffic rather than serving them in
    // blocks (fixed stride, no RNG — the stream is reproducible).
    let half = requests.len() / 2;
    let (front, back) = requests.split_at(half);
    let requests: Vec<ServiceRequest<2>> = front
        .iter()
        .zip(back)
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let expected = expected_replies(&catalog, &requests);

    let mut samples: Vec<Sample> = Vec::new();
    for &workers in &WORKER_SWEEP {
        let service = QueryService::new(workers, MAX_BATCH);
        let mut best: Option<ServiceReport> = None;
        for _ in 0..REPS {
            let (replies, report) = service.serve(&catalog, requests.clone());
            for (reply, want) in replies.iter().zip(&expected) {
                assert_eq!(
                    reply_ids(reply),
                    *want,
                    "{workers} workers: service reply diverged from direct execution"
                );
            }
            if best
                .as_ref()
                .is_none_or(|b| report.wall_nanos < b.wall_nanos)
            {
                best = Some(report);
            }
        }
        let best = best.expect("at least one rep");
        let qps = best.queries_per_sec();
        assert!(qps.is_finite() && qps > 0.0, "degenerate qps {qps}");
        samples.push(Sample {
            workers,
            qps,
            p50_nanos: best.p50_nanos().expect("non-empty run"),
            p99_nanos: best.p99_nanos().expect("non-empty run"),
            wall_nanos: best.wall_nanos,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.workers.to_string(),
                fmt(s.qps),
                fmt(s.p50_nanos as f64 / 1e6),
                fmt(s.p99_nanos as f64 / 1e6),
                fmt(s.wall_nanos as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "query service: sustained qps and tail latency vs workers \
         (identical answers verified per run)",
        &["workers", "qps", "p50 ms", "p99 ms", "wall ms"],
        &rows,
    );

    let json_results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"workers":{},"qps":{:.2},"p50_nanos":{},"p99_nanos":{},"wall_nanos":{}}}"#,
                s.workers, s.qps, s.p50_nanos, s.p99_nanos, s.wall_nanos
            )
        })
        .collect();
    println!(
        r#"SERVING_SCALING_JSON: {{"bench":"serving_latency","objects":{},"requests":{},"n1":{},"cores":{},"max_batch":{},"results":[{}]}}"#,
        n,
        requests.len(),
        cfg.n1,
        cores,
        MAX_BATCH,
        json_results.join(",")
    );
}
