//! Batch-engine throughput vs worker count (the serving experiment): one
//! shared index, one fixed workload, aggregate queries/sec as the
//! `BatchExecutor` fans the workload across 1, 2, 4, 8 workers — on the
//! in-memory backend and on a saved index behind the latched disk buffer
//! pool.
//!
//! Every run is verified byte-identical to the 1-worker baseline before
//! its throughput is reported (a fast wrong answer is not throughput).
//!
//! Besides the human-readable table, the bin emits one machine-readable
//! JSON line (prefixed `THROUGHPUT_SCALING_JSON:`) so future PRs can track
//! the perf trajectory from CI logs.
//!
//! Knobs: `UTREE_SCALE`, `UTREE_QUERIES`, `UTREE_N1` (Monte-Carlo samples
//! per probability computation — the CPU weight of the refinement step).

use bench::{fmt, print_table, HarnessConfig};
use datagen::workload;
use utree::engine::BatchExecutor;
use utree::{BatchOutcome, DiskUTree, ProbIndex, Query, Refine, UTree};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const QS: f64 = 1_200.0;
const REPS: usize = 3;

struct Sample {
    backend: &'static str,
    workers: usize,
    qps: f64,
    wall_nanos: u128,
}

/// Best-of-`REPS` throughput at each worker count, with every parallel
/// batch checked against the sequential baseline first.
fn sweep<I: ProbIndex<2> + Sync>(
    backend: &'static str,
    index: &I,
    queries: &[Query<2>],
    samples: &mut Vec<Sample>,
) {
    let baseline = BatchExecutor::run_sequential(index, queries);
    for &workers in &WORKER_SWEEP {
        let exec = BatchExecutor::new(workers);
        let mut best: Option<BatchOutcome> = None;
        for _ in 0..REPS {
            let out = exec.run(index, queries);
            assert!(
                out.same_results(&baseline),
                "{backend}/{workers} workers: parallel batch diverged from sequential"
            );
            if best.as_ref().is_none_or(|b| out.wall_nanos < b.wall_nanos) {
                best = Some(out);
            }
        }
        let best = best.expect("at least one rep");
        samples.push(Sample {
            backend,
            workers,
            qps: best.queries_per_sec(),
            wall_nanos: best.wall_nanos,
        });
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "scale {} | {} objects | {} queries | n1 {} | {} cores",
        cfg.scale, n, cfg.queries, cfg.n1, cores
    );

    let objs = datagen::lb_dataset(n, 1);
    let mut tree = UTree::<2>::builder().build().expect("paper catalog");
    tree.bulk_load(&objs);
    let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();
    let queries: Vec<Query<2>> = workload(&centers, QS, 0.0, cfg.queries, 17)
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let pq = 0.05 + 0.9 * ((i * 41 % 100) as f64 / 100.0);
            Query::range(q.region)
                .threshold(pq)
                // Monte-Carlo is the CPU weight being parallelised; the
                // seed makes every run byte-comparable.
                .refine(Refine::monte_carlo(cfg.n1, 0x5EED ^ i as u64))
                .build()
                .expect("valid query")
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    sweep("memory", &tree, &queries, &mut samples);

    let mut dir = std::env::temp_dir();
    dir.push(format!("utree-throughput-scaling-{}", std::process::id()));
    tree.save(&dir).expect("save index");
    {
        // 256 frames: enough to stripe the pool across all its latches
        // while keeping real cache pressure in the sweep.
        let reopened = DiskUTree::<2>::open(&dir, 256).expect("open saved index");
        println!(
            "buffered disk backend: {} frames / {} latches",
            reopened.node_store().capacity(),
            reopened.node_store().shard_count()
        );
        sweep("buffered-disk", &reopened, &queries, &mut samples);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.backend.to_string(),
                s.workers.to_string(),
                fmt(s.qps),
                fmt(s.wall_nanos as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "batch throughput vs workers (identical answers verified per run)",
        &["backend", "workers", "queries/s", "wall ms"],
        &rows,
    );

    let json_results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"backend":"{}","workers":{},"qps":{:.2},"wall_nanos":{}}}"#,
                s.backend, s.workers, s.qps, s.wall_nanos
            )
        })
        .collect();
    println!(
        r#"THROUGHPUT_SCALING_JSON: {{"bench":"throughput_scaling","objects":{},"queries":{},"n1":{},"cores":{},"results":[{}]}}"#,
        n,
        cfg.queries,
        cfg.n1,
        cores,
        json_results.join(",")
    );

    // The scaling claim is only falsifiable where parallel hardware
    // exists; on a single-core host the sweep still validates correctness
    // and emits the JSON trajectory point. On multi-core hosts the hard
    // gate is deliberately generous (no collapse under parallelism) so a
    // noisy shared CI runner cannot flake the job; the speedup itself is
    // reported loudly and tracked through the JSON line.
    let single = samples
        .iter()
        .find(|s| s.backend == "memory" && s.workers == 1)
        .expect("memory/1 sample");
    let best_multi = samples
        .iter()
        .filter(|s| s.backend == "memory" && s.workers > 1)
        .map(|s| s.qps)
        .fold(0.0f64, f64::max);
    if cores > 1 {
        assert!(
            best_multi > single.qps * 0.8,
            "multi-worker throughput collapsed: best {best_multi:.1} q/s vs \
             {:.1} q/s for one worker on a {cores}-core host",
            single.qps
        );
        if best_multi > single.qps {
            println!(
                "scaling: OK — best multi-worker {:.1} q/s > single worker {:.1} q/s \
                 ({:.2}x)",
                best_multi,
                single.qps,
                best_multi / single.qps
            );
        } else {
            println!(
                "scaling: WARN — best multi-worker {:.1} q/s did not beat single worker \
                 {:.1} q/s on this run (noisy host?)",
                best_multi, single.qps
            );
        }
    } else {
        println!(
            "scaling check skipped: single-core host (best multi {:.1} q/s vs single {:.1} q/s)",
            best_multi, single.qps
        );
    }
}
