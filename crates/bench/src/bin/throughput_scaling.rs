//! Batch-engine throughput vs worker count (the serving experiment): one
//! shared index, one fixed workload, aggregate queries/sec as the
//! `BatchExecutor` fans the workload across 1, 2, 4, 8 workers — on the
//! in-memory backend and on a saved index behind the latched disk buffer
//! pool.
//!
//! Every run is verified byte-identical to the 1-worker baseline before
//! its throughput is reported (a fast wrong answer is not throughput) —
//! that equality is a hard assertion. The *speed* comparison is not: a
//! sweep where multi-worker fails to beat single-worker is retried once
//! and then reported as a warning (shared CI runners throttle), while the
//! JSON line still records the measured trajectory point.
//!
//! Besides the human-readable table, the bin emits one machine-readable
//! JSON line (prefixed `THROUGHPUT_SCALING_JSON:`) so future PRs can track
//! the perf trajectory from CI logs.
//!
//! Knobs: `UTREE_SCALE`, `UTREE_QUERIES`, `UTREE_N1` (Monte-Carlo samples
//! per probability computation — the CPU weight of the refinement step).

use bench::{fmt, print_table, HarnessConfig};
use datagen::workload;
use utree::engine::BatchExecutor;
use utree::{BatchOutcome, DiskUTree, ProbIndex, Query, Refine, UTree};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const QS: f64 = 1_200.0;
const REPS: usize = 3;

struct Sample {
    backend: &'static str,
    workers: usize,
    qps: f64,
    wall_nanos: u128,
    /// CPU-side phase breakdown summed across workers (exceeds wall under
    /// parallelism; the ratio refine/(filter+refine) and the
    /// per-refined-sample cost are what the trajectory tracks).
    filter_nanos: u128,
    refine_nanos: u128,
    refined_samples: u64,
}

/// Best-of-`REPS` throughput at each worker count, with every parallel
/// batch checked against the sequential baseline first.
fn sweep<I: ProbIndex<2> + Sync>(
    backend: &'static str,
    index: &I,
    queries: &[Query<2>],
    samples: &mut Vec<Sample>,
) {
    let baseline = BatchExecutor::run_sequential(index, queries);
    for &workers in &WORKER_SWEEP {
        let exec = BatchExecutor::new(workers);
        let mut best: Option<BatchOutcome> = None;
        for _ in 0..REPS {
            let out = exec.run(index, queries);
            assert!(
                out.same_results(&baseline),
                "{backend}/{workers} workers: parallel batch diverged from sequential"
            );
            if best.as_ref().is_none_or(|b| out.wall_nanos < b.wall_nanos) {
                best = Some(out);
            }
        }
        let best = best.expect("at least one rep");
        samples.push(Sample {
            backend,
            workers,
            qps: best.queries_per_sec(),
            wall_nanos: best.wall_nanos,
            filter_nanos: best.stats.filter_nanos,
            refine_nanos: best.stats.refine_nanos,
            refined_samples: best.stats.refined_samples,
        });
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let n = cfg.sized(datagen::LB_SIZE);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "scale {} | {} objects | {} queries | n1 {} | {} cores",
        cfg.scale, n, cfg.queries, cfg.n1, cores
    );

    let objs = datagen::lb_dataset(n, 1);
    let mut tree = UTree::<2>::builder().build().expect("paper catalog");
    tree.bulk_load(&objs);
    let centers: Vec<_> = objs.iter().map(|o| o.mbr().center()).collect();
    let queries: Vec<Query<2>> = workload(&centers, QS, 0.0, cfg.queries, 17)
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let pq = 0.05 + 0.9 * ((i * 41 % 100) as f64 / 100.0);
            Query::range(q.region)
                .threshold(pq)
                // Monte-Carlo is the CPU weight being parallelised; the
                // seed makes every run byte-comparable.
                .refine(Refine::monte_carlo(cfg.n1, 0x5EED ^ i as u64))
                .build()
                .expect("valid query")
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    sweep("memory", &tree, &queries, &mut samples);

    let mut dir = std::env::temp_dir();
    dir.push(format!("utree-throughput-scaling-{}", std::process::id()));
    tree.save(&dir).expect("save index");
    {
        // 256 frames: enough to stripe the pool across all its latches
        // while keeping real cache pressure in the sweep.
        let reopened = DiskUTree::<2>::open(&dir, 256).expect("open saved index");
        println!(
            "buffered disk backend: {} frames / {} latches",
            reopened.node_store().capacity(),
            reopened.node_store().shard_count()
        );
        sweep("buffered-disk", &reopened, &queries, &mut samples);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let cpu = (s.filter_nanos + s.refine_nanos) as f64;
            let refine_pct = if cpu == 0.0 {
                0.0
            } else {
                100.0 * s.refine_nanos as f64 / cpu
            };
            let ns_per_sample = if s.refined_samples == 0 {
                0.0
            } else {
                s.refine_nanos as f64 / s.refined_samples as f64
            };
            vec![
                s.backend.to_string(),
                s.workers.to_string(),
                fmt(s.qps),
                fmt(s.wall_nanos as f64 / 1e6),
                format!("{refine_pct:.0}%"),
                fmt(ns_per_sample),
            ]
        })
        .collect();
    print_table(
        "batch throughput vs workers (identical answers verified per run)",
        &[
            "backend",
            "workers",
            "queries/s",
            "wall ms",
            "refine%",
            "ns/sample",
        ],
        &rows,
    );

    let json_results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                r#"{{"backend":"{}","workers":{},"qps":{:.2},"wall_nanos":{},"filter_nanos":{},"refine_nanos":{},"refined_samples":{}}}"#,
                s.backend,
                s.workers,
                s.qps,
                s.wall_nanos,
                s.filter_nanos,
                s.refine_nanos,
                s.refined_samples
            )
        })
        .collect();
    println!(
        r#"THROUGHPUT_SCALING_JSON: {{"bench":"throughput_scaling","objects":{},"queries":{},"n1":{},"cores":{},"results":[{}]}}"#,
        n,
        cfg.queries,
        cfg.n1,
        cores,
        json_results.join(",")
    );

    // The scaling claim is only falsifiable where parallel hardware
    // exists; on a single-core host the sweep still validates correctness
    // and emits the JSON trajectory point. On multi-core hosts a slow
    // run gets ONE retry (loaded CI runners routinely throttle a single
    // sweep), and a repeat offender is reported as a loud WARN rather
    // than an assertion failure — wall-clock on shared hardware is not a
    // correctness property. Result equality stays a hard assert inside
    // `sweep` on every run, including the retry.
    let memory_scaling = |samples: &[Sample]| -> (f64, f64) {
        let single = samples
            .iter()
            .find(|s| s.backend == "memory" && s.workers == 1)
            .expect("memory/1 sample")
            .qps;
        let best_multi = samples
            .iter()
            .filter(|s| s.backend == "memory" && s.workers > 1)
            .map(|s| s.qps)
            .fold(0.0f64, f64::max);
        (single, best_multi)
    };
    let (mut single, mut best_multi) = memory_scaling(&samples);
    if cores > 1 && best_multi <= single {
        println!(
            "scaling: best multi-worker {best_multi:.1} q/s did not beat single worker \
             {single:.1} q/s — retrying the memory sweep once…"
        );
        let mut retry: Vec<Sample> = Vec::new();
        sweep("memory", &tree, &queries, &mut retry);
        (single, best_multi) = memory_scaling(&retry);
    }
    if cores > 1 {
        if best_multi > single {
            println!(
                "scaling: OK — best multi-worker {:.1} q/s > single worker {:.1} q/s \
                 ({:.2}x)",
                best_multi,
                single,
                best_multi / single
            );
        } else {
            println!(
                "scaling: WARN — best multi-worker {best_multi:.1} q/s did not beat single \
                 worker {single:.1} q/s after a retry (loaded/throttled host?); \
                 answers were verified identical on every run"
            );
        }
    } else {
        println!(
            "scaling check skipped: single-core host (best multi {best_multi:.1} q/s vs \
             single {single:.1} q/s)"
        );
    }
}
