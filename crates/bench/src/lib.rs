//! Experiment harness shared by the per-figure binaries.
//!
//! Every binary regenerates one table/figure of the paper (Sec 6) and
//! prints the same rows/series the paper reports. Scaling knobs (all via
//! environment variables or `--flags`) let the suite run anywhere from a
//! smoke test to the paper's full cardinalities:
//!
//! * `UTREE_SCALE`   — dataset size factor (default 0.2; `1.0` = paper);
//! * `UTREE_QUERIES` — queries per workload (default 100, as the paper);
//! * `UTREE_N1`      — Monte-Carlo samples per probability computation
//!   (default 20 000; the paper uses 10⁶ — counts are reported separately
//!   so this only rescales CPU seconds, identically for every structure);
//! * `UTREE_IO_MS`   — modelled I/O latency per page access (default
//!   5 ms), used to combine counted I/O with measured CPU into the paper's
//!   "total cost" charts.

use datagen::Workload;
use std::time::Instant;
use utree::{ProbIndex, Query, QueryOptions, QueryStats, RefineMode, UPcrTree, UTree};

/// Scaling knobs (see crate docs).
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Queries per workload.
    pub queries: usize,
    /// Monte-Carlo n₁.
    pub n1: usize,
    /// Modelled I/O latency (milliseconds per page).
    pub io_ms: f64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.2,
            queries: 100,
            n1: 20_000,
            io_ms: 5.0,
        }
    }
}

impl HarnessConfig {
    /// Reads the knobs from the environment; `--full` in `args` forces
    /// `scale = 1.0` (the paper's cardinalities).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_f64("UTREE_SCALE") {
            cfg.scale = v;
        }
        if let Some(v) = env_f64("UTREE_QUERIES") {
            cfg.queries = v as usize;
        }
        if let Some(v) = env_f64("UTREE_N1") {
            cfg.n1 = v as usize;
        }
        if let Some(v) = env_f64("UTREE_IO_MS") {
            cfg.io_ms = v;
        }
        if std::env::args().any(|a| a == "--full") {
            cfg.scale = 1.0;
        }
        if std::env::args().any(|a| a == "--smoke") {
            cfg.scale = 0.02;
            cfg.queries = 10;
            cfg.n1 = 2_000;
        }
        cfg
    }

    /// Scaled dataset size.
    pub fn sized(&self, full: usize) -> usize {
        ((full as f64 * self.scale) as usize).max(500)
    }

    /// The refinement mode used by the experiment binaries.
    pub fn refine_mode(&self) -> RefineMode {
        RefineMode::MonteCarlo {
            n1: self.n1,
            seed: 0x5EED,
        }
    }
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Workload-averaged costs (one row of a paper chart).
#[derive(Debug, Clone, Copy, Default)]
pub struct AvgCost {
    /// Average index node accesses per query (Fig 9/10 I/O panels).
    pub node_accesses: f64,
    /// Average heap page reads per query.
    pub heap_reads: f64,
    /// Average appearance-probability computations per query.
    pub prob_computations: f64,
    /// Percentage of qualifying objects reported without refinement.
    pub directly_reported_pct: f64,
    /// Average measured CPU seconds per query (filter + refinement).
    pub cpu_secs: f64,
    /// Average result cardinality.
    pub results: f64,
    /// Average candidates sent to refinement.
    pub candidates: f64,
}

impl AvgCost {
    /// The paper's "total cost": modelled I/O time + measured CPU time.
    pub fn total_secs(&self, io_ms: f64) -> f64 {
        (self.node_accesses + self.heap_reads) * io_ms / 1000.0 + self.cpu_secs
    }

    fn from_accumulated(acc: &QueryStats, n: usize, validated_sum: u64, results_sum: u64) -> Self {
        let n = n as f64;
        AvgCost {
            node_accesses: acc.node_reads as f64 / n,
            heap_reads: acc.heap_reads as f64 / n,
            prob_computations: acc.prob_computations as f64 / n,
            directly_reported_pct: if results_sum == 0 {
                0.0
            } else {
                100.0 * validated_sum as f64 / results_sum as f64
            },
            cpu_secs: (acc.filter_nanos + acc.refine_nanos) as f64 / 1e9 / n,
            results: acc.results as f64 / n,
            candidates: acc.candidates as f64 / n,
        }
    }
}

/// Runs a workload against any [`ProbIndex`] backend and averages the
/// paper's cost metrics.
pub fn run_workload<const D: usize, I: ProbIndex<D>>(
    index: &I,
    workload: &Workload<D>,
    mode: RefineMode,
) -> AvgCost {
    run_workload_with_options(index, workload, mode, QueryOptions::default())
}

/// [`run_workload`] with ablation switches (the filter-component study;
/// only the U-tree honours them).
pub fn run_workload_with_options<const D: usize, I: ProbIndex<D>>(
    index: &I,
    workload: &Workload<D>,
    mode: RefineMode,
    opts: QueryOptions,
) -> AvgCost {
    let mut acc = QueryStats::default();
    let mut validated = 0u64;
    let mut results = 0u64;
    for q in &workload.queries {
        let outcome = index.execute(&Query::from_prob_range(*q, mode).with_options(opts));
        validated += outcome.stats.validated;
        results += outcome.stats.results;
        acc += &outcome.stats;
    }
    AvgCost::from_accumulated(&acc, workload.len(), validated, results)
}

/// Times a closure in seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Builds the U-tree / U-PCR pair with the paper's Sec 6.2 catalogs
/// (U-tree m = 15; U-PCR m = 9 in 2D, m = 10 in 3D — the builder
/// defaults).
pub fn build_pair<const D: usize>(
    objs: &[uncertain_pdf::UncertainObject<D>],
) -> (UTree<D>, UPcrTree<D>) {
    let mut utree = UTree::<D>::builder()
        .build()
        .expect("paper default catalog is valid");
    let mut upcr = UPcrTree::<D>::builder()
        .build()
        .expect("paper default catalog is valid");
    utree.bulk_load(objs);
    upcr.bulk_load(objs);
    (utree, upcr)
}

/// Query centers that follow the data distribution (paper Sec 6).
pub fn centers_of<const D: usize>(
    objs: &[uncertain_pdf::UncertainObject<D>],
) -> Vec<uncertain_geom::Point<D>> {
    objs.iter().map(|o| o.mbr().center()).collect()
}

/// One sweep point of a Fig 9/10-style chart: both structures on the same
/// workload.
pub struct PairCost {
    /// U-tree averages.
    pub utree: AvgCost,
    /// U-PCR averages.
    pub upcr: AvgCost,
}

/// Runs one workload against both structures.
pub fn run_pair<const D: usize>(
    utree: &UTree<D>,
    upcr: &UPcrTree<D>,
    w: &Workload<D>,
    mode: RefineMode,
) -> PairCost {
    PairCost {
        utree: run_workload(utree, w, mode),
        upcr: run_workload(upcr, w, mode),
    }
}

/// Emits the three Fig 9/10 panels (I/O, CPU, total) for one dataset.
pub fn print_fig_panels(
    dataset: &str,
    xlabel: &str,
    xs: &[String],
    costs: &[PairCost],
    io_ms: f64,
) {
    let io_rows: Vec<Vec<String>> = xs
        .iter()
        .zip(costs)
        .map(|(x, c)| {
            vec![
                x.clone(),
                fmt(c.utree.node_accesses),
                fmt(c.upcr.node_accesses),
            ]
        })
        .collect();
    print_table(
        &format!("{dataset}: node accesses vs {xlabel}"),
        &[xlabel, "U-tree", "U-PCR"],
        &io_rows,
    );
    let cpu_rows: Vec<Vec<String>> = xs
        .iter()
        .zip(costs)
        .map(|(x, c)| {
            vec![
                x.clone(),
                fmt(c.utree.prob_computations),
                format!("{:.0}%", c.utree.directly_reported_pct),
                fmt(c.upcr.prob_computations),
                format!("{:.0}%", c.upcr.directly_reported_pct),
            ]
        })
        .collect();
    print_table(
        &format!("{dataset}: # prob. computations (and % of results validated for free)"),
        &[xlabel, "U-tree", "(free%)", "U-PCR", "(free%)"],
        &cpu_rows,
    );
    let total_rows: Vec<Vec<String>> = xs
        .iter()
        .zip(costs)
        .map(|(x, c)| {
            vec![
                x.clone(),
                format!("{:.3}", c.utree.total_secs(io_ms)),
                format!("{:.3}", c.upcr.total_secs(io_ms)),
            ]
        })
        .collect();
    print_table(
        &format!("{dataset}: total cost (sec, modelled I/O @ {io_ms} ms + measured CPU)"),
        &[xlabel, "U-tree", "U-PCR"],
        &total_rows,
    );
}

/// Prints a fixed-width table (the binaries' tabular output).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats bytes as MB with one decimal (Table 1 style).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}M", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::workload;
    use uncertain_geom::Point;

    #[test]
    fn harness_runs_a_tiny_experiment_end_to_end() {
        let objs = datagen::lb_dataset(300, 3);
        let mut tree = UTree::<2>::builder().uniform_catalog(8).build().unwrap();
        tree.bulk_load(&objs);
        let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
        let w = workload(&centers, 800.0, 0.6, 10, 1);
        let cost = run_workload(&tree, &w, RefineMode::reference(1e-6));
        assert!(cost.node_accesses > 0.0);
        assert!(cost.results > 0.0, "queries centred on data must hit");
        assert!(cost.total_secs(5.0) > 0.0);
    }

    #[test]
    fn phase_breakdown_sums_within_wall_clock() {
        // The attributable-speedup contract behind the bench JSON lines:
        // on a sequential run the filter + refine phase clocks are
        // disjoint slices of the same wall interval, so their sum cannot
        // exceed the batch wall clock, and a Monte-Carlo workload must
        // charge refined samples.
        let objs = datagen::lb_dataset(300, 3);
        let mut tree = UTree::<2>::builder().uniform_catalog(8).build().unwrap();
        tree.bulk_load(&objs);
        let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
        let queries: Vec<Query<2>> = workload(&centers, 800.0, 0.5, 8, 1)
            .queries
            .iter()
            .map(|q| {
                Query::from_prob_range(
                    *q,
                    RefineMode::MonteCarlo {
                        n1: 2_000,
                        seed: 0x5EED,
                    },
                )
            })
            .collect();
        let out = utree::engine::BatchExecutor::run_sequential(&tree, &queries);
        let phases = out.stats.filter_nanos + out.stats.refine_nanos;
        assert!(
            phases <= out.wall_nanos,
            "phase sum {phases} ns exceeds batch wall clock {} ns",
            out.wall_nanos
        );
        assert!(
            out.stats.refined_samples > 0,
            "a Monte-Carlo workload over data-centred queries must refine"
        );
        assert_eq!(
            out.stats.refined_samples % 2_000,
            0,
            "refined samples accrue in whole n1 batches"
        );
    }

    #[test]
    fn config_scaling() {
        let cfg = HarnessConfig {
            scale: 0.1,
            ..Default::default()
        };
        assert_eq!(cfg.sized(53_000), 5_300);
        assert_eq!(cfg.sized(100), 500, "floor keeps smoke runs meaningful");
    }
}
