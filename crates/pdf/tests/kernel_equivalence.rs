//! The kernel-vs-scalar oracle contract: [`MonteCarlo::estimate_with`]
//! (chunked SoA kernels over a [`PreparedPdf`]) must return **byte-identical**
//! probabilities to the scalar [`MonteCarlo::estimate`] under the same seed —
//! across every pdf variant, dimensionality, seed, and chunk-boundary sample
//! count. Any drift here means the kernel changed the RNG consumption order
//! or the floating-point expression shapes, which would silently change query
//! answers everywhere.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uncertain_geom::{Point, Rect};
use uncertain_pdf::{HistogramPdf, MonteCarlo, ObjectPdf, PreparedPdf, RefineScratch, CHUNK};

/// n₁ values straddling every chunk boundary the driver can hit.
const SAMPLE_COUNTS: [usize; 5] = [1, CHUNK - 1, CHUNK, CHUNK + 1, 10_000];
const SEEDS: [u64; 3] = [0, 0xC0FFEE, 0x5EED_5EED_5EED_5EED];

fn assert_equivalent<const D: usize>(pdf: &ObjectPdf<D>, rq: &Rect<D>, label: &str) {
    let prepared = PreparedPdf::new(pdf);
    let mut scratch = RefineScratch::new();
    for n1 in SAMPLE_COUNTS {
        let mc = MonteCarlo::new(n1);
        for seed in SEEDS {
            let scalar = mc.estimate(pdf, rq, &mut SmallRng::seed_from_u64(seed));
            let kernel = mc.estimate_with(
                &prepared,
                rq,
                &mut SmallRng::seed_from_u64(seed),
                &mut scratch,
            );
            assert_eq!(
                scalar.to_bits(),
                kernel.to_bits(),
                "{label}: kernel {kernel} != scalar {scalar} at n1={n1} seed={seed:#x}"
            );
        }
    }
}

/// Query rects exercising every estimator path for a support centered at
/// `c` with half-extent `r`: partial overlap, sliver, disjoint, containing,
/// and a degenerate (zero-thickness) slab.
fn query_rects<const D: usize>(c: f64, r: f64) -> Vec<Rect<D>> {
    let full = |lo: f64, hi: f64| Rect::new([lo; D], [hi; D]);
    let mut rects = vec![
        full(c - 0.4 * r, c + 0.9 * r),
        full(c + 0.7 * r, c + 2.0 * r),
        full(c + 3.0 * r, c + 4.0 * r),
        full(c - 2.0 * r, c + 2.0 * r),
        full(c + 0.1 * r, c + 0.1 * r),
    ];
    // An asymmetric rect (different bounds per dim) to catch any dim-major
    // indexing mistake in the SoA layout.
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for d in 0..D {
        min[d] = c - r * (0.2 + 0.3 * d as f64);
        max[d] = c + r * (0.8 - 0.2 * d as f64);
    }
    rects.push(Rect::new(min, max));
    rects
}

fn ball<const D: usize>(c: f64, r: f64) -> ObjectPdf<D> {
    ObjectPdf::UniformBall {
        center: Point::new([c; D]),
        radius: r,
    }
}

fn congau<const D: usize>(c: f64, r: f64) -> ObjectPdf<D> {
    ObjectPdf::ConGauBall {
        center: Point::new([c; D]),
        radius: r,
        sigma: r / 2.0,
    }
}

fn boxed<const D: usize>(c: f64, r: f64) -> ObjectPdf<D> {
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for d in 0..D {
        min[d] = c - r * (1.0 + 0.1 * d as f64);
        max[d] = c + r * (1.0 - 0.1 * d as f64);
    }
    ObjectPdf::UniformBox {
        rect: Rect::new(min, max),
    }
}

fn histogram<const D: usize>(c: f64, r: f64) -> ObjectPdf<D> {
    let rect = Rect::new([c - r; D], [c + r; D]);
    ObjectPdf::Histogram(HistogramPdf::from_fn(rect, [4; D], |p| {
        1.0 + p.coords.iter().sum::<f64>().abs()
    }))
}

fn check_variants<const D: usize>() {
    let (c, r) = (100.0, 25.0);
    for rq in query_rects::<D>(c, r) {
        assert_equivalent(&ball::<D>(c, r), &rq, "uniform-ball");
        assert_equivalent(&congau::<D>(c, r), &rq, "congau-ball");
        assert_equivalent(&boxed::<D>(c, r), &rq, "uniform-box");
        assert_equivalent(&histogram::<D>(c, r), &rq, "histogram");
    }
}

#[test]
fn kernel_matches_scalar_1d() {
    check_variants::<1>();
}

#[test]
fn kernel_matches_scalar_2d() {
    check_variants::<2>();
}

#[test]
fn kernel_matches_scalar_3d() {
    check_variants::<3>();
}

/// A box with a degenerate dimension draws no RNG for that dimension in the
/// scalar sampler; the kernel must consume the stream identically.
#[test]
fn kernel_matches_scalar_on_degenerate_box_dim() {
    let pdf: ObjectPdf<2> = ObjectPdf::UniformBox {
        rect: Rect::new([10.0, 5.0], [20.0, 5.0]),
    };
    for rq in [
        Rect::new([12.0, 4.0], [18.0, 6.0]),
        Rect::new([12.0, 5.0], [18.0, 5.0]),
        Rect::new([0.0, 0.0], [14.0, 5.0]),
    ] {
        assert_equivalent(&pdf, &rq, "degenerate-box");
    }
}

/// Scratch reuse across heterogeneous candidates (different variants and
/// query rects back-to-back, as a real refinement pass does) must not leak
/// state between estimates.
#[test]
fn scratch_reuse_is_stateless_across_candidates() {
    let mc = MonteCarlo::new(CHUNK + 7);
    let pdfs: Vec<ObjectPdf<2>> = vec![
        ball::<2>(0.0, 1.0),
        congau::<2>(3.0, 2.0),
        boxed::<2>(-5.0, 1.5),
        histogram::<2>(10.0, 4.0),
    ];
    let rq = Rect::new([-6.0, -6.0], [11.0, 2.0]);
    let mut scratch = RefineScratch::new();
    for round in 0..3 {
        for pdf in &pdfs {
            let scalar = mc.estimate(pdf, &rq, &mut SmallRng::seed_from_u64(round));
            let prepared = PreparedPdf::new(pdf);
            let kernel = mc.estimate_with(
                &prepared,
                &rq,
                &mut SmallRng::seed_from_u64(round),
                &mut scratch,
            );
            assert_eq!(scalar.to_bits(), kernel.to_bits(), "round {round}");
        }
    }
    // The ball is contained by rq and the histogram is disjoint from it —
    // both short-circuit without sampling — so only the congau and box
    // candidates charge the counter.
    assert_eq!(scratch.samples(), 3 * 2 * (CHUNK as u64 + 7));
}
