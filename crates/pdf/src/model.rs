//! The pdf models attached to uncertain objects.

use crate::histogram::HistogramPdf;
use crate::marginal::{NumericMarginal, DEFAULT_GRID};
use crate::math::{chi2_cdf_cached, unit_ball_volume};
use crate::region::Region;
use rand::Rng;
use uncertain_geom::{Point, Rect};

/// A probability density function with bounded support.
///
/// The paper's experiments use `UniformBall` (LB, Aircraft) and
/// `ConGauBall` — the *Constrained-Gaussian* of Eq. 16 — (CA). `UniformBox`
/// models sensor-style axis-aligned uncertainty and `Histogram` realises
/// truly arbitrary shapes. The index never looks inside this enum: it only
/// consumes [`ObjectPdf::mbr`], [`ObjectPdf::marginal`] (for PCRs) and the
/// appearance-probability evaluator (for refinement), which is exactly the
/// paper's "unified solution" contract.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectPdf<const D: usize> {
    /// Equal density over a ball (paper Eq. 1 scenario).
    UniformBall {
        /// Ball center.
        center: Point<D>,
        /// Ball radius.
        radius: f64,
    },
    /// Equal density over a box.
    UniformBox {
        /// The support box.
        rect: Rect<D>,
    },
    /// Isotropic Gaussian with mean `center` and std-dev `sigma`, truncated
    /// to the ball of `radius` and renormalised (paper Eq. 16). The paper
    /// uses `sigma = radius / 2`.
    ConGauBall {
        /// Gaussian mean and ball center.
        center: Point<D>,
        /// Truncation radius.
        radius: f64,
        /// Standard deviation before truncation.
        sigma: f64,
    },
    /// Arbitrary grid pdf.
    Histogram(HistogramPdf<D>),
}

/// A per-dimension marginal CDF with an exact or tabulated backend.
///
/// `marginal(i).quantile(p)` is the paper's "solve x from o.cdf(x) = p"
/// (Sec 4.1) — the primitive PCR construction is built on.
#[derive(Debug, Clone)]
pub enum MarginalCdf {
    /// Linear CDF on `[lo, hi]` (uniform box).
    UniformInterval {
        /// Lower support bound.
        lo: f64,
        /// Upper support bound.
        hi: f64,
    },
    /// Marginal of the uniform distribution over a 2-D disk.
    UniformDisk {
        /// Disk center projected on this axis.
        center: f64,
        /// Disk radius.
        radius: f64,
    },
    /// Marginal of the uniform distribution over a 3-D ball.
    UniformSphere {
        /// Ball center projected on this axis.
        center: f64,
        /// Ball radius.
        radius: f64,
    },
    /// Tabulated fallback (Con-Gau, uniform balls for D >= 4, histograms).
    Numeric(NumericMarginal),
}

impl MarginalCdf {
    /// `P(X_i <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        match self {
            MarginalCdf::UniformInterval { lo, hi } => ((t - lo) / (hi - lo)).clamp(0.0, 1.0),
            MarginalCdf::UniformDisk { center, radius } => {
                let u = ((t - center) / radius).clamp(-1.0, 1.0);
                // Area fraction of the disk left of the chord at u:
                // (u√(1-u²) + asin(u) + π/2) / π
                (u * (1.0 - u * u).sqrt() + u.asin() + std::f64::consts::FRAC_PI_2)
                    / std::f64::consts::PI
            }
            MarginalCdf::UniformSphere { center, radius } => {
                let u = ((t - center) / radius).clamp(-1.0, 1.0);
                // Volume fraction: 3/4·(u - u³/3 + 2/3)
                0.75 * (u - u * u * u / 3.0 + 2.0 / 3.0)
            }
            MarginalCdf::Numeric(n) => n.cdf(t),
        }
    }

    /// Smallest `t` with `cdf(t) >= p` (clamped to the support).
    ///
    /// Disk/sphere marginals share one precomputed unit inverse-CDF table
    /// (every object has the same shape up to center/radius), polished by
    /// two Newton steps with the analytic marginal density — this keeps the
    /// per-object PCR cost at insertion time low.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            MarginalCdf::UniformInterval { lo, hi } => lo + p * (hi - lo),
            MarginalCdf::UniformDisk { center, radius } => {
                center + radius * unit_ball_quantile::<2>(p)
            }
            MarginalCdf::UniformSphere { center, radius } => {
                center + radius * unit_ball_quantile::<3>(p)
            }
            MarginalCdf::Numeric(n) => n.quantile(p),
        }
    }

    /// Support of the marginal as `(lo, hi)`.
    pub fn support(&self) -> (f64, f64) {
        match self {
            MarginalCdf::UniformInterval { lo, hi } => (*lo, *hi),
            MarginalCdf::UniformDisk { center, radius }
            | MarginalCdf::UniformSphere { center, radius } => (center - radius, center + radius),
            MarginalCdf::Numeric(n) => (n.lo(), n.hi()),
        }
    }
}

/// Unit-ball marginal CDF on `[-1, 1]` for dimension `BALL_D` (2 or 3).
fn unit_ball_cdf<const BALL_D: usize>(u: f64) -> f64 {
    let u = u.clamp(-1.0, 1.0);
    match BALL_D {
        2 => {
            (u * (1.0 - u * u).sqrt() + u.asin() + std::f64::consts::FRAC_PI_2)
                / std::f64::consts::PI
        }
        3 => 0.75 * (u - u * u * u / 3.0 + 2.0 / 3.0),
        // xlint: allow(panic-freedom) -- invariant: only disk and sphere have table-backed quantiles
        _ => unreachable!("only disk and sphere have table-backed quantiles"),
    }
}

/// Normalised marginal density of the unit ball (the Newton derivative).
fn unit_ball_density<const BALL_D: usize>(u: f64) -> f64 {
    let w2 = (1.0 - u * u).max(0.0);
    match BALL_D {
        2 => 2.0 * w2.sqrt() / std::f64::consts::PI,
        3 => 0.75 * w2,
        // xlint: allow(panic-freedom) -- tag validated at decode time; other values are unconstructible
        _ => unreachable!(),
    }
}

/// Quantile of the unit-ball marginal via a shared 1024-entry table plus
/// Newton polish (absolute accuracy ~1e-12 away from the poles).
fn unit_ball_quantile<const BALL_D: usize>(p: f64) -> f64 {
    use std::sync::OnceLock;
    static DISK: OnceLock<Vec<f64>> = OnceLock::new();
    static SPHERE: OnceLock<Vec<f64>> = OnceLock::new();
    const N: usize = 1024;
    let table = match BALL_D {
        2 => DISK.get_or_init(|| build_unit_table::<2>(N)),
        3 => SPHERE.get_or_init(|| build_unit_table::<3>(N)),
        // xlint: allow(panic-freedom) -- tag validated at decode time; other values are unconstructible
        _ => unreachable!(),
    };
    if p <= 0.0 {
        return -1.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let pos = p * N as f64;
    let k = (pos.floor() as usize).min(N - 1);
    let frac = pos - k as f64;
    let mut u = table[k] + (table[k + 1] - table[k]) * frac;
    // Newton polish on the analytic CDF.
    for _ in 0..2 {
        let f = unit_ball_cdf::<BALL_D>(u) - p;
        let d = unit_ball_density::<BALL_D>(u);
        if d > 1e-12 {
            u = (u - f / d).clamp(-1.0, 1.0);
        }
    }
    u
}

fn build_unit_table<const BALL_D: usize>(n: usize) -> Vec<f64> {
    (0..=n)
        .map(|k| {
            let p = k as f64 / n as f64;
            crate::math::bisect_monotone(&unit_ball_cdf::<BALL_D>, -1.0, 1.0, p, 1e-14)
        })
        .collect()
}

impl<const D: usize> ObjectPdf<D> {
    /// The support of the pdf (the paper's `o.ur`).
    pub fn region(&self) -> Region<D> {
        match self {
            ObjectPdf::UniformBall { center, radius }
            | ObjectPdf::ConGauBall { center, radius, .. } => Region::Ball {
                center: *center,
                radius: *radius,
            },
            ObjectPdf::UniformBox { rect } => Region::Box { rect: *rect },
            ObjectPdf::Histogram(h) => Region::Box { rect: *h.rect() },
        }
    }

    /// MBR of the uncertainty region (`o.MBR` in the paper).
    pub fn mbr(&self) -> Rect<D> {
        self.region().mbr()
    }

    /// Normalisation constant λ of the Constrained-Gaussian (Eq. 16):
    /// the mass the untruncated Gaussian places inside the ball.
    /// Returns 1 for the other models.
    ///
    /// Memoized ([`chi2_cdf_cached`]) — λ depends only on `(D, r/σ)`, so
    /// the per-sample calls from scalar [`ObjectPdf::density`] and the
    /// `appearance_reference` quadrature hit the cache after the first
    /// evaluation.
    pub fn lambda(&self) -> f64 {
        match self {
            ObjectPdf::ConGauBall { radius, sigma, .. } => {
                chi2_cdf_cached(D, (radius / sigma).powi(2))
            }
            _ => 1.0,
        }
    }

    /// Density at `p` (0 outside the support).
    pub fn density(&self, p: &Point<D>) -> f64 {
        match self {
            ObjectPdf::UniformBall { center, radius } => {
                if center.distance_sq(p) <= radius * radius {
                    1.0 / (unit_ball_volume(D) * radius.powi(D as i32))
                } else {
                    0.0
                }
            }
            ObjectPdf::UniformBox { rect } => {
                if rect.contains_point(p) {
                    1.0 / rect.area()
                } else {
                    0.0
                }
            }
            ObjectPdf::ConGauBall {
                center,
                radius,
                sigma,
            } => {
                let d2 = center.distance_sq(p);
                if d2 > radius * radius {
                    return 0.0;
                }
                let norm = (sigma * (2.0 * std::f64::consts::PI).sqrt()).powi(D as i32);
                ((-d2 / (2.0 * sigma * sigma)).exp() / norm) / self.lambda()
            }
            ObjectPdf::Histogram(h) => h.density(p),
        }
    }

    /// The marginal CDF on dimension `dim`.
    ///
    /// Exact closed forms where they exist; tabulated otherwise. The
    /// tabulation is the one-time per-object cost the paper accepts at
    /// insertion time ("the CFBs need to be computed only once").
    pub fn marginal(&self, dim: usize) -> MarginalCdf {
        assert!(dim < D);
        match self {
            ObjectPdf::UniformBox { rect } => MarginalCdf::UniformInterval {
                lo: rect.min[dim],
                hi: rect.max[dim],
            },
            ObjectPdf::UniformBall { center, radius } => match D {
                1 => MarginalCdf::UniformInterval {
                    lo: center.coords[dim] - radius,
                    hi: center.coords[dim] + radius,
                },
                2 => MarginalCdf::UniformDisk {
                    center: center.coords[dim],
                    radius: *radius,
                },
                3 => MarginalCdf::UniformSphere {
                    center: center.coords[dim],
                    radius: *radius,
                },
                _ => {
                    // Marginal density ∝ (1 - u²)^((D-1)/2)
                    let c = center.coords[dim];
                    let r = *radius;
                    let e = (D as f64 - 1.0) / 2.0;
                    MarginalCdf::Numeric(NumericMarginal::from_density(
                        move |x| {
                            let u = (x - c) / r;
                            (1.0 - u * u).max(0.0).powf(e)
                        },
                        c - r,
                        c + r,
                        DEFAULT_GRID,
                    ))
                }
            },
            ObjectPdf::ConGauBall {
                center,
                radius,
                sigma,
            } => {
                let c = center.coords[dim];
                let r = *radius;
                let s = *sigma;
                if D == 1 {
                    MarginalCdf::Numeric(NumericMarginal::from_density(
                        move |x| (-(x - c) * (x - c) / (2.0 * s * s)).exp(),
                        c - r,
                        c + r,
                        DEFAULT_GRID,
                    ))
                } else {
                    // Slice mass: g(x) times the mass an isotropic (D-1)-dim
                    // Gaussian places inside the cross-section ball of radius
                    // w(x) = sqrt(r² - (x-c)²). Normalisation folds into the
                    // tabulation; the fast chi² (error ≤ 2e-7) is dwarfed by
                    // the grid error.
                    MarginalCdf::Numeric(NumericMarginal::from_density(
                        move |x| {
                            let dx = x - c;
                            let w2 = r * r - dx * dx;
                            if w2 <= 0.0 {
                                return 0.0;
                            }
                            (-dx * dx / (2.0 * s * s)).exp()
                                * crate::math::chi2_cdf_fast(D - 1, w2 / (s * s))
                        },
                        c - r,
                        c + r,
                        DEFAULT_GRID,
                    ))
                }
            }
            ObjectPdf::Histogram(h) => {
                // Delegate to the histogram's exact marginal via tabulation
                // of its piecewise-constant marginal density? Not needed —
                // wrap the exact CDF directly.
                let rect = *h.rect();
                let lo = rect.min[dim];
                let hi = rect.max[dim];
                // Tabulate the exact CDF derivative at high resolution.
                let h2 = h.clone();
                MarginalCdf::Numeric(NumericMarginal::from_density(
                    move |x| {
                        // Numerical derivative of the exact marginal CDF is
                        // avoidable: the marginal density is piecewise
                        // constant; sample the CDF slope at cell resolution.
                        let eps = (hi - lo) * 1e-7;
                        (h2.marginal_cdf(dim, x + eps) - h2.marginal_cdf(dim, x - eps))
                            / (2.0 * eps)
                    },
                    lo,
                    hi,
                    DEFAULT_GRID.max(h.bins()[dim] * 8),
                ))
            }
        }
    }

    /// All `D` marginals at once (PCR computation touches every dimension).
    pub fn marginals(&self) -> Vec<MarginalCdf> {
        (0..D).map(|i| self.marginal(i)).collect()
    }

    /// Draws a point uniformly from the *support* — this is the sampling
    /// distribution of the paper's Monte-Carlo estimator (Eq. 3).
    pub fn sample_support_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point<D> {
        self.region().sample_uniform(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> ObjectPdf<2> {
        ObjectPdf::UniformBall {
            center: Point::new([100.0, 50.0]),
            radius: 10.0,
        }
    }

    #[test]
    fn uniform_ball_density_integrates_to_one() {
        let p = disk();
        let d = p.density(&Point::new([100.0, 50.0]));
        let area = std::f64::consts::PI * 100.0;
        assert!((d - 1.0 / area).abs() < 1e-12);
        assert_eq!(p.density(&Point::new([120.0, 50.0])), 0.0);
    }

    #[test]
    fn disk_marginal_cdf_midpoint_and_symmetry() {
        let p = disk();
        let m = p.marginal(0);
        assert!((m.cdf(100.0) - 0.5).abs() < 1e-12);
        assert!((m.cdf(90.0)).abs() < 1e-12);
        assert!((m.cdf(110.0) - 1.0).abs() < 1e-12);
        // symmetry: F(c - t) = 1 - F(c + t)
        for t in [2.0, 5.0, 8.0] {
            assert!((m.cdf(100.0 - t) - (1.0 - m.cdf(100.0 + t))).abs() < 1e-10);
        }
    }

    #[test]
    fn disk_quantile_inverts() {
        let m = disk().marginal(1);
        for p in [0.1, 0.25, 0.5, 0.9] {
            let t = m.quantile(p);
            assert!((m.cdf(t) - p).abs() < 1e-8, "p={p}");
        }
        assert_eq!(m.quantile(0.0), 40.0);
        assert_eq!(m.quantile(1.0), 60.0);
    }

    #[test]
    fn sphere_marginal_is_the_cap_volume() {
        let p: ObjectPdf<3> = ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0, 0.0]),
            radius: 1.0,
        };
        let m = p.marginal(2);
        assert!((m.cdf(0.0) - 0.5).abs() < 1e-12);
        // cap up to u=0.5: 3/4·(0.5 - 0.125/3 + 2/3)
        let expect = 0.75 * (0.5 - 0.125 / 3.0 + 2.0 / 3.0);
        assert!((m.cdf(0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn congau_lambda_and_density() {
        let p: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: Point::new([0.0, 0.0]),
            radius: 250.0,
            sigma: 125.0,
        };
        // λ = 1 - exp(-(r/σ)²/2) = 1 - exp(-2)
        let lambda = p.lambda();
        assert!((lambda - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
        // density at center = 1/(2πσ²λ)
        let expect = 1.0 / (2.0 * std::f64::consts::PI * 125.0 * 125.0 * lambda);
        assert!((p.density(&Point::new([0.0, 0.0])) - expect).abs() < 1e-15);
        assert_eq!(p.density(&Point::new([251.0, 0.0])), 0.0);
    }

    #[test]
    fn congau_marginal_symmetric_and_tighter_than_uniform() {
        let c = Point::new([0.0, 0.0]);
        let gau: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: c,
            radius: 250.0,
            sigma: 125.0,
        };
        let m = gau.marginal(0);
        assert!((m.cdf(0.0) - 0.5).abs() < 1e-6);
        for t in [50.0, 120.0, 200.0] {
            assert!((m.cdf(-t) - (1.0 - m.cdf(t))).abs() < 1e-6);
        }
        // Gaussian concentrates mass near the mean: its 10% quantile must be
        // closer to the center than the uniform disk's.
        let uni = ObjectPdf::UniformBall {
            center: c,
            radius: 250.0,
        };
        assert!(m.quantile(0.1) > uni.marginal(0).quantile(0.1));
    }

    #[test]
    fn mbr_of_ball_and_box() {
        assert_eq!(disk().mbr(), Rect::new([90.0, 40.0], [110.0, 60.0]));
        let b: ObjectPdf<2> = ObjectPdf::UniformBox {
            rect: Rect::new([1.0, 2.0], [3.0, 4.0]),
        };
        assert_eq!(b.mbr(), Rect::new([1.0, 2.0], [3.0, 4.0]));
    }

    #[test]
    fn histogram_marginal_roundtrip() {
        let h = HistogramPdf::from_fn(Rect::new([0.0, 0.0], [1.0, 1.0]), [16, 16], |p| {
            1.0 + p.coords[0]
        });
        let pdf = ObjectPdf::Histogram(h.clone());
        let m = pdf.marginal(0);
        for t in [0.25, 0.5, 0.75] {
            assert!(
                (m.cdf(t) - h.marginal_cdf(0, t)).abs() < 5e-3,
                "tabulated marginal deviates at {t}"
            );
        }
    }

    #[test]
    fn support_sampling_matches_region() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(11);
        let p = disk();
        for _ in 0..100 {
            let x = p.sample_support_uniform(&mut rng);
            assert!(p.region().contains(&x));
        }
    }
}
