//! Uncertain objects: identity + pdf.

use crate::model::ObjectPdf;
use uncertain_geom::Rect;

/// An uncertain object: a stable identifier plus its pdf (which carries the
/// uncertainty region).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainObject<const D: usize> {
    /// Application-level identifier, preserved through the index.
    pub id: u64,
    /// The probability density of the object's location.
    pub pdf: ObjectPdf<D>,
}

impl<const D: usize> UncertainObject<D> {
    /// Creates an object.
    pub fn new(id: u64, pdf: ObjectPdf<D>) -> Self {
        Self { id, pdf }
    }

    /// MBR of the object's uncertainty region.
    pub fn mbr(&self) -> Rect<D> {
        self.pdf.mbr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;

    #[test]
    fn object_mbr_delegates_to_pdf() {
        let o = UncertainObject::new(
            42,
            ObjectPdf::UniformBall {
                center: Point::new([5.0, 5.0]),
                radius: 1.0,
            },
        );
        assert_eq!(o.id, 42);
        assert_eq!(o.mbr(), Rect::new([4.0, 4.0], [6.0, 6.0]));
    }
}
