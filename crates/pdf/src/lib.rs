//! Probability machinery for uncertain objects.
//!
//! An *uncertain object* (paper, Sec 3) is a point whose position follows a
//! pdf with bounded support (the *uncertainty region*). This crate supplies:
//!
//! * [`math`] — special functions (erf, Φ, regularized incomplete gamma),
//!   adaptive Simpson quadrature and bisection root finding;
//! * [`Region`] — uncertainty-region shapes (balls as in the paper's
//!   location-based-services scenario, boxes for sensor ranges);
//! * [`ObjectPdf`] — the pdf models: Uniform, Constrained-Gaussian
//!   (paper Eq. 16) and a grid [`HistogramPdf`] realising "arbitrary pdfs";
//! * marginal CDFs per dimension (the `o.cdf(x₁)` of Sec 4.1) together with
//!   their inverses, which is exactly what PCR computation needs;
//! * [`appearance`] — the Monte-Carlo estimator of Eq. 3 plus analytic /
//!   quadrature references used for validation and the refinement step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod appearance;
pub mod histogram;
pub mod kernel;
pub mod marginal;
pub mod math;
pub mod model;
pub mod object;
pub mod region;

pub use appearance::{appearance_probability, appearance_reference, MonteCarlo, ZeroSampleCount};
pub use histogram::HistogramPdf;
pub use kernel::{PreparedPdf, RefineScratch, CHUNK};
pub use marginal::NumericMarginal;
pub use model::ObjectPdf;
pub use object::UncertainObject;
pub use region::Region;
