//! Tabulated one-dimensional marginal CDFs.
//!
//! PCR computation (paper Sec 4.1) reduces to inverting the per-dimension
//! cumulative density `o.cdf(x_i)`. For models without a closed form
//! (Constrained-Gaussian) we tabulate the marginal density on a uniform grid
//! once per object/dimension and reuse the table for every quantile query —
//! this keeps index construction at tens of thousands of objects cheap.

use crate::math::bisect_monotone;

/// Number of grid cells used by default when tabulating a marginal density.
///
/// The trapezoid error is O((range/N)²) relative to the range; with N = 1024
/// and the paper's radius-250 regions this is sub-1e-5 of the domain — far
/// below the query-side tolerances.
pub const DEFAULT_GRID: usize = 1024;

/// A monotone piecewise-linear CDF on `[lo, hi]`, normalised to end at 1.
#[derive(Debug, Clone)]
pub struct NumericMarginal {
    lo: f64,
    hi: f64,
    /// `cdf[k]` = normalised mass in `[lo, lo + k·h]`, `cdf[n] = 1`.
    cdf: Vec<f64>,
    /// Total (unnormalised) mass; callers may want it (e.g. λ in Eq. 16).
    total_mass: f64,
}

impl NumericMarginal {
    /// Tabulates `density` on `[lo, hi]` with `n` cells using the composite
    /// trapezoid rule, then normalises.
    pub fn from_density<F: Fn(f64) -> f64>(density: F, lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo, "marginal support must be non-degenerate");
        assert!(n >= 2);
        let h = (hi - lo) / n as f64;
        let mut cdf = Vec::with_capacity(n + 1);
        cdf.push(0.0);
        let mut prev = density(lo).max(0.0);
        let mut acc = 0.0;
        for k in 1..=n {
            let x = lo + k as f64 * h;
            let cur = density(x).max(0.0);
            acc += 0.5 * (prev + cur) * h;
            cdf.push(acc);
            prev = cur;
        }
        let total_mass = acc;
        assert!(
            total_mass > 0.0 && total_mass.is_finite(),
            "marginal density must have positive finite mass, got {total_mass}"
        );
        for v in cdf.iter_mut() {
            *v /= total_mass;
        }
        // Guard against round-off: the table must be exactly monotone with
        // cdf[n] == 1 so that quantile() is total.
        for k in 1..=n {
            if cdf[k] < cdf[k - 1] {
                cdf[k] = cdf[k - 1];
            }
        }
        cdf[n] = 1.0;
        Self {
            lo,
            hi,
            cdf,
            total_mass,
        }
    }

    /// Support lower end.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Support upper end.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Unnormalised total mass of the tabulated density.
    pub fn total_mass(&self) -> f64 {
        self.total_mass
    }

    /// `P(X <= t)`, clamped outside the support.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= self.lo {
            return 0.0;
        }
        if t >= self.hi {
            return 1.0;
        }
        let n = self.cdf.len() - 1;
        let h = (self.hi - self.lo) / n as f64;
        let pos = (t - self.lo) / h;
        let k = (pos.floor() as usize).min(n - 1);
        let frac = pos - k as f64;
        self.cdf[k] + (self.cdf[k + 1] - self.cdf[k]) * frac
    }

    /// Smallest `t` with `P(X <= t) >= p` (linear interpolation inside the
    /// straddling cell). `p` outside `[0,1]` clamps to the support ends.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.lo;
        }
        if p >= 1.0 {
            return self.hi;
        }
        // Binary search for the straddling cell.
        let mut a = 0;
        let mut b = self.cdf.len() - 1;
        while b - a > 1 {
            let mid = (a + b) / 2;
            if self.cdf[mid] < p {
                a = mid;
            } else {
                b = mid;
            }
        }
        let n = self.cdf.len() - 1;
        let h = (self.hi - self.lo) / n as f64;
        let ca = self.cdf[a];
        let cb = self.cdf[b];
        let x_a = self.lo + a as f64 * h;
        if cb <= ca {
            // Flat cell: every point has the same CDF; bisect for stability.
            return bisect_monotone(
                &|t| self.cdf(t),
                x_a,
                x_a + h,
                p,
                1e-12 * (self.hi - self.lo),
            );
        }
        x_a + h * (p - ca) / (cb - ca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::std_normal_cdf;

    #[test]
    fn uniform_density_gives_linear_cdf() {
        let m = NumericMarginal::from_density(|_| 1.0, 0.0, 10.0, 100);
        assert!((m.cdf(2.5) - 0.25).abs() < 1e-12);
        assert!((m.cdf(10.0) - 1.0).abs() < 1e-12);
        assert!((m.quantile(0.5) - 5.0).abs() < 1e-9);
        assert!((m.total_mass() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_clamps_outside_support() {
        let m = NumericMarginal::from_density(|_| 1.0, -1.0, 1.0, 16);
        assert_eq!(m.cdf(-2.0), 0.0);
        assert_eq!(m.cdf(2.0), 1.0);
        assert_eq!(m.quantile(0.0), -1.0);
        assert_eq!(m.quantile(1.0), 1.0);
    }

    #[test]
    fn gaussian_tabulation_matches_phi() {
        let sigma = 1.0;
        let m = NumericMarginal::from_density(
            |x| (-x * x / (2.0 * sigma * sigma)).exp(),
            -8.0,
            8.0,
            4096,
        );
        for t in [-1.5, -0.5, 0.0, 0.7, 2.0] {
            let expect = std_normal_cdf(t); // truncation at ±8σ is negligible
            assert!(
                (m.cdf(t) - expect).abs() < 1e-5,
                "cdf({t}): {} vs {}",
                m.cdf(t),
                expect
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let m = NumericMarginal::from_density(|x| x.max(0.0), 0.0, 2.0, 2048);
        for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let t = m.quantile(p);
            assert!((m.cdf(t) - p).abs() < 1e-6, "round trip at p={p}");
            // density x on [0,2]: CDF = x²/4, quantile = 2√p
            assert!((t - 2.0 * p.sqrt()).abs() < 2e-3, "analytic check at p={p}");
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let m = NumericMarginal::from_density(|x| (x * 3.0).sin().abs() + 0.01, 0.0, 5.0, 512);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let t = m.quantile(i as f64 / 100.0);
            assert!(t >= prev);
            prev = t;
        }
    }
}
