//! Special functions and basic numerics.
//!
//! Everything here is self-contained (no external math crates are available
//! offline). Accuracy targets: ~1e-12 for `ln_gamma`/`erf`, which is far
//! below the 1e-6 tolerances the PCR computation needs.

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Valid for `x > 0`; relative error below ~2e-10 over that range.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes style).
pub fn gammp(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gammp domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function, via `erf(x) = P(1/2, x²)` for `x >= 0` and oddness.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gammp(0.5, x * x)
    } else {
        -gammp(0.5, x * x)
    }
}

/// Standard normal CDF Φ.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Fast error function (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
///
/// Used in hot tabulation loops (Con-Gau marginals are sampled ~10³ times
/// per object insertion) where the incomplete-gamma `erf` would dominate;
/// 1.5e-7 is far below the grid error of the tabulation itself.
pub fn erf_fast(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Fast chi-squared CDF for the low degrees of freedom the marginal slice
/// masses need (closed forms + [`erf_fast`]); falls back to the exact
/// [`chi2_cdf`] for other `dof`.
pub fn chi2_cdf_fast(dof: usize, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    match dof {
        1 => erf_fast((x / 2.0).sqrt()),
        2 => 1.0 - (-x / 2.0).exp(),
        3 => {
            let u = x.sqrt();
            erf_fast(u / std::f64::consts::SQRT_2)
                - (2.0 / std::f64::consts::PI).sqrt() * u * (-x / 2.0).exp()
        }
        _ => chi2_cdf(dof, x),
    }
}

/// CDF of the chi-squared distribution with `dof` degrees of freedom.
///
/// Used for the mass an isotropic d-dim Gaussian places inside a ball:
/// `P(||X|| <= w) = chi2_cdf(d, (w/σ)²)` for `X ~ N(0, σ²·I_d)`.
pub fn chi2_cdf(dof: usize, x: f64) -> f64 {
    debug_assert!(dof >= 1);
    if x <= 0.0 {
        return 0.0;
    }
    gammp(dof as f64 / 2.0, x / 2.0)
}

/// Memoizing front-end to [`chi2_cdf`], bit-identical to the plain call.
///
/// The Con-Gau normalisation λ = `chi2_cdf(D, (r/σ)²)` is a function of
/// two values that are constant per object, yet the scalar density path
/// historically re-evaluated the incomplete-gamma series on every one of
/// the n₁ Monte-Carlo samples. A dataset has very few distinct `(r/σ)`
/// ratios (the paper fixes σ = r/2), so a tiny move-to-front cache turns
/// almost every lookup into a slice scan. Thread-local, so no locking on
/// the query path.
pub fn chi2_cdf_cached(dof: usize, x: f64) -> f64 {
    use std::cell::RefCell;
    const CAP: usize = 32;
    thread_local! {
        static CACHE: RefCell<Vec<((usize, u64), f64)>> = const { RefCell::new(Vec::new()) };
    }
    let key = (dof, x.to_bits());
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            let hit = cache.remove(pos);
            let v = hit.1;
            cache.insert(0, hit);
            return v;
        }
        let v = chi2_cdf(dof, x);
        cache.insert(0, (key, v));
        cache.truncate(CAP);
        v
    })
}

/// Volume of the unit ball in `d` dimensions (`v₀=1, v₁=2, v_d = v_{d-2}·2π/d`).
///
/// Low dimensions (the only ones an index instantiates) come from a
/// once-computed table filled by the same recursion, so the hot density
/// path pays a load instead of a call chain; the values are identical
/// bit-for-bit to the direct recursion.
pub fn unit_ball_volume(d: usize) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; 9]> = OnceLock::new();
    if d <= 8 {
        return TABLE.get_or_init(|| {
            let mut t = [0.0; 9];
            for (i, v) in t.iter_mut().enumerate() {
                *v = unit_ball_volume_uncached(i);
            }
            t
        })[d];
    }
    unit_ball_volume_uncached(d)
}

fn unit_ball_volume_uncached(d: usize) -> f64 {
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume_uncached(d - 2) * 2.0 * std::f64::consts::PI / d as f64,
    }
}

/// Adaptive Simpson quadrature of `f` on `[a, b]` to absolute tolerance `tol`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fc + fb);
    simpson_rec(f, a, b, fa, fb, fc, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fc: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = (c - a) / 6.0 * (fa + 4.0 * fd + fc);
    let right = (b - c) / 6.0 * (fc + 4.0 * fe + fb);
    if depth == 0 || (left + right - whole).abs() <= 15.0 * tol {
        left + right + (left + right - whole) / 15.0
    } else {
        simpson_rec(f, a, c, fa, fc, fd, left, tol * 0.5, depth - 1)
            + simpson_rec(f, c, b, fc, fb, fe, right, tol * 0.5, depth - 1)
    }
}

/// Finds `t` in `[lo, hi]` with `f(t) ≈ target` for a monotone
/// non-decreasing `f`, to absolute x-tolerance `xtol`.
///
/// Clamps to the interval ends when the target lies outside `f`'s range,
/// which is the right behaviour for CDF inversion (probabilities 0 and 1 map
/// to the support boundary).
pub fn bisect_monotone<F: Fn(f64) -> f64>(f: &F, lo: f64, hi: f64, target: f64, xtol: f64) -> f64 {
    debug_assert!(lo <= hi);
    let mut a = lo;
    let mut b = hi;
    if f(a) >= target {
        return a;
    }
    if f(b) <= target {
        return b;
    }
    while b - a > xtol {
        let mid = 0.5 * (a + b);
        if f(mid) < target {
            a = mid;
        } else {
            b = mid;
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(1/2)=√π
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((std_normal_cdf(1.96) - 0.975_002_104_851_78).abs() < 1e-8);
        for z in [-2.5, -1.0, 0.3, 1.7] {
            let s = std_normal_cdf(z) + std_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-12, "symmetry broken at {z}");
        }
    }

    #[test]
    fn chi2_cdf_closed_forms() {
        // dof=2: P = 1 - exp(-x/2)
        for x in [0.1, 1.0, 4.0, 9.0] {
            let expect = 1.0 - (-x / 2.0f64).exp();
            assert!((chi2_cdf(2, x) - expect).abs() < 1e-12, "dof=2 at {x}");
        }
        // dof=1: P = erf(sqrt(x/2))
        for x in [0.5, 2.0, 6.0] {
            let expect = erf((x / 2.0f64).sqrt());
            assert!((chi2_cdf(1, x) - expect).abs() < 1e-12, "dof=1 at {x}");
        }
        // dof=3: P = erf(u/√2) - sqrt(2/π)·u·exp(-u²/2), u = sqrt(x)
        for x in [0.5f64, 2.0, 6.0] {
            let u = x.sqrt();
            let expect = erf(u / std::f64::consts::SQRT_2)
                - (2.0 / std::f64::consts::PI).sqrt() * u * (-u * u / 2.0).exp();
            assert!((chi2_cdf(3, x) - expect).abs() < 1e-10, "dof=3 at {x}");
        }
    }

    #[test]
    fn erf_fast_tracks_erf() {
        for x in [-3.0, -1.2, -0.4, 0.0, 0.3, 0.9, 1.8, 3.5] {
            assert!(
                (erf_fast(x) - erf(x)).abs() < 2e-7,
                "erf_fast({x}) = {} vs {}",
                erf_fast(x),
                erf(x)
            );
        }
    }

    #[test]
    fn chi2_fast_tracks_exact() {
        for dof in [1usize, 2, 3, 5] {
            for x in [0.2, 1.0, 3.0, 8.0] {
                assert!(
                    (chi2_cdf_fast(dof, x) - chi2_cdf(dof, x)).abs() < 5e-7,
                    "dof={dof} x={x}"
                );
            }
        }
    }

    #[test]
    fn unit_ball_volumes() {
        let pi = std::f64::consts::PI;
        assert!((unit_ball_volume(2) - pi).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 * pi / 3.0).abs() < 1e-12);
        assert!((unit_ball_volume(4) - pi * pi / 2.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        let f = |x: f64| 3.0 * x * x; // ∫₀¹ = 1
        assert!((adaptive_simpson(&f, 0.0, 1.0, 1e-12) - 1.0).abs() < 1e-10);
        let g = |x: f64| x.sin();
        assert!((adaptive_simpson(&g, 0.0, std::f64::consts::PI, 1e-12) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simpson_handles_gaussian_mass() {
        let sigma = 2.0;
        let g = |x: f64| {
            (-x * x / (2.0 * sigma * sigma)).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
        };
        let mass = adaptive_simpson(&g, -8.0 * sigma, 8.0 * sigma, 1e-12);
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_finds_quantile() {
        let f = |x: f64| x * x; // monotone on [0, 2]
        let t = bisect_monotone(&f, 0.0, 2.0, 2.0, 1e-12);
        assert!((t - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_clamps_out_of_range_targets() {
        let f = |x: f64| x;
        assert_eq!(bisect_monotone(&f, 0.0, 1.0, -5.0, 1e-12), 0.0);
        assert_eq!(bisect_monotone(&f, 0.0, 1.0, 5.0, 1e-12), 1.0);
    }
}
