//! Grid-histogram pdfs: the "arbitrary pdf" workhorse.
//!
//! The paper's central claim is that the U-tree "does not place any
//! constraints on the data pdfs". A d-dimensional histogram over the MBR of
//! the uncertainty region can approximate any density (Zipf, Poisson rates,
//! multi-modal mixtures, …), and everything the index needs from it —
//! density evaluation, uniform support sampling, per-dimension marginal
//! CDFs — has simple exact forms.

use rand::Rng;
use uncertain_geom::{Point, Rect};

/// A piecewise-constant pdf on a regular grid over a rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPdf<const D: usize> {
    /// Support of the pdf.
    rect: Rect<D>,
    /// Number of cells per dimension (each >= 1).
    bins: [usize; D],
    /// Probability mass per cell in row-major order (dimension 0 slowest);
    /// sums to 1.
    mass: Vec<f64>,
}

impl<const D: usize> HistogramPdf<D> {
    /// Builds a histogram from non-negative cell weights (renormalised).
    ///
    /// `weights.len()` must equal the product of `bins`.
    pub fn new(rect: Rect<D>, bins: [usize; D], weights: Vec<f64>) -> Self {
        let cells: usize = bins.iter().product();
        assert!(cells > 0, "every dimension needs at least one bin");
        assert_eq!(weights.len(), cells, "weight count must match grid size");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        for i in 0..D {
            assert!(rect.extent(i) > 0.0, "support must have positive extent");
        }
        let mass = weights.into_iter().map(|w| w / total).collect();
        Self { rect, bins, mass }
    }

    /// Rebuilds a histogram from cell masses that are *already*
    /// normalised (a prior histogram's [`Self::mass`], e.g. read back from
    /// disk). Skips the renormalising division so a store→load round trip
    /// is bit-exact.
    pub fn from_mass(rect: Rect<D>, bins: [usize; D], mass: Vec<f64>) -> Self {
        let cells: usize = bins.iter().product();
        assert!(cells > 0, "every dimension needs at least one bin");
        assert_eq!(mass.len(), cells, "mass count must match grid size");
        assert!(
            mass.iter().all(|m| m.is_finite() && *m >= 0.0),
            "masses must be finite and non-negative"
        );
        assert!(
            mass.iter().sum::<f64>() > 0.0,
            "at least one mass must be positive"
        );
        debug_assert!(
            (mass.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "from_mass expects normalised masses"
        );
        for i in 0..D {
            assert!(rect.extent(i) > 0.0, "support must have positive extent");
        }
        Self { rect, bins, mass }
    }

    /// Builds a histogram by sampling `density` at cell centers.
    ///
    /// This is how an application plugs in a truly arbitrary pdf: hand any
    /// non-negative function over the support.
    pub fn from_fn<F: Fn(&Point<D>) -> f64>(rect: Rect<D>, bins: [usize; D], density: F) -> Self {
        let cells: usize = bins.iter().product();
        let mut weights = Vec::with_capacity(cells);
        for flat in 0..cells {
            let idx = Self::unflatten(flat, &bins);
            let mut coords = [0.0; D];
            for i in 0..D {
                let w = rect.extent(i) / bins[i] as f64;
                coords[i] = rect.min[i] + (idx[i] as f64 + 0.5) * w;
            }
            weights.push(density(&Point::new(coords)).max(0.0));
        }
        Self::new(rect, bins, weights)
    }

    /// Support rectangle.
    pub fn rect(&self) -> &Rect<D> {
        &self.rect
    }

    /// Grid resolution per dimension.
    pub fn bins(&self) -> &[usize; D] {
        &self.bins
    }

    /// Normalised cell masses (row-major).
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    fn unflatten(mut flat: usize, bins: &[usize; D]) -> [usize; D] {
        let mut idx = [0usize; D];
        for i in (0..D).rev() {
            idx[i] = flat % bins[i];
            flat /= bins[i];
        }
        idx
    }

    fn cell_volume(&self) -> f64 {
        let mut v = 1.0;
        for i in 0..D {
            v *= self.rect.extent(i) / self.bins[i] as f64;
        }
        v
    }

    /// Index of the cell containing `p`, or `None` outside the support.
    fn cell_of(&self, p: &Point<D>) -> Option<usize> {
        let mut flat = 0usize;
        for i in 0..D {
            if p.coords[i] < self.rect.min[i] || p.coords[i] > self.rect.max[i] {
                return None;
            }
            let w = self.rect.extent(i) / self.bins[i] as f64;
            let mut k = ((p.coords[i] - self.rect.min[i]) / w) as usize;
            if k >= self.bins[i] {
                k = self.bins[i] - 1; // right boundary belongs to the last cell
            }
            flat = flat * self.bins[i] + k;
        }
        Some(flat)
    }

    /// Density at `p` (0 outside the support).
    pub fn density(&self, p: &Point<D>) -> f64 {
        match self.cell_of(p) {
            Some(c) => self.mass[c] / self.cell_volume(),
            None => 0.0,
        }
    }

    /// `P(X_dim <= t)`: exact piecewise-linear marginal CDF.
    pub fn marginal_cdf(&self, dim: usize, t: f64) -> f64 {
        assert!(dim < D);
        if t <= self.rect.min[dim] {
            return 0.0;
        }
        if t >= self.rect.max[dim] {
            return 1.0;
        }
        // Collapse the grid onto `dim`.
        let mut slab = vec![0.0; self.bins[dim]];
        for (flat, &m) in self.mass.iter().enumerate() {
            let idx = Self::unflatten(flat, &self.bins);
            slab[idx[dim]] += m;
        }
        let w = self.rect.extent(dim) / self.bins[dim] as f64;
        let pos = (t - self.rect.min[dim]) / w;
        let k = (pos.floor() as usize).min(self.bins[dim] - 1);
        let frac = pos - k as f64;
        let mut acc: f64 = slab[..k].iter().sum();
        acc += slab[k] * frac;
        acc.clamp(0.0, 1.0)
    }

    /// Draws a point *from the pdf itself* (used by tests; the Monte-Carlo
    /// estimator of Eq. 3 samples the support uniformly instead).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point<D> {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = self.mass.len() - 1;
        for (i, &m) in self.mass.iter().enumerate() {
            acc += m;
            if u <= acc {
                chosen = i;
                break;
            }
        }
        let idx = Self::unflatten(chosen, &self.bins);
        let mut coords = [0.0; D];
        for i in 0..D {
            let w = self.rect.extent(i) / self.bins[i] as f64;
            let lo = self.rect.min[i] + idx[i] as f64 * w;
            coords[i] = rng.gen_range(lo..=lo + w);
        }
        Point::new(coords)
    }

    /// Exact probability that the object lies inside `rq` (sum of clipped
    /// cell masses). Used as ground truth in tests and as a fast refinement
    /// path for histogram objects.
    pub fn probability_in(&self, rq: &Rect<D>) -> f64 {
        let mut total = 0.0;
        for (flat, &m) in self.mass.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            let idx = Self::unflatten(flat, &self.bins);
            let mut frac = 1.0;
            for (i, &cell) in idx.iter().enumerate() {
                let w = self.rect.extent(i) / self.bins[i] as f64;
                let lo = self.rect.min[i] + cell as f64 * w;
                let hi = lo + w;
                let clip_lo = lo.max(rq.min[i]);
                let clip_hi = hi.min(rq.max[i]);
                if clip_lo >= clip_hi {
                    frac = 0.0;
                    break;
                }
                frac *= (clip_hi - clip_lo) / w;
            }
            total += m * frac;
        }
        total.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_grid() -> HistogramPdf<2> {
        HistogramPdf::new(Rect::new([0.0, 0.0], [4.0, 4.0]), [4, 4], vec![1.0; 16])
    }

    #[test]
    fn mass_normalises() {
        let h = HistogramPdf::new(Rect::new([0.0], [1.0]), [4], vec![1.0, 2.0, 3.0, 4.0]);
        let s: f64 = h.mass().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((h.mass()[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn density_of_uniform_grid() {
        let h = uniform_grid();
        // total mass 1 over area 16
        assert!((h.density(&Point::new([1.0, 1.0])) - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(h.density(&Point::new([5.0, 1.0])), 0.0);
    }

    #[test]
    fn marginal_cdf_uniform_is_linear() {
        let h = uniform_grid();
        assert!((h.marginal_cdf(0, 1.0) - 0.25).abs() < 1e-12);
        assert!((h.marginal_cdf(1, 3.0) - 0.75).abs() < 1e-12);
        assert_eq!(h.marginal_cdf(0, -1.0), 0.0);
        assert_eq!(h.marginal_cdf(0, 9.0), 1.0);
    }

    #[test]
    fn marginal_cdf_skewed() {
        // All mass in the left column.
        let mut w = vec![0.0; 16];
        for row in 0..4 {
            w[row * 4] = 1.0; // dimension 0 slowest ⇒ idx [row, 0]
        }
        let h = HistogramPdf::new(Rect::new([0.0, 0.0], [4.0, 4.0]), [4, 4], w);
        // dim 1 (columns): everything left of 1.0
        assert!((h.marginal_cdf(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((h.marginal_cdf(1, 0.5) - 0.5).abs() < 1e-12);
        // dim 0 (rows) stays uniform
        assert!((h.marginal_cdf(0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_in_matches_geometry_for_uniform() {
        let h = uniform_grid();
        let q = Rect::new([0.0, 0.0], [2.0, 2.0]);
        assert!((h.probability_in(&q) - 0.25).abs() < 1e-12);
        let q2 = Rect::new([0.5, 0.5], [1.5, 1.5]); // area 1 of 16
        assert!((h.probability_in(&q2) - 1.0 / 16.0).abs() < 1e-12);
        let outside = Rect::new([10.0, 10.0], [11.0, 11.0]);
        assert_eq!(h.probability_in(&outside), 0.0);
        let all = Rect::new([-1.0, -1.0], [5.0, 5.0]);
        assert!((h.probability_in(&all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_fn_picks_up_shape() {
        // Density ∝ x on [0,1]²: P(X₀ <= 0.5) should be 0.25.
        let h = HistogramPdf::from_fn(Rect::new([0.0, 0.0], [1.0, 1.0]), [64, 4], |p| p.coords[0]);
        assert!((h.marginal_cdf(0, 0.5) - 0.25).abs() < 0.01);
    }

    #[test]
    fn sample_respects_support() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let h = uniform_grid();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = h.sample(&mut rng);
            assert!(h.rect().contains_point(&p));
        }
    }

    #[test]
    #[should_panic(expected = "weight count")]
    fn wrong_weight_count_panics() {
        HistogramPdf::new(Rect::new([0.0], [1.0]), [4], vec![1.0; 3]);
    }
}
