//! Uncertainty-region shapes.

use crate::math::unit_ball_volume;
use rand::Rng;
use uncertain_geom::{Point, Rect};

/// The support of an object's pdf (the paper's `o.ur`).
///
/// The paper's experiments use balls (circles for LB/CA, spheres for
/// Aircraft); boxes arise naturally for sensor-reading scenarios and for the
/// histogram model. The PCR/CFB machinery works for "uncertainty regions of
/// any shapes" (Sec 4.1) — everything downstream only consumes the marginal
/// CDFs and the MBR, so adding further shapes is local to this module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Region<const D: usize> {
    /// A d-dimensional ball.
    Ball {
        /// Ball center.
        center: Point<D>,
        /// Ball radius.
        radius: f64,
    },
    /// An axis-aligned box.
    Box {
        /// The box itself.
        rect: Rect<D>,
    },
}

impl<const D: usize> Region<D> {
    /// Minimum bounding rectangle of the region.
    pub fn mbr(&self) -> Rect<D> {
        match self {
            Region::Ball { center, radius } => Rect::cube(center, 2.0 * radius),
            Region::Box { rect } => *rect,
        }
    }

    /// d-dimensional volume (AREA in the paper's Eq. 1).
    pub fn volume(&self) -> f64 {
        match self {
            Region::Ball { radius, .. } => unit_ball_volume(D) * radius.powi(D as i32),
            Region::Box { rect } => rect.area(),
        }
    }

    /// True when `p` belongs to the region (boundary included).
    pub fn contains(&self, p: &Point<D>) -> bool {
        match self {
            Region::Ball { center, radius } => center.distance_sq(p) <= radius * radius,
            Region::Box { rect } => rect.contains_point(p),
        }
    }

    /// Draws a point uniformly from the region.
    ///
    /// Balls use rejection sampling from the bounding cube — the acceptance
    /// rate is `v_D/2^D` (≈0.79 in 2D, ≈0.52 in 3D), plenty for the
    /// dimensionalities the paper evaluates.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point<D> {
        match self {
            Region::Ball { center, radius } => loop {
                let mut coords = [0.0; D];
                let mut norm_sq = 0.0;
                for c in coords.iter_mut() {
                    let u: f64 = rng.gen_range(-1.0..=1.0);
                    *c = u;
                    norm_sq += u * u;
                }
                if norm_sq <= 1.0 {
                    for (i, c) in coords.iter_mut().enumerate() {
                        *c = center.coords[i] + *c * radius;
                    }
                    return Point::new(coords);
                }
            },
            Region::Box { rect } => {
                let mut coords = [0.0; D];
                for (i, c) in coords.iter_mut().enumerate() {
                    *c = if rect.min[i] == rect.max[i] {
                        rect.min[i]
                    } else {
                        rng.gen_range(rect.min[i]..=rect.max[i])
                    };
                }
                Point::new(coords)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ball_mbr_is_the_enclosing_cube() {
        let r = Region::Ball {
            center: Point::new([10.0, 20.0]),
            radius: 5.0,
        };
        assert_eq!(r.mbr(), Rect::new([5.0, 15.0], [15.0, 25.0]));
    }

    #[test]
    fn volumes_match_closed_forms() {
        let disk = Region::<2>::Ball {
            center: Point::origin(),
            radius: 2.0,
        };
        assert!((disk.volume() - std::f64::consts::PI * 4.0).abs() < 1e-9);
        let sphere = Region::<3>::Ball {
            center: Point::origin(),
            radius: 1.5,
        };
        assert!((sphere.volume() - 4.0 / 3.0 * std::f64::consts::PI * 1.5f64.powi(3)).abs() < 1e-9);
        let b = Region::Box {
            rect: Rect::new([0.0, 0.0], [2.0, 5.0]),
        };
        assert_eq!(b.volume(), 10.0);
    }

    #[test]
    fn containment_respects_boundary() {
        let ball = Region::Ball {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        };
        assert!(ball.contains(&Point::new([1.0, 0.0])));
        assert!(!ball.contains(&Point::new([1.0001, 0.0])));
        assert!(ball.contains(&Point::new([0.6, 0.6]))); // dist ≈ 0.849
        assert!(!ball.contains(&Point::new([0.8, 0.8]))); // dist ≈ 1.131
    }

    #[test]
    fn uniform_ball_samples_stay_inside_and_cover_quadrants() {
        let ball = Region::Ball {
            center: Point::new([100.0, 200.0]),
            radius: 10.0,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut quadrants = [0usize; 4];
        for _ in 0..4000 {
            let p = ball.sample_uniform(&mut rng);
            assert!(ball.contains(&p));
            let qi = (p.coords[0] > 100.0) as usize * 2 + (p.coords[1] > 200.0) as usize;
            quadrants[qi] += 1;
        }
        // Uniformity sanity: each quadrant holds roughly a quarter.
        for &q in &quadrants {
            assert!((700..=1300).contains(&q), "skewed quadrants: {quadrants:?}");
        }
    }

    #[test]
    fn uniform_box_samples_stay_inside() {
        let b = Region::Box {
            rect: Rect::new([0.0, 0.0, 0.0], [1.0, 2.0, 3.0]),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let p = b.sample_uniform(&mut rng);
            assert!(b.contains(&p));
        }
    }

    #[test]
    fn degenerate_box_sampling() {
        let b = Region::Box {
            rect: Rect::new([1.0, 2.0], [1.0, 5.0]),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let p = b.sample_uniform(&mut rng);
        assert_eq!(p.coords[0], 1.0);
    }
}
