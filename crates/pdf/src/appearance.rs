//! Appearance-probability evaluation.
//!
//! `P_app(o, q) = ∫_{o.ur ∩ r_q} o.pdf(x) dx` (paper Eq. 2). The paper
//! evaluates this with Monte-Carlo sampling (Eq. 3) because no closed form
//! exists for, e.g., a Gaussian clipped by an arbitrary rectangle. We
//! implement exactly that estimator — it is the "expensive refinement" whose
//! avoidance motivates the entire U-tree — plus deterministic quadrature
//! references used for validation and ground truth in tests.

use crate::math::{adaptive_simpson, std_normal_cdf, unit_ball_volume};
use crate::model::ObjectPdf;
use rand::Rng;
use uncertain_geom::Rect;

/// The Monte-Carlo estimator of Eq. 3.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of points generated in the uncertainty region (the paper's
    /// n₁; Sec 6.1 settles on 10⁶).
    pub n1: usize,
}

/// A Monte-Carlo estimator was requested with `n1 == 0`: Eq. 3 divides by
/// the sampled weight mass, so zero samples has no defined answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroSampleCount;

impl std::fmt::Display for ZeroSampleCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Monte-Carlo sample count n1 must be at least 1")
    }
}

impl std::error::Error for ZeroSampleCount {}

impl Default for MonteCarlo {
    fn default() -> Self {
        Self { n1: 1_000_000 }
    }
}

impl MonteCarlo {
    /// Creates an estimator with the given sample count.
    ///
    /// # Panics
    /// Panics on `n1 == 0`; use [`MonteCarlo::try_new`] for the typed-error
    /// path.
    pub fn new(n1: usize) -> Self {
        // xlint: allow(panic-freedom) -- invariant: Monte-Carlo sample count n1 must be at least 1
        Self::try_new(n1).expect("Monte-Carlo sample count n1 must be at least 1")
    }

    /// Creates an estimator with the given sample count, rejecting
    /// `n1 == 0` as a typed error instead of panicking.
    pub fn try_new(n1: usize) -> Result<Self, ZeroSampleCount> {
        if n1 == 0 {
            return Err(ZeroSampleCount);
        }
        Ok(Self { n1 })
    }

    /// Estimates `P_app(o, q)` per Eq. 3:
    /// generate n₁ points uniformly in `o.ur`, weight each by `o.pdf`, and
    /// return the weight fraction of the points falling inside `rq`.
    ///
    /// Two short-circuits mirror the paper: when `o.ur ∩ r_q = ∅` the
    /// probability is 0 without sampling, and when `o.ur ⊆ r_q` Eq. 3
    /// degenerates to exactly 1 (n₂ = n₁).
    pub fn estimate<const D: usize, R: Rng + ?Sized>(
        &self,
        pdf: &ObjectPdf<D>,
        rq: &Rect<D>,
        rng: &mut R,
    ) -> f64 {
        let mbr = pdf.mbr();
        if !mbr.intersects(rq) {
            return 0.0;
        }
        if rq.contains_rect(&mbr) {
            return 1.0;
        }
        let mut total = 0.0;
        let mut inside = 0.0;
        for _ in 0..self.n1 {
            let x = pdf.sample_support_uniform(rng);
            let w = pdf.density(&x);
            total += w;
            if rq.contains_point(&x) {
                inside += w;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            inside / total
        }
    }
}

/// Convenience wrapper over [`MonteCarlo::estimate`].
pub fn appearance_probability<const D: usize, R: Rng + ?Sized>(
    pdf: &ObjectPdf<D>,
    rq: &Rect<D>,
    n1: usize,
    rng: &mut R,
) -> f64 {
    MonteCarlo::new(n1).estimate(pdf, rq, rng)
}

/// Deterministic high-accuracy reference for `P_app`.
///
/// * uniform box — exact overlap ratio;
/// * uniform ball — recursive slice quadrature of the ball/rect
///   intersection volume;
/// * Con-Gau — recursive slice quadrature of the Gaussian mass in
///   ball ∩ rect, over λ;
/// * histogram — exact clipped cell sums.
///
/// Absolute error is bounded by `tol` (quadrature tolerance), except for the
/// exact paths which are tighter.
pub fn appearance_reference<const D: usize>(pdf: &ObjectPdf<D>, rq: &Rect<D>, tol: f64) -> f64 {
    match pdf {
        ObjectPdf::UniformBox { rect } => rect.overlap(rq) / rect.area(),
        ObjectPdf::UniformBall { center, radius } => {
            let vol = ball_rect_volume(&center.coords, *radius, &rq.min, &rq.max, tol);
            (vol / (unit_ball_volume(D) * radius.powi(D as i32))).clamp(0.0, 1.0)
        }
        ObjectPdf::ConGauBall {
            center,
            radius,
            sigma,
        } => {
            let mass = gauss_ball_rect_mass(&center.coords, *sigma, *radius, &rq.min, &rq.max, tol);
            (mass / pdf.lambda()).clamp(0.0, 1.0)
        }
        ObjectPdf::Histogram(h) => h.probability_in(rq),
    }
}

/// Volume of `ball(center, r) ∩ rect`, computed by slicing dimension 0 and
/// recursing: the cross-section of a d-ball at offset `dx` is a
/// (d-1)-ball of radius `sqrt(r² - dx²)`.
fn ball_rect_volume(center: &[f64], r: f64, lo: &[f64], hi: &[f64], tol: f64) -> f64 {
    debug_assert!(!center.is_empty());
    if r <= 0.0 {
        return 0.0;
    }
    let a = lo[0].max(center[0] - r);
    let b = hi[0].min(center[0] + r);
    if a >= b {
        return 0.0;
    }
    if center.len() == 1 {
        return b - a;
    }
    let f = |x: f64| {
        let dx = x - center[0];
        let w2 = r * r - dx * dx;
        if w2 <= 0.0 {
            0.0
        } else {
            ball_rect_volume(&center[1..], w2.sqrt(), &lo[1..], &hi[1..], tol * 0.1)
        }
    };
    adaptive_simpson(&f, a, b, tol)
}

/// Mass of an isotropic Gaussian `N(center, σ²I)` restricted to
/// `ball(center, r) ∩ rect` (not yet divided by λ), by the same slicing.
fn gauss_ball_rect_mass(
    center: &[f64],
    sigma: f64,
    r: f64,
    lo: &[f64],
    hi: &[f64],
    tol: f64,
) -> f64 {
    debug_assert!(!center.is_empty());
    if r <= 0.0 {
        return 0.0;
    }
    let a = lo[0].max(center[0] - r);
    let b = hi[0].min(center[0] + r);
    if a >= b {
        return 0.0;
    }
    if center.len() == 1 {
        return std_normal_cdf((b - center[0]) / sigma) - std_normal_cdf((a - center[0]) / sigma);
    }
    let f = |x: f64| {
        let dx = x - center[0];
        let w2 = r * r - dx * dx;
        if w2 <= 0.0 {
            return 0.0;
        }
        let g = (-dx * dx / (2.0 * sigma * sigma)).exp()
            / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        g * gauss_ball_rect_mass(
            &center[1..],
            sigma,
            w2.sqrt(),
            &lo[1..],
            &hi[1..],
            tol * 0.1,
        )
    };
    adaptive_simpson(&f, a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uncertain_geom::Point;

    fn disk() -> ObjectPdf<2> {
        ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        }
    }

    #[test]
    fn reference_full_containment_is_one() {
        let rq = Rect::new([-2.0, -2.0], [2.0, 2.0]);
        assert!((appearance_reference(&disk(), &rq, 1e-8) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reference_half_plane_is_half() {
        let rq = Rect::new([-2.0, -2.0], [0.0, 2.0]);
        assert!((appearance_reference(&disk(), &rq, 1e-9) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn reference_quadrant_is_quarter() {
        let rq = Rect::new([0.0, 0.0], [2.0, 2.0]);
        assert!((appearance_reference(&disk(), &rq, 1e-9) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn reference_disjoint_is_zero() {
        let rq = Rect::new([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(appearance_reference(&disk(), &rq, 1e-9), 0.0);
    }

    #[test]
    fn reference_sphere_half_space() {
        let ball: ObjectPdf<3> = ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0, 0.0]),
            radius: 1.0,
        };
        let rq = Rect::new([-2.0, -2.0, -2.0], [2.0, 2.0, 0.0]);
        assert!((appearance_reference(&ball, &rq, 1e-8) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn reference_congau_half_plane() {
        let g: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: Point::new([0.0, 0.0]),
            radius: 250.0,
            sigma: 125.0,
        };
        let rq = Rect::new([-300.0, -300.0], [0.0, 300.0]);
        assert!((appearance_reference(&g, &rq, 1e-9) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn monte_carlo_converges_to_reference() {
        let pdf = disk();
        let rq = Rect::new([-0.3, -0.9], [0.8, 0.4]);
        let exact = appearance_reference(&pdf, &rq, 1e-9);
        let mut rng = SmallRng::seed_from_u64(42);
        let est = MonteCarlo::new(200_000).estimate(&pdf, &rq, &mut rng);
        assert!((est - exact).abs() < 0.01, "MC {est} vs reference {exact}");
    }

    #[test]
    fn monte_carlo_congau_converges() {
        let pdf: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: Point::new([0.0, 0.0]),
            radius: 250.0,
            sigma: 125.0,
        };
        let rq = Rect::new([-100.0, -50.0], [150.0, 220.0]);
        let exact = appearance_reference(&pdf, &rq, 1e-9);
        let mut rng = SmallRng::seed_from_u64(7);
        let est = MonteCarlo::new(300_000).estimate(&pdf, &rq, &mut rng);
        assert!((est - exact).abs() < 0.01, "MC {est} vs reference {exact}");
    }

    #[test]
    fn monte_carlo_short_circuits() {
        let pdf = disk();
        let mut rng = SmallRng::seed_from_u64(1);
        let contained = Rect::new([-5.0, -5.0], [5.0, 5.0]);
        assert_eq!(
            MonteCarlo::new(10).estimate(&pdf, &contained, &mut rng),
            1.0
        );
        let disjoint = Rect::new([10.0, 10.0], [11.0, 11.0]);
        assert_eq!(MonteCarlo::new(10).estimate(&pdf, &disjoint, &mut rng), 0.0);
    }

    #[test]
    fn monte_carlo_error_shrinks_with_n1() {
        // The Fig 7 phenomenon in miniature: bigger n₁ ⇒ smaller error.
        let pdf = disk();
        let rq = Rect::new([-0.5, -0.5], [0.5, 0.5]);
        let exact = appearance_reference(&pdf, &rq, 1e-10);
        let avg_err = |n1: usize| {
            let mut acc = 0.0;
            for seed in 0..8 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let est = MonteCarlo::new(n1).estimate(&pdf, &rq, &mut rng);
                acc += ((est - exact) / exact).abs();
            }
            acc / 8.0
        };
        let coarse = avg_err(100);
        let fine = avg_err(40_000);
        assert!(
            fine < coarse * 0.5,
            "error did not shrink: coarse {coarse}, fine {fine}"
        );
    }

    #[test]
    fn try_new_rejects_zero_samples() {
        assert_eq!(MonteCarlo::try_new(0).map(|mc| mc.n1), Err(ZeroSampleCount));
        assert_eq!(MonteCarlo::try_new(1).map(|mc| mc.n1), Ok(1));
        assert!(!ZeroSampleCount.to_string().is_empty());
    }

    #[test]
    fn histogram_reference_is_exact() {
        let h = crate::HistogramPdf::new(
            Rect::new([0.0, 0.0], [2.0, 2.0]),
            [2, 2],
            vec![1.0, 1.0, 1.0, 1.0],
        );
        let pdf = ObjectPdf::Histogram(h);
        let rq = Rect::new([0.0, 0.0], [1.0, 2.0]);
        assert!((appearance_reference(&pdf, &rq, 1e-9) - 0.5).abs() < 1e-12);
    }
}
