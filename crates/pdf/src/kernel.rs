//! Chunked, auto-vectorizable refinement kernels.
//!
//! The Monte-Carlo estimator of Eq. 3 is the "expensive refinement" the
//! whole U-tree exists to avoid — and when it *does* run, it runs n₁
//! times per candidate. The scalar path ([`ObjectPdf::density`] inside
//! [`crate::MonteCarlo::estimate`]) re-enters the pdf enum `match` and
//! recomputes every normalisation constant (λ, `unit_ball_volume·r^D`,
//! `2σ²`, the histogram cell volume) on every one of those samples.
//!
//! This module hoists all of that out of the sample loop:
//!
//! * [`PreparedPdf`] — a per-object *prepared evaluator*: one enum
//!   dispatch, the support [`Region`], and every normalisation constant,
//!   computed once per candidate;
//! * [`RefineScratch`] — reusable structure-of-arrays buffers (dim-major
//!   coordinates, weights, containment masks) sized to [`CHUNK`] samples;
//!   after warm-up a refinement pass allocates nothing;
//! * [`crate::MonteCarlo::estimate_with`] — the chunked driver: samples
//!   are generated in **exactly the scalar order** (same RNG consumption),
//!   then density and query-rect containment are evaluated over whole
//!   chunks in plain loops the compiler can vectorize, with branch-free
//!   mask accumulation.
//!
//! # Equivalence contract
//!
//! The kernel path is **byte-identical** to the scalar oracle under the
//! same seed, by construction:
//!
//! * sampling delegates to the same [`Region::sample_uniform`] per point,
//!   so the RNG stream is consumed identically;
//! * every hoisted constant is the value of the *same expression* the
//!   scalar path evaluates per sample (hoisting a deterministic
//!   subexpression cannot change its bits), and the per-sample arithmetic
//!   keeps the scalar's operation order — e.g. the Con-Gau weight stays
//!   `((-d²/2σ²).exp() / norm) / λ`, never folded into a reciprocal
//!   multiply;
//! * squared distances accumulate in dimension order exactly like
//!   `Point::distance_sq`;
//! * the reduction `total += w; inside += select(mask, w, 0.0)` runs per
//!   sample in sample order. The selected-in branch adds exactly `w`, and
//!   the selected-out branch adds `+0.0` — an identity on the non-negative
//!   accumulator — so the sums carry the scalar loop's bits (a multiply by
//!   the mask would not: a degenerate zero-area support makes `w = ∞`);
//! * support checks are *recomputed* from the final coordinates (a
//!   rejection-sampled ball point can round outside `r²` after the
//!   `center + u·radius` scaling; the scalar density returns 0 there and
//!   so does the kernel).
//!
//! `tests/kernel_equivalence.rs` pins this contract across every pdf
//! variant, dimensionality and chunk-boundary sample count.

use crate::histogram::HistogramPdf;
use crate::math::unit_ball_volume;
use crate::model::ObjectPdf;
use crate::region::Region;
use crate::MonteCarlo;
use rand::Rng;
use uncertain_geom::{Point, Rect};

/// Samples evaluated per chunk. 64 × f64 = one 512-byte row per buffer —
/// deep enough to amortise the loop overhead, small enough that all four
/// SoA rows of a 3-D evaluation sit in L1.
pub const CHUNK: usize = 64;

/// Reusable structure-of-arrays scratch for the chunked estimator.
///
/// One instance per query context (or per thread) is the intended
/// pattern: buffers grow to the largest dimensionality seen and are
/// reused for every subsequent candidate — a refinement pass performs no
/// allocation after warm-up.
///
/// The struct also carries the running count of Monte-Carlo samples
/// drawn through it ([`RefineScratch::samples`]), which is how the query
/// layer attributes refinement cost per sample without threading another
/// counter through every call.
#[derive(Debug, Default)]
pub struct RefineScratch {
    /// Dim-major sample coordinates: `coords[d * CHUNK + i]` is
    /// dimension `d` of sample `i`.
    coords: Vec<f64>,
    /// Per-sample pdf weight.
    weights: Vec<f64>,
    /// Per-sample query-rect containment mask (1.0 inside, 0.0 outside).
    masks: Vec<f64>,
    /// Per-sample squared distance to the ball center (ball pdfs only).
    dist2: Vec<f64>,
    /// Monte-Carlo samples drawn through this scratch since the last
    /// [`RefineScratch::reset_samples`].
    samples: u64,
}

impl RefineScratch {
    /// Fresh scratch with empty buffers (they size themselves on first
    /// use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the buffers for `dims`-dimensional evaluation (no-op once
    /// warm).
    fn ensure(&mut self, dims: usize) {
        let need = dims * CHUNK;
        if self.coords.len() < need {
            self.coords.resize(need, 0.0);
        }
        if self.weights.len() < CHUNK {
            self.weights.resize(CHUNK, 0.0);
            self.masks.resize(CHUNK, 0.0);
            self.dist2.resize(CHUNK, 0.0);
        }
    }

    /// Monte-Carlo samples drawn through this scratch since the last
    /// [`RefineScratch::reset_samples`].
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Zeroes the sample counter (callers snapshot per refinement pass).
    pub fn reset_samples(&mut self) {
        self.samples = 0;
    }
}

/// A per-object prepared evaluator: enum dispatch, support region and all
/// normalisation constants hoisted out of the sample loop.
///
/// Cheap to build (one λ / volume / area evaluation), borrowed from the
/// object's pdf for the duration of one candidate's refinement.
#[derive(Debug)]
pub struct PreparedPdf<'p, const D: usize> {
    mbr: Rect<D>,
    region: Region<D>,
    kind: PreparedKind<'p, D>,
}

#[derive(Debug)]
enum PreparedKind<'p, const D: usize> {
    UniformBall {
        center: Point<D>,
        r2: f64,
        w_in: f64,
    },
    UniformBox {
        rect: Rect<D>,
        w_in: f64,
    },
    ConGauBall {
        center: Point<D>,
        r2: f64,
        two_s2: f64,
        norm: f64,
        lambda: f64,
    },
    Histogram {
        h: &'p HistogramPdf<D>,
        widths: [f64; D],
        cell_vol: f64,
    },
}

impl<'p, const D: usize> PreparedPdf<'p, D> {
    /// Prepares `pdf` for chunked evaluation. Every constant below is the
    /// value of the exact expression the scalar [`ObjectPdf::density`]
    /// evaluates per sample.
    pub fn new(pdf: &'p ObjectPdf<D>) -> Self {
        let region = pdf.region();
        let mbr = region.mbr();
        let kind = match pdf {
            ObjectPdf::UniformBall { center, radius } => PreparedKind::UniformBall {
                center: *center,
                r2: radius * radius,
                w_in: 1.0 / (unit_ball_volume(D) * radius.powi(D as i32)),
            },
            ObjectPdf::UniformBox { rect } => PreparedKind::UniformBox {
                rect: *rect,
                w_in: 1.0 / rect.area(),
            },
            ObjectPdf::ConGauBall {
                center,
                radius,
                sigma,
            } => PreparedKind::ConGauBall {
                center: *center,
                r2: radius * radius,
                two_s2: 2.0 * sigma * sigma,
                norm: (sigma * (2.0 * std::f64::consts::PI).sqrt()).powi(D as i32),
                lambda: pdf.lambda(),
            },
            ObjectPdf::Histogram(h) => {
                let mut widths = [0.0; D];
                let mut cell_vol = 1.0;
                for (i, w) in widths.iter_mut().enumerate() {
                    *w = h.rect().extent(i) / h.bins()[i] as f64;
                    cell_vol *= *w;
                }
                PreparedKind::Histogram {
                    h,
                    widths,
                    cell_vol,
                }
            }
        };
        Self { mbr, region, kind }
    }

    /// MBR of the support (for the estimator's short-circuits).
    pub fn mbr(&self) -> &Rect<D> {
        &self.mbr
    }

    /// Draws `n` support-uniform samples into the dim-major `coords`
    /// buffer, consuming the RNG exactly like `n` scalar
    /// [`ObjectPdf::sample_support_uniform`] calls.
    fn sample_chunk<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, coords: &mut [f64]) {
        for i in 0..n {
            let p = self.region.sample_uniform(rng);
            for (d, &c) in p.coords.iter().enumerate() {
                coords[d * CHUNK + i] = c;
            }
        }
    }

    /// Evaluates the pdf density of `n` samples into `weights`.
    fn density_chunk(&self, n: usize, coords: &[f64], dist2: &mut [f64], weights: &mut [f64]) {
        match &self.kind {
            PreparedKind::UniformBall { center, r2, w_in } => {
                dist2_chunk(center, n, coords, dist2);
                let (r2, w_in) = (*r2, *w_in);
                for i in 0..n {
                    weights[i] = if dist2[i] <= r2 { w_in } else { 0.0 };
                }
            }
            PreparedKind::UniformBox { rect, w_in } => {
                weights[..n].fill(*w_in);
                for d in 0..D {
                    let (lo, hi) = (rect.min[d], rect.max[d]);
                    let row = &coords[d * CHUNK..d * CHUNK + n];
                    for i in 0..n {
                        let x = row[i];
                        if x < lo || x > hi {
                            weights[i] = 0.0;
                        }
                    }
                }
            }
            PreparedKind::ConGauBall {
                center,
                r2,
                two_s2,
                norm,
                lambda,
            } => {
                dist2_chunk(center, n, coords, dist2);
                let (r2, two_s2, norm, lambda) = (*r2, *two_s2, *norm, *lambda);
                for i in 0..n {
                    let d2 = dist2[i];
                    // Same operation order as the scalar density — the two
                    // divisions stay divisions.
                    weights[i] = if d2 > r2 {
                        0.0
                    } else {
                        ((-d2 / two_s2).exp() / norm) / lambda
                    };
                }
            }
            PreparedKind::Histogram {
                h,
                widths,
                cell_vol,
            } => {
                let rect = h.rect();
                let bins = h.bins();
                let mass = h.mass();
                for i in 0..n {
                    let mut flat = 0usize;
                    let mut inside = true;
                    for d in 0..D {
                        let x = coords[d * CHUNK + i];
                        if x < rect.min[d] || x > rect.max[d] {
                            inside = false;
                            break;
                        }
                        let mut k = ((x - rect.min[d]) / widths[d]) as usize;
                        if k >= bins[d] {
                            k = bins[d] - 1; // right boundary joins the last cell
                        }
                        flat = flat * bins[d] + k;
                    }
                    weights[i] = if inside { mass[flat] / cell_vol } else { 0.0 };
                }
            }
        }
    }
}

/// Squared distances of `n` dim-major samples to `center`, accumulated in
/// dimension order exactly like `Point::distance_sq`.
fn dist2_chunk<const D: usize>(center: &Point<D>, n: usize, coords: &[f64], dist2: &mut [f64]) {
    dist2[..n].fill(0.0);
    for (d, &c) in center.coords.iter().enumerate() {
        let row = &coords[d * CHUNK..d * CHUNK + n];
        for i in 0..n {
            let diff = c - row[i];
            dist2[i] += diff * diff;
        }
    }
}

/// Query-rect containment masks (1.0 inside, boundary included) for `n`
/// dim-major samples — the branch-free form of `Rect::contains_point`.
fn contains_chunk<const D: usize>(rq: &Rect<D>, n: usize, coords: &[f64], masks: &mut [f64]) {
    masks[..n].fill(1.0);
    for d in 0..D {
        let (lo, hi) = (rq.min[d], rq.max[d]);
        let row = &coords[d * CHUNK..d * CHUNK + n];
        for i in 0..n {
            let x = row[i];
            masks[i] *= u8::from(x >= lo && x <= hi) as f64;
        }
    }
}

impl MonteCarlo {
    /// The chunked-kernel form of [`MonteCarlo::estimate`]: byte-identical
    /// probabilities under the same seed, evaluated over [`CHUNK`]-sample
    /// SoA rows with all per-variant constants hoisted into `prepared`.
    ///
    /// `scratch` is reused across candidates and queries; see
    /// [`RefineScratch`]. The sample counter in `scratch` is charged with
    /// `n1` unless a short-circuit answers without sampling.
    pub fn estimate_with<const D: usize, R: Rng + ?Sized>(
        &self,
        prepared: &PreparedPdf<'_, D>,
        rq: &Rect<D>,
        rng: &mut R,
        scratch: &mut RefineScratch,
    ) -> f64 {
        let mbr = prepared.mbr();
        if !mbr.intersects(rq) {
            return 0.0;
        }
        if rq.contains_rect(mbr) {
            return 1.0;
        }
        scratch.ensure(D);
        scratch.samples += self.n1 as u64;
        let RefineScratch {
            coords,
            weights,
            masks,
            dist2,
            ..
        } = scratch;
        let mut total = 0.0;
        let mut inside = 0.0;
        let mut remaining = self.n1;
        while remaining > 0 {
            let n = remaining.min(CHUNK);
            prepared.sample_chunk(rng, n, coords);
            prepared.density_chunk(n, coords, dist2, weights);
            contains_chunk(rq, n, coords, masks);
            // Sequential per-sample reduction: same accumulation order as
            // the scalar loop, hence the same bits. The mask is applied as
            // a select, not a multiply — a degenerate support (zero-area
            // box) makes `w` infinite, and `inf * 0.0` would inject NaN
            // where the scalar path simply skips the add.
            for i in 0..n {
                let w = weights[i];
                total += w;
                inside += if masks[i] != 0.0 { w } else { 0.0 };
            }
            remaining -= n;
        }
        if total == 0.0 {
            0.0
        } else {
            inside / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_matches_scalar_on_a_disk() {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([10.0, 20.0]),
            radius: 5.0,
        };
        let rq = Rect::new([8.0, 17.0], [12.5, 21.0]);
        let mc = MonteCarlo::new(10_000);
        let scalar = mc.estimate(&pdf, &rq, &mut SmallRng::seed_from_u64(9));
        let prepared = PreparedPdf::new(&pdf);
        let mut scratch = RefineScratch::new();
        let kernel = mc.estimate_with(
            &prepared,
            &rq,
            &mut SmallRng::seed_from_u64(9),
            &mut scratch,
        );
        assert_eq!(scalar.to_bits(), kernel.to_bits());
        assert_eq!(scratch.samples(), 10_000);
    }

    #[test]
    fn short_circuits_charge_no_samples() {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0]),
            radius: 1.0,
        };
        let prepared = PreparedPdf::new(&pdf);
        let mut scratch = RefineScratch::new();
        let mc = MonteCarlo::new(100);
        let mut rng = SmallRng::seed_from_u64(1);
        let disjoint = Rect::new([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(
            mc.estimate_with(&prepared, &disjoint, &mut rng, &mut scratch),
            0.0
        );
        let containing = Rect::new([-2.0, -2.0], [2.0, 2.0]);
        assert_eq!(
            mc.estimate_with(&prepared, &containing, &mut rng, &mut scratch),
            1.0
        );
        assert_eq!(scratch.samples(), 0, "short-circuits must not sample");
        scratch.reset_samples();
        assert_eq!(scratch.samples(), 0);
    }
}
