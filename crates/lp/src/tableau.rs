//! Dense two-phase primal Simplex on non-negative variables.
//!
//! Solves `max c·x  s.t.  A·x ≤ b, x ≥ 0` where `b` may have negative
//! entries (handled by phase-1 artificial variables). Pivot selection is
//! Dantzig's rule with a switch to Bland's rule after a burn-in to guarantee
//! termination on degenerate programs.

use crate::LpError;

const EPS: f64 = 1e-9;
/// After this many Dantzig pivots we switch to Bland's rule.
const BLAND_AFTER: usize = 2_000;
const MAX_ITERS: usize = 20_000;

/// Solves the standard-form LP; returns the optimal `x` (length = number of
/// structural variables).
pub fn solve_standard(c: &[f64], rows: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, LpError> {
    let n = c.len();
    let m = rows.len();
    debug_assert!(rows.iter().all(|r| r.len() == n));
    debug_assert_eq!(b.len(), m);

    if m == 0 {
        // Feasible at x = 0; unbounded if any cost is positive.
        if c.iter().any(|&ci| ci > EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(vec![0.0; n]);
    }

    // Column layout: [structural 0..n | slack n..n+m | artificial ...].
    let art_rows: Vec<usize> = (0..m).filter(|&i| b[i] < 0.0).collect();
    let num_art = art_rows.len();
    let ncols = n + m + num_art;

    // T[i] = constraint row i (len ncols + 1, last = rhs).
    let mut t = vec![vec![0.0; ncols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut next_art = 0usize;
    for i in 0..m {
        let neg = b[i] < 0.0;
        let sign = if neg { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = sign * rows[i][j];
        }
        t[i][n + i] = sign; // slack (surplus when negated)
        t[i][ncols] = sign * b[i];
        if neg {
            let aj = n + m + next_art;
            next_art += 1;
            t[i][aj] = 1.0;
            basis[i] = aj;
        } else {
            basis[i] = n + i;
        }
    }

    if num_art > 0 {
        // Phase 1: maximize -Σ artificials. Reduced-cost row:
        // r_j = z_j - c_j with c_B = -1 on artificial rows.
        let mut obj = vec![0.0; ncols + 1];
        for j in 0..ncols {
            let mut zj = 0.0;
            for &i in &art_rows {
                zj -= t[i][j];
            }
            let cj = if j >= n + m { -1.0 } else { 0.0 };
            obj[j] = zj - cj;
        }
        for &i in &art_rows {
            obj[ncols] -= t[i][ncols];
        }
        pivot_loop(&mut t, &mut obj, &mut basis, ncols, usize::MAX)?;
        // obj[ncols] holds -z; z = -Σ art must be ~0 for feasibility.
        if obj[ncols].abs() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis.
        for i in 0..m {
            if basis[i] >= n + m {
                let pivot_col = t[i][..n + m].iter().position(|v| v.abs() > 1e-7);
                if let Some(j) = pivot_col {
                    pivot(&mut t, &mut basis, i, j);
                }
                // A row with no eligible column is redundant; its artificial
                // stays basic at value 0, which is harmless because the
                // artificial columns are banned from re-entering below and
                // pivots preserve rhs ≥ 0 only up to this zero row.
            }
        }
    }

    // Phase 2: rebuild the reduced-cost row for the real objective.
    let banned_from = n + m; // artificial columns may not enter
    let mut obj = vec![0.0; ncols + 1];
    for j in 0..ncols {
        let mut zj = 0.0;
        for i in 0..m {
            let cb = if basis[i] < n { c[basis[i]] } else { 0.0 };
            if cb != 0.0 {
                zj += cb * t[i][j];
            }
        }
        let cj = if j < n { c[j] } else { 0.0 };
        obj[j] = zj - cj;
    }
    for i in 0..m {
        let cb = if basis[i] < n { c[basis[i]] } else { 0.0 };
        obj[ncols] -= cb * t[i][ncols];
    }
    pivot_loop(&mut t, &mut obj, &mut basis, ncols, banned_from)?;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][ncols];
        }
    }
    Ok(x)
}

/// Runs the pivot loop until optimality (all reduced costs ≥ -EPS).
fn pivot_loop(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    ncols: usize,
    banned_from: usize,
) -> Result<(), LpError> {
    for iter in 0..MAX_ITERS {
        let bland = iter >= BLAND_AFTER;
        // Entering column: most negative reduced cost (Dantzig) or first
        // negative (Bland).
        let mut enter = None;
        let mut best = -EPS;
        for (j, &rj) in obj.iter().enumerate().take(ncols) {
            if j >= banned_from {
                continue;
            }
            if rj < best {
                enter = Some(j);
                if bland {
                    break;
                }
                best = rj;
            }
        }
        let Some(j) = enter else {
            return Ok(());
        };
        // Leaving row: minimum ratio, Bland tie-break on basis index.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[j] > EPS {
                let ratio = row[ncols] / row[j];
                match leave {
                    None => {
                        leave = Some(i);
                        best_ratio = ratio;
                    }
                    Some(l) => {
                        if ratio < best_ratio - EPS
                            || (ratio <= best_ratio + EPS && basis[i] < basis[l])
                        {
                            best_ratio = best_ratio.min(ratio);
                            leave = Some(i);
                        }
                    }
                }
            }
        }
        let Some(i) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot_with_obj(t, obj, basis, i, j);
    }
    Err(LpError::IterationLimit)
}

/// Pivot on (row, col) updating constraint rows and the basis only.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let piv = t[row][col];
    debug_assert!(piv.abs() > 0.0);
    for v in t[row].iter_mut() {
        *v /= piv;
    }
    let (before, rest) = t.split_at_mut(row);
    // xlint: allow(panic-freedom) -- invariant: row index in range
    let (pivot_row, after) = rest.split_first_mut().expect("row index in range");
    for r in before.iter_mut().chain(after.iter_mut()) {
        let factor = r[col];
        if factor.abs() > 0.0 {
            for (v, pv) in r.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
            r[col] = 0.0;
        }
    }
    basis[row] = col;
}

/// Pivot that also eliminates the entering column from the objective row.
fn pivot_with_obj(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
) {
    let ncols = t[row].len();
    let piv = t[row][col];
    for v in t[row].iter_mut() {
        *v /= piv;
    }
    let (before, rest) = t.split_at_mut(row);
    // xlint: allow(panic-freedom) -- invariant: row index in range
    let (pivot_row, after) = rest.split_first_mut().expect("row index in range");
    for r in before.iter_mut().chain(after.iter_mut()) {
        let factor = r[col];
        if factor.abs() > 0.0 {
            for (v, pv) in r.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
            r[col] = 0.0;
        }
    }
    let factor = obj[col];
    if factor.abs() > 0.0 {
        for j in 0..ncols {
            obj[j] -= factor * t[row][j];
        }
        obj[col] = 0.0;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_bounded() {
        // max x s.t. x ≤ 3, x ≥ 0
        let x = solve_standard(&[1.0], &[vec![1.0]], &[3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_constraints_zero_cost() {
        let x = solve_standard(&[-1.0, 0.0], &[], &[]).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn no_constraints_positive_cost_unbounded() {
        assert_eq!(
            solve_standard(&[1.0], &[], &[]).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn phase_one_feasibility() {
        // x ≥ 2 (as -x ≤ -2), x ≤ 5: max -x → x = 2.
        let x = solve_standard(&[-1.0], &[vec![-1.0], vec![1.0]], &[-2.0, 5.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows() {
        // x = 1 expressed twice; max x.
        let rows = vec![vec![1.0], vec![-1.0], vec![1.0], vec![-1.0]];
        let b = vec![1.0, -1.0, 1.0, -1.0];
        let x = solve_standard(&[1.0], &rows, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
    }
}
