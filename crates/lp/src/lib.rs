//! A small, dependency-free linear-programming solver.
//!
//! The U-tree paper computes conservative functional boxes (CFBs) by
//! solving, per dimension, a linear program with the Simplex method
//! (Sec 4.4: "In our implementation, we adopt the well-known Simplex
//! method"). This crate provides exactly that: a dense, two-phase primal
//! Simplex with Bland's anti-cycling rule, supporting free (sign-
//! unrestricted) variables — the CFB intercepts/slopes can be any sign.
//!
//! The LPs arising from CFB fitting are tiny (≤ 4 variables, ≤ 3·m
//! constraints with catalog size m ≈ 15), so a dense tableau is the right
//! tool; the solver is nevertheless a complete, general `max c·x  s.t.
//! A·x ≤ b` solver and is property-tested against a geometric vertex
//! enumerator.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod tableau;

pub use tableau::solve_standard;

/// Failure modes of [`LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal assignment for the (free) variables.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective_value: f64,
}

/// Builder for `maximize c·x subject to a_i·x ≤ b_i`, `x` free.
///
/// ```
/// use simplex_lp::LinearProgram;
/// // max x + y  s.t.  x ≤ 2, y ≤ 3, x + y ≤ 4
/// let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
/// lp.less_eq(vec![1.0, 0.0], 2.0);
/// lp.less_eq(vec![0.0, 1.0], 3.0);
/// lp.less_eq(vec![1.0, 1.0], 4.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective_value - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, f64)>,
}

impl LinearProgram {
    /// Starts a maximisation problem over `objective.len()` free variables.
    pub fn maximize(objective: Vec<f64>) -> Self {
        assert!(!objective.is_empty());
        Self {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Starts a minimisation problem (negates the objective internally).
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self::maximize(objective.into_iter().map(|c| -c).collect())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds `coeffs·x ≤ rhs`.
    pub fn less_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.num_vars());
        self.constraints.push((coeffs, rhs));
        self
    }

    /// Adds `coeffs·x ≥ rhs` (stored as `-coeffs·x ≤ -rhs`).
    pub fn greater_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
        self.less_eq(neg, -rhs)
    }

    /// Adds `coeffs·x = rhs` (as a pair of inequalities).
    pub fn equal(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.less_eq(coeffs.clone(), rhs);
        self.greater_eq(coeffs, rhs)
    }

    /// Solves the program. The reported `objective_value` is for the
    /// *maximisation* form (callers of [`LinearProgram::minimize`] should
    /// negate it, or read `x` and evaluate their own objective).
    pub fn solve(&self) -> Result<Solution, LpError> {
        // Free variables: x = u - v with u, v >= 0.
        let n = self.num_vars();
        let split_obj: Vec<f64> = self.objective.iter().flat_map(|&c| [c, -c]).collect();
        let split_rows: Vec<Vec<f64>> = self
            .constraints
            .iter()
            .map(|(row, _)| row.iter().flat_map(|&a| [a, -a]).collect())
            .collect();
        let rhs: Vec<f64> = self.constraints.iter().map(|&(_, b)| b).collect();
        let split = solve_standard(&split_obj, &split_rows, &rhs)?;
        let mut x = Vec::with_capacity(n);
        for i in 0..n {
            x.push(split[2 * i] - split[2 * i + 1]);
        }
        let objective_value = self.objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
        Ok(Solution { x, objective_value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_2d() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.less_eq(vec![1.0, 0.0], 4.0);
        lp.less_eq(vec![0.0, 2.0], 12.0);
        lp.less_eq(vec![3.0, 2.0], 18.0);
        lp.greater_eq(vec![1.0, 0.0], 0.0);
        lp.greater_eq(vec![0.0, 1.0], 0.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // max -x s.t. x ≥ -5  →  x = -5, objective 5
        let mut lp = LinearProgram::maximize(vec![-1.0]);
        lp.greater_eq(vec![1.0], -5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], -5.0);
        assert_close(sol.objective_value, 5.0);
    }

    #[test]
    fn negative_rhs_requires_phase_one() {
        // max x + y s.t. x + y ≥ 2 (i.e. -x - y ≤ -2), x ≤ 3, y ≤ 3
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.greater_eq(vec![1.0, 1.0], 2.0);
        lp.less_eq(vec![1.0, 0.0], 3.0);
        lp.less_eq(vec![0.0, 1.0], 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value, 6.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 0 and x ≥ 1
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.less_eq(vec![1.0], 0.0);
        lp.greater_eq(vec![1.0], 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.greater_eq(vec![1.0], 0.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unbounded_via_free_variable() {
        // max x with only y constrained.
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.less_eq(vec![0.0, 1.0], 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, 0 ≤ x ≤ 2, y ≥ 0
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
        lp.equal(vec![1.0, 1.0], 3.0);
        lp.greater_eq(vec![1.0, 0.0], 0.0);
        lp.less_eq(vec![1.0, 0.0], 2.0);
        lp.greater_eq(vec![0.0, 1.0], 0.0);
        let sol = lp.solve().unwrap();
        // best: x = 0, y = 3 → 6
        assert_close(sol.objective_value, 6.0);
    }

    #[test]
    fn minimize_helper() {
        // min x s.t. x ≥ 2  → x = 2, maximised objective = -2
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.greater_eq(vec![1.0], 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 2.0);
        assert_close(sol.objective_value, -2.0);
    }

    #[test]
    fn degenerate_vertex_does_not_cycle() {
        // Klee–Minty-ish degenerate setup; mostly checks termination.
        let mut lp = LinearProgram::maximize(vec![10.0, 1.0]);
        lp.less_eq(vec![1.0, 0.0], 1.0);
        lp.less_eq(vec![20.0, 1.0], 100.0);
        lp.less_eq(vec![1.0, 1.0], 5.0);
        lp.greater_eq(vec![1.0, 0.0], 0.0);
        lp.greater_eq(vec![0.0, 1.0], 0.0);
        let sol = lp.solve().unwrap();
        assert!(sol.objective_value > 0.0);
    }

    #[test]
    fn cfb_shaped_lp() {
        // The real shape from Sec 4.4: maximize m·α − P·β subject to
        // α − β·p_j ≤ c_j (lower CFB face under the PCR faces).
        let ps = [0.0, 0.125, 0.25, 0.375, 0.5];
        let cs = [0.0, 1.0, 1.8, 2.4, 2.8]; // concave-ish PCR faces
        let m = ps.len() as f64;
        let p_sum: f64 = ps.iter().sum();
        let mut lp = LinearProgram::maximize(vec![m, -p_sum]);
        for (p, c) in ps.iter().zip(cs.iter()) {
            lp.less_eq(vec![1.0, -p], *c);
        }
        let sol = lp.solve().unwrap();
        let (alpha, beta) = (sol.x[0], sol.x[1]);
        // Feasibility: the fitted line stays below every PCR face.
        for (p, c) in ps.iter().zip(cs.iter()) {
            assert!(alpha - beta * p <= c + 1e-7);
        }
        // And it is tight somewhere (optimality pushes against constraints).
        let slack: f64 = ps
            .iter()
            .zip(cs.iter())
            .map(|(p, c)| c - (alpha - beta * p))
            .fold(f64::INFINITY, f64::min);
        assert!(slack.abs() < 1e-7);
    }
}
