//! Synthetic datasets and workloads reproducing the paper's Sec 6 setup.
//!
//! The paper uses the TIGER census point sets **LB** (Long Beach county,
//! 53k points) and **CA** (California, 62k points), both normalised to
//! `[0, 10000]²`, plus a derived 3D **Aircraft** set (100k objects). The
//! TIGER files are not available offline, so [`lb_points`] and
//! [`ca_points`] generate seeded Gaussian-mixture point sets with the same
//! cardinalities, domain and — importantly — the *clustered, skewed*
//! spatial distribution that R-tree experiments are sensitive to (LB ≈
//! dense urban grid, CA ≈ elongated coastal band with inland clusters).
//! The uncertain conversion and the Aircraft recipe follow the paper
//! exactly: circles of radius 250 with Uniform (LB) / Constrained-Gaussian
//! σ = 125 (CA) pdfs; spheres of radius 125 with Uniform pdfs on
//! airport-segment positions (Aircraft).
//!
//! Queries: squares/cubes of side `q_s` whose *location distribution
//! follows that of the data* (centers drawn from the dataset), 100 per
//! workload.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod points;
mod workload;

pub use points::{aircraft_objects, ca_points, lb_points, mixture_points, ClusterSpec};
pub use workload::{workload, Workload};

use uncertain_geom::Point;
use uncertain_pdf::{ObjectPdf, UncertainObject};

/// Domain edge length used throughout the paper ("all dimensions are
/// normalized to have domains [0, 10000]").
pub const DOMAIN: f64 = 10_000.0;

/// Paper cardinality of LB.
pub const LB_SIZE: usize = 53_000;
/// Paper cardinality of CA.
pub const CA_SIZE: usize = 62_000;
/// Paper cardinality of Aircraft.
pub const AIRCRAFT_SIZE: usize = 100_000;

/// Uncertainty radius for LB/CA (2.5% of an axis).
pub const LB_CA_RADIUS: f64 = 250.0;
/// Con-Gau standard deviation (half the radius; Sec 6).
pub const CA_SIGMA: f64 = 125.0;
/// Aircraft uncertainty radius.
pub const AIRCRAFT_RADIUS: f64 = 125.0;

/// Converts 2D points to uncertain objects with Uniform circular pdfs
/// (the paper's LB conversion).
pub fn to_uniform_objects(points: &[Point<2>], radius: f64) -> Vec<UncertainObject<2>> {
    points
        .iter()
        .enumerate()
        .map(|(id, p)| {
            UncertainObject::new(id as u64, ObjectPdf::UniformBall { center: *p, radius })
        })
        .collect()
}

/// Converts 2D points to uncertain objects with Constrained-Gaussian pdfs
/// (the paper's CA conversion; Eq. 16 with σ = radius/2).
pub fn to_congau_objects(points: &[Point<2>], radius: f64, sigma: f64) -> Vec<UncertainObject<2>> {
    points
        .iter()
        .enumerate()
        .map(|(id, p)| {
            UncertainObject::new(
                id as u64,
                ObjectPdf::ConGauBall {
                    center: *p,
                    radius,
                    sigma,
                },
            )
        })
        .collect()
}

/// The LB uncertain dataset at a chosen size (use [`LB_SIZE`] for the
/// paper's full scale).
pub fn lb_dataset(n: usize, seed: u64) -> Vec<UncertainObject<2>> {
    to_uniform_objects(&lb_points(n, seed), LB_CA_RADIUS)
}

/// The CA uncertain dataset at a chosen size.
pub fn ca_dataset(n: usize, seed: u64) -> Vec<UncertainObject<2>> {
    to_congau_objects(&ca_points(n, seed), LB_CA_RADIUS, CA_SIGMA)
}

/// The Aircraft uncertain dataset at a chosen size.
pub fn aircraft_dataset(n: usize, seed: u64) -> Vec<UncertainObject<3>> {
    aircraft_objects(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_builders_assign_sequential_ids() {
        let d = lb_dataset(100, 1);
        assert_eq!(d.len(), 100);
        for (i, o) in d.iter().enumerate() {
            assert_eq!(o.id, i as u64);
        }
    }

    #[test]
    fn ca_dataset_uses_congau() {
        let d = ca_dataset(10, 2);
        for o in &d {
            match &o.pdf {
                ObjectPdf::ConGauBall { radius, sigma, .. } => {
                    assert_eq!(*radius, LB_CA_RADIUS);
                    assert_eq!(*sigma, CA_SIGMA);
                }
                other => panic!("CA must be Con-Gau, got {other:?}"),
            }
        }
    }
}
