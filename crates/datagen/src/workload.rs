//! Query workload generation (paper Sec 6: "A workload contains 100
//! queries with the same parameters q_s and p_q").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::{Point, Rect};
use utree_query_types::ProbRangeQuery;

// The query type lives in the `utree` crate; re-exported under a narrow
// alias module to keep this crate's dependency surface explicit.
mod utree_query_types {
    pub use utree::ProbRangeQuery;
}

/// A set of prob-range queries sharing `q_s` and `p_q`.
#[derive(Debug, Clone)]
pub struct Workload<const D: usize> {
    /// The queries.
    pub queries: Vec<ProbRangeQuery<D>>,
    /// Side length of every query region.
    pub qs: f64,
    /// Probability threshold of every query.
    pub pq: f64,
}

impl<const D: usize> Workload<D> {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Builds a workload of `count` queries: cubes of side `qs` centred at
/// points drawn from `centers` (so "the distribution of the region's
/// location follows that of the underlying data"), all with threshold
/// `pq`.
pub fn workload<const D: usize>(
    centers: &[Point<D>],
    qs: f64,
    pq: f64,
    count: usize,
    seed: u64,
) -> Workload<D> {
    assert!(!centers.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed);
    let queries = (0..count)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            ProbRangeQuery::new(Rect::cube(&c, qs), pq)
        })
        .collect();
    Workload { queries, qs, pq }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_and_thresholds() {
        let centers = vec![Point::new([100.0, 200.0]), Point::new([5000.0, 5000.0])];
        let w = workload(&centers, 500.0, 0.6, 100, 42);
        assert_eq!(w.len(), 100);
        for q in &w.queries {
            assert_eq!(q.threshold, 0.6);
            for i in 0..2 {
                assert!((q.region.extent(i) - 500.0).abs() < 1e-9);
            }
            // centred on one of the given centers
            let c = q.region.center();
            assert!(
                centers.iter().any(|p| p.distance(&c) < 1e-9),
                "query not centred on a data point"
            );
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let centers: Vec<Point<2>> = (0..50)
            .map(|i| Point::new([i as f64 * 100.0, i as f64 * 50.0]))
            .collect();
        let a = workload(&centers, 1000.0, 0.3, 20, 7);
        let b = workload(&centers, 1000.0, 0.3, 20, 7);
        assert_eq!(a.queries, b.queries);
    }
}
