//! Point-set generators standing in for the TIGER datasets.

use crate::{AIRCRAFT_RADIUS, DOMAIN};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uncertain_geom::Point;
use uncertain_pdf::{ObjectPdf, UncertainObject};

/// One Gaussian cluster of a mixture point set.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Cluster center.
    pub center: [f64; 2],
    /// Isotropic spread (σ) scaled per axis.
    pub sigma: [f64; 2],
    /// Relative sampling weight.
    pub weight: f64,
}

/// Samples `n` points from a Gaussian mixture, clamped to the domain.
pub fn mixture_points(n: usize, clusters: &[ClusterSpec], rng: &mut SmallRng) -> Vec<Point<2>> {
    assert!(!clusters.is_empty());
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut chosen = &clusters[clusters.len() - 1];
        for c in clusters {
            if pick < c.weight {
                chosen = c;
                break;
            }
            pick -= c.weight;
        }
        let x = chosen.center[0] + gaussian(rng) * chosen.sigma[0];
        let y = chosen.center[1] + gaussian(rng) * chosen.sigma[1];
        if (0.0..=DOMAIN).contains(&x) && (0.0..=DOMAIN).contains(&y) {
            points.push(Point::new([x, y]));
        }
    }
    points
}

/// Box–Muller standard normal (avoids depending on rand_distr).
fn gaussian(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// LB stand-in: a dense mosaic of compact urban clusters with a uniform
/// background — mimics a county street map's point distribution.
pub fn lb_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4C42); // "LB"
    let mut clusters = Vec::new();
    // 45 compact urban blobs…
    for _ in 0..45 {
        clusters.push(ClusterSpec {
            center: [rng.gen_range(0.0..DOMAIN), rng.gen_range(0.0..DOMAIN)],
            sigma: [rng.gen_range(120.0..450.0), rng.gen_range(120.0..450.0)],
            weight: rng.gen_range(0.5..3.0),
        });
    }
    // …plus a broad background component (10% of mass).
    let urban_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    clusters.push(ClusterSpec {
        center: [DOMAIN / 2.0, DOMAIN / 2.0],
        sigma: [DOMAIN / 2.5, DOMAIN / 2.5],
        weight: urban_weight / 9.0,
    });
    mixture_points(n, &clusters, &mut rng)
}

/// CA stand-in: an elongated diagonal "coastal" band of clusters plus
/// sparse inland blobs — mimics California's population geography.
pub fn ca_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4341); // "CA"
    let mut clusters = Vec::new();
    // Coastal band: clusters along the main diagonal.
    for k in 0..30 {
        let t = k as f64 / 29.0;
        let along = t * DOMAIN;
        let off = rng.gen_range(-600.0..600.0);
        clusters.push(ClusterSpec {
            center: [
                (along + off).clamp(0.0, DOMAIN),
                (DOMAIN - along + off).clamp(0.0, DOMAIN),
            ],
            sigma: [rng.gen_range(150.0..500.0), rng.gen_range(150.0..500.0)],
            weight: rng.gen_range(1.0..4.0),
        });
    }
    // Inland valley clusters.
    for _ in 0..15 {
        clusters.push(ClusterSpec {
            center: [rng.gen_range(0.0..DOMAIN), rng.gen_range(0.0..DOMAIN)],
            sigma: [rng.gen_range(200.0..700.0), rng.gen_range(200.0..700.0)],
            weight: rng.gen_range(0.3..1.2),
        });
    }
    mixture_points(n, &clusters, &mut rng)
}

/// The paper's Aircraft recipe: 2000 "airports" sampled from LB; each
/// aircraft's (a, b) lies on the segment between a random airport pair;
/// altitude c is uniform in the (normalised) domain; the uncertainty
/// region is a sphere of radius 125 with a Uniform pdf.
pub fn aircraft_objects(n: usize, seed: u64) -> Vec<UncertainObject<3>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA1C);
    let airports = lb_points(2000, seed ^ 0xA1C ^ 1);
    (0..n)
        .map(|id| {
            let src = airports[rng.gen_range(0..airports.len())];
            let dst = airports[rng.gen_range(0..airports.len())];
            let t: f64 = rng.gen();
            let a = src.coords[0] + t * (dst.coords[0] - src.coords[0]);
            let b = src.coords[1] + t * (dst.coords[1] - src.coords[1]);
            let c = rng.gen_range(0.0..DOMAIN);
            UncertainObject::new(
                id as u64,
                ObjectPdf::UniformBall {
                    center: Point::new([a, b, c]),
                    radius: AIRCRAFT_RADIUS,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(lb_points(500, 7), lb_points(500, 7));
        assert_ne!(lb_points(500, 7), lb_points(500, 8));
        assert_eq!(ca_points(300, 1), ca_points(300, 1));
    }

    #[test]
    fn points_stay_in_domain() {
        for p in lb_points(2000, 3).iter().chain(ca_points(2000, 3).iter()) {
            assert!((0.0..=DOMAIN).contains(&p.coords[0]));
            assert!((0.0..=DOMAIN).contains(&p.coords[1]));
        }
    }

    #[test]
    fn lb_is_clustered_not_uniform() {
        // Chi-square-ish check: with 45 tight clusters, a 10×10 grid must
        // show far more variance than a uniform sample would.
        let pts = lb_points(10_000, 5);
        let mut cells = [0usize; 100];
        for p in &pts {
            let cx = ((p.coords[0] / DOMAIN * 10.0) as usize).min(9);
            let cy = ((p.coords[1] / DOMAIN * 10.0) as usize).min(9);
            cells[cy * 10 + cx] += 1;
        }
        let mean = 100.0;
        let var: f64 = cells
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 100.0;
        // Uniform data would have variance ≈ mean (Poisson). Require 5×.
        assert!(var > 5.0 * mean, "variance {var} too uniform");
    }

    #[test]
    fn ca_band_structure() {
        // The coastal band runs along the anti-diagonal: x + y ≈ DOMAIN.
        // Most points should be near it.
        let pts = ca_points(5000, 11);
        let near = pts
            .iter()
            .filter(|p| ((p.coords[0] + p.coords[1]) - DOMAIN).abs() < 2500.0)
            .count();
        assert!(
            near > pts.len() / 2,
            "only {near} of {} points near the band",
            pts.len()
        );
    }

    #[test]
    fn aircraft_objects_match_recipe() {
        let objs = aircraft_objects(500, 9);
        assert_eq!(objs.len(), 500);
        for o in &objs {
            match &o.pdf {
                ObjectPdf::UniformBall { center, radius } => {
                    assert_eq!(*radius, AIRCRAFT_RADIUS);
                    assert!((0.0..=DOMAIN).contains(&center.coords[2]), "altitude");
                }
                other => panic!("aircraft must be uniform spheres, got {other:?}"),
            }
        }
        assert_eq!(aircraft_objects(500, 9), objs, "determinism");
    }
}
