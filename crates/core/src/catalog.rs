//! The U-catalog: the pre-determined probability values at which PCRs are
//! materialised (paper Sec 4.2).

use crate::api::IndexError;

/// A sorted set of probability values `p₁ < p₂ < … < p_m`, all in
/// `[0, 0.5]`, shared by every object in a database.
///
/// The paper's tuning (Sec 6.2) uses evenly spaced catalogs
/// `{0, 0.5/(m−1), …, 0.5}` with m = 9/10 for U-PCR and m = 15 for the
/// U-tree. `p₁ = 0` makes `pcr(p₁)` coincide with the MBR of the
/// uncertainty region, which anchors the linear `e.MBR(p)` interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct UCatalog {
    values: Vec<f64>,
}

impl UCatalog {
    /// Builds a catalog from explicit values (must be strictly ascending,
    /// within `[0, 0.5]`, at least two of them), returning a typed error
    /// instead of panicking on invalid input.
    pub fn try_new(values: Vec<f64>) -> Result<Self, IndexError> {
        if values.len() < 2 {
            return Err(IndexError::CatalogTooSmall { len: values.len() });
        }
        if let Some(index) = values.windows(2).position(|w| w[0] >= w[1]) {
            return Err(IndexError::CatalogNotAscending { index });
        }
        if let Some(index) = values.iter().position(|p| !(0.0..=0.5).contains(p)) {
            return Err(IndexError::CatalogValueOutOfRange {
                index,
                value: values[index],
            });
        }
        Ok(Self { values })
    }

    /// [`Self::try_new`], panicking on invalid values (kept for
    /// infallible call sites with literal catalogs).
    pub fn new(values: Vec<f64>) -> Self {
        // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
        Self::try_new(values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The paper's evenly spaced catalog `{0, 0.5/(m−1), …, 0.5}`,
    /// returning a typed error when `m < 2`.
    pub fn try_uniform(m: usize) -> Result<Self, IndexError> {
        if m < 2 {
            return Err(IndexError::CatalogTooSmall { len: m });
        }
        Self::try_new((0..m).map(|j| 0.5 * j as f64 / (m - 1) as f64).collect())
    }

    /// [`Self::try_uniform`], panicking when `m < 2`.
    pub fn uniform(m: usize) -> Self {
        // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
        Self::try_uniform(m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The U-tree default from Sec 6.2: m = 15, values `0, 1/28, …, 14/28`.
    pub fn paper_utree_default() -> Self {
        Self::new((0..15).map(|j| j as f64 / 28.0).collect())
    }

    /// Number of values m.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Catalogs are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `p_j` by index (0-based).
    pub fn value(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// Smallest value `p₁`.
    pub fn first(&self) -> f64 {
        self.values[0]
    }

    /// Largest value `p_m`.
    pub fn last(&self) -> f64 {
        *self
            .values
            .last()
            // xlint: allow(panic-freedom) -- invariant: catalog construction rejects empty value lists
            .expect("catalog construction rejects empty value lists")
    }

    /// Index of the median value `p_{⌈m/2⌉}` used by the split algorithm
    /// (Sec 5.3). The paper's subscript is 1-based, so the 0-based index
    /// is `⌈m/2⌉ − 1`: m = 5 ⇒ p₃ (index 2), m = 6 ⇒ p₃ (index 2). The
    /// earlier `m/2` sat one step high for even m, biasing the split
    /// rectangle toward the small-probability end of the catalog.
    pub fn median_index(&self) -> usize {
        self.values.len().div_ceil(2) - 1
    }

    /// Sum of all values (the constant `P` of the CFB objective,
    /// Formula 11).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Index of the largest catalog value `<= p`, if any.
    pub fn largest_leq(&self, p: f64) -> Option<usize> {
        match self.values.partition_point(|&v| v <= p) {
            0 => None,
            k => Some(k - 1),
        }
    }

    /// Index of the smallest catalog value `>= p`, if any.
    pub fn smallest_geq(&self, p: f64) -> Option<usize> {
        let k = self.values.partition_point(|&v| v < p);
        (k < self.values.len()).then_some(k)
    }

    /// Interpolation fraction of `p_j` between `p₁` and `p_m` — the
    /// parameter of the U-tree's linear `e.MBR(p)` (Eq. 15).
    pub fn fraction(&self, j: usize) -> f64 {
        (self.values[j] - self.first()) / (self.last() - self.first())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_spacing() {
        let c = UCatalog::uniform(6);
        assert_eq!(c.len(), 6);
        assert_eq!(c.first(), 0.0);
        assert_eq!(c.last(), 0.5);
        assert!((c.value(1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_default_matches_sec_62() {
        let c = UCatalog::paper_utree_default();
        assert_eq!(c.len(), 15);
        assert_eq!(c.first(), 0.0);
        assert!((c.last() - 0.5).abs() < 1e-12);
        assert!((c.value(1) - 1.0 / 28.0).abs() < 1e-15);
    }

    #[test]
    fn largest_leq_and_smallest_geq() {
        let c = UCatalog::new(vec![0.0, 0.1, 0.25, 0.4]);
        assert_eq!(c.largest_leq(0.3), Some(2));
        assert_eq!(c.largest_leq(0.25), Some(2));
        assert_eq!(c.largest_leq(0.05), Some(0));
        assert_eq!(c.largest_leq(-0.01), None);
        assert_eq!(c.smallest_geq(0.2), Some(2));
        assert_eq!(c.smallest_geq(0.25), Some(2));
        assert_eq!(c.smallest_geq(0.41), None);
        assert_eq!(c.smallest_geq(0.0), Some(0));
    }

    #[test]
    fn fraction_endpoints() {
        let c = UCatalog::uniform(5);
        assert_eq!(c.fraction(0), 0.0);
        assert_eq!(c.fraction(4), 1.0);
        assert!((c.fraction(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn median_index_is_one_based_ceil_halved() {
        // Sec 5.3 splits at p_{⌈m/2⌉} (1-based) ⇒ 0-based ⌈m/2⌉ − 1.
        assert_eq!(UCatalog::uniform(2).median_index(), 0);
        assert_eq!(UCatalog::uniform(3).median_index(), 1);
        assert_eq!(UCatalog::uniform(4).median_index(), 1);
        assert_eq!(UCatalog::uniform(5).median_index(), 2);
        assert_eq!(UCatalog::uniform(6).median_index(), 2);
        assert_eq!(UCatalog::uniform(15).median_index(), 7);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_rejected() {
        UCatalog::new(vec![0.2, 0.1]);
    }

    #[test]
    #[should_panic(expected = "[0, 0.5]")]
    fn out_of_range_rejected() {
        UCatalog::new(vec![0.0, 0.6]);
    }
}
