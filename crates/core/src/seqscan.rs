//! Sequential-scan baseline (the strategy sketched at the start of Sec 5):
//! CFBs of all objects are stored in a packed file; a query scans every
//! page, applies Observation 3 per object, and refines the survivors.
//!
//! The U-tree's job is to beat this on I/O by pruning subtrees; the filter
//! power per object is identical, which makes this the perfect ablation
//! baseline.

use crate::catalog::UCatalog;
use crate::cfb::{fit_cfb_pair, CfbView};
use crate::entry::{UCodec, ULeafEntry};
use crate::filter::{filter_object, FilterOutcome};
use crate::object_codec::encode_object;
use crate::pcr::PcrSet;
use crate::query::{refine_candidates, ProbRangeQuery, QueryStats, RefineMode};
use page_store::{f32_round_down, f32_round_up, ObjectHeap, PageFile, PageId, RecordAddr};
use rstar_base::NodeCodec;
use std::sync::Arc;
use std::time::Instant;
use uncertain_pdf::UncertainObject;

/// A flat file of CFB filter entries + the object heap.
pub struct SeqScan<const D: usize> {
    file: PageFile,
    pages: Vec<PageId>,
    /// Entries not yet flushed to a full page.
    open: Vec<ULeafEntry<D>>,
    codec: UCodec<D>,
    heap: ObjectHeap,
    catalog: Arc<UCatalog>,
    len: usize,
}

impl<const D: usize> SeqScan<D> {
    /// An empty scan file over the given catalog.
    pub fn new(catalog: UCatalog) -> Self {
        let catalog = Arc::new(catalog);
        Self {
            file: PageFile::new(),
            pages: Vec::new(),
            open: Vec::new(),
            codec: UCodec::new(catalog.clone()),
            heap: ObjectHeap::new(),
            catalog,
            len: 0,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Filter-file size in bytes (open tail counted as a page).
    pub fn size_bytes(&self) -> u64 {
        ((self.pages.len() + usize::from(!self.open.is_empty())) * page_store::PAGE_SIZE) as u64
    }

    /// Appends an object (packed pages, 100% fill — sequential files have
    /// no update locality to preserve).
    pub fn insert(&mut self, obj: &UncertainObject<D>) {
        let pcrs = PcrSet::compute(&obj.pdf, &self.catalog);
        let cfbs = fit_cfb_pair(&pcrs, &self.catalog);
        let raw = obj.pdf.mbr();
        let mut mbr = raw;
        for i in 0..D {
            mbr.min[i] = f32_round_down(raw.min[i]);
            mbr.max[i] = f32_round_up(raw.max[i]);
        }
        let addr = self.heap.insert(&encode_object(obj));
        self.open
            .push(ULeafEntry::new(cfbs, mbr, addr, obj.id, &self.catalog));
        self.len += 1;
        if self.open.len() == self.codec.leaf_capacity() {
            self.flush_page();
        }
    }

    fn flush_page(&mut self) {
        let page = self.file.allocate();
        let mut bytes = Vec::with_capacity(page_store::PAGE_SIZE);
        self.codec.encode_leaf(&self.open, &mut bytes);
        self.file.write(page, &bytes);
        self.pages.push(page);
        self.open.clear();
    }

    /// Executes a prob-range query by scanning every page.
    pub fn query(&self, q: &ProbRangeQuery<D>, mode: RefineMode) -> (Vec<u64>, QueryStats) {
        let mut stats = QueryStats::default();
        let rq = &q.region;
        let pq = q.threshold;
        let t0 = Instant::now();
        let mut results = Vec::new();
        let mut candidates: Vec<(RecordAddr, u64)> = Vec::new();
        let mut classify = |rec: &ULeafEntry<D>| {
            let view = CfbView {
                pair: &rec.cfbs,
                catalog: &self.catalog,
            };
            match filter_object(&view, &rec.mbr, &self.catalog, rq, pq) {
                FilterOutcome::Pruned => stats.pruned += 1,
                FilterOutcome::Validated => {
                    stats.validated += 1;
                    results.push(rec.id);
                }
                FilterOutcome::Candidate => candidates.push((rec.addr, rec.id)),
            }
        };
        for &page in &self.pages {
            let bytes = self.file.read(page);
            stats.node_reads += 1;
            for rec in self.codec.decode_leaf(bytes) {
                classify(&rec);
            }
        }
        for rec in &self.open {
            classify(rec);
        }
        if !self.open.is_empty() {
            stats.node_reads += 1; // the partially filled tail page
        }
        stats.filter_nanos = t0.elapsed().as_nanos();
        stats.candidates = candidates.len() as u64;
        stats.results = results.len() as u64;

        let t1 = Instant::now();
        let refined = refine_candidates(&self.heap, &candidates, rq, pq, mode, &mut stats);
        stats.refine_nanos = t1.elapsed().as_nanos();
        results.extend(refined);
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::Point;
    use uncertain_geom::Rect;
    use uncertain_pdf::ObjectPdf;

    #[test]
    fn seqscan_matches_utree_results_but_reads_everything() {
        let mut rng = SmallRng::seed_from_u64(61);
        let mut scan = SeqScan::new(UCatalog::uniform(8));
        let mut tree = crate::UTree::new(UCatalog::uniform(8));
        for id in 0..500u64 {
            let o = UncertainObject::new(
                id,
                ObjectPdf::UniformBall {
                    center: Point::new([
                        rng.gen_range(300.0..9700.0),
                        rng.gen_range(300.0..9700.0),
                    ]),
                    radius: 200.0,
                },
            );
            scan.insert(&o);
            tree.insert(&o);
        }
        let q = ProbRangeQuery::new(Rect::new([2000.0, 2000.0], [3500.0, 3500.0]), 0.4);
        let (mut a, s_scan) = scan.query(&q, RefineMode::Reference { tol: 1e-9 });
        let (mut b, s_tree) = tree.query(&q, RefineMode::Reference { tol: 1e-9 });
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            s_tree.node_reads < s_scan.node_reads,
            "U-tree ({}) must beat the scan ({}) on I/O",
            s_tree.node_reads,
            s_scan.node_reads
        );
    }

    #[test]
    fn scan_reads_every_page() {
        let mut scan = SeqScan::new(UCatalog::uniform(6));
        for id in 0..150u64 {
            scan.insert(&UncertainObject::new(
                id,
                ObjectPdf::UniformBall {
                    center: Point::new([100.0 + id as f64 * 50.0, 5000.0]),
                    radius: 20.0,
                },
            ));
        }
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.5);
        let (ids, stats) = scan.query(&q, RefineMode::Reference { tol: 1e-9 });
        assert!(ids.is_empty());
        let expected_pages = (150 + 40) / 41; // leaf capacity 41 in 2D
        assert_eq!(stats.node_reads as usize, expected_pages);
    }
}
