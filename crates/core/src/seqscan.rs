//! Sequential-scan baseline (the strategy sketched at the start of Sec 5):
//! CFBs of all objects are stored in a packed file; a query scans every
//! page, applies Observation 3 per object, and refines the survivors.
//!
//! The U-tree's job is to beat this on I/O by pruning subtrees; the filter
//! power per object is identical, which makes this the perfect ablation
//! baseline. It implements the same [`ProbIndex`] contract as the trees,
//! so the harness and applications can swap it in transparently.

use crate::api::{
    outcome_from_ctx, IndexBuilder, ProbIndex, Query, QueryError, QueryOutcome, RankOutcome,
    RankQuery,
};
use crate::catalog::UCatalog;
use crate::cfb::{fit_cfb_pair, CfbView};
use crate::entry::{UCodec, ULeafEntry};
use crate::filter::FilterOutcome;
use crate::object_codec::encode_object;
use crate::pcr::PcrSet;
use crate::query::{refine_ctx, QueryCtx};
use crate::tree::InsertStats;
use page_store::{f32_round_down, f32_round_up, ObjectHeap, PageFile, PageId, PageStore};
use rstar_base::NodeCodec;
use std::sync::Arc;
use std::time::Instant;
use uncertain_pdf::UncertainObject;

/// A flat file of CFB filter entries + the object heap.
pub struct SeqScan<const D: usize> {
    file: PageFile,
    pages: Vec<PageId>,
    /// Entries not yet flushed to a full page.
    open: Vec<ULeafEntry<D>>,
    codec: UCodec<D>,
    heap: ObjectHeap,
    catalog: Arc<UCatalog>,
    len: usize,
}

impl<const D: usize> SeqScan<D> {
    /// Fluent fallible construction (see [`IndexBuilder`]; the R*-tree
    /// tuning knob is ignored — a packed file has no tree structure).
    pub fn builder() -> IndexBuilder<D, Self> {
        IndexBuilder::new()
    }

    /// An empty scan file over the given catalog.
    pub fn new(catalog: UCatalog) -> Self {
        let catalog = Arc::new(catalog);
        Self {
            file: PageFile::new(),
            pages: Vec::new(),
            open: Vec::new(),
            codec: UCodec::new(catalog.clone()),
            heap: ObjectHeap::new(),
            catalog,
            len: 0,
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &UCatalog {
        &self.catalog
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Filter-file size in bytes (open tail counted as a page).
    pub fn size_bytes(&self) -> u64 {
        ((self.pages.len() + usize::from(!self.open.is_empty())) * page_store::PAGE_SIZE) as u64
    }

    /// Heap (object detail) size in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        self.heap.size_bytes()
    }

    /// Total filter-file page accesses (reads + writes) since the last
    /// [`Self::reset_io`].
    pub fn io_counters(&self) -> u64 {
        self.file.stats().total()
    }

    /// Resets the I/O counters (harness use).
    pub fn reset_io(&self) {
        self.file.stats().reset();
        self.heap.file().stats().reset();
    }

    /// Appends an object (packed pages, 100% fill — sequential files have
    /// no update locality to preserve). Returns the same cost breakdown as
    /// the tree inserts (no `lp` shortcut: the scan stores CFBs too).
    pub fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        let t0 = Instant::now();
        let pcrs = PcrSet::compute(&obj.pdf, &self.catalog);
        let pcr_nanos = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let cfbs = fit_cfb_pair(&pcrs, &self.catalog);
        let lp_nanos = t1.elapsed().as_nanos();
        let raw = obj.pdf.mbr();
        let mut mbr = raw;
        for i in 0..D {
            mbr.min[i] = f32_round_down(raw.min[i]);
            mbr.max[i] = f32_round_up(raw.max[i]);
        }
        let addr = self
            .heap
            .insert(&encode_object(obj))
            // xlint: allow(panic-freedom) -- invariant: in-memory heap cannot fail
            .expect("in-memory heap cannot fail");
        let entry = ULeafEntry::new(cfbs, mbr, addr, obj.id, &self.catalog);
        let reads0 = self.file.stats().reads();
        let writes0 = self.file.stats().writes();
        self.open.push(entry);
        self.len += 1;
        if self.open.len() == self.codec.leaf_capacity() {
            self.flush_page();
        }
        InsertStats {
            pcr_nanos,
            lp_nanos,
            io_reads: self.file.stats().reads() - reads0,
            io_writes: self.file.stats().writes() - writes0,
        }
    }

    /// Deletes an object by id. A packed file has no search structure, so
    /// the whole file is scanned and repacked — the honest sequential-file
    /// deletion cost the trees are meant to beat.
    pub fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        let mut all: Vec<ULeafEntry<D>> = Vec::with_capacity(self.len);
        for &page in &self.pages {
            all.extend(self.codec.decode_leaf(self.file.read(page)));
        }
        all.extend(self.open.iter().cloned());
        // A miss stays read-only: the scan above is the whole deletion
        // search cost; nothing is repacked.
        let Some(pos) = all.iter().position(|e| e.id == obj.id) else {
            return false;
        };
        let removed = all.remove(pos);
        self.heap
            .remove(removed.addr)
            // xlint: allow(panic-freedom) -- invariant: in-memory heap cannot fail
            .expect("in-memory heap cannot fail");
        self.rebuild_from(all);
        true
    }

    /// Repacks `entries` into full pages + open tail.
    fn rebuild_from(&mut self, entries: Vec<ULeafEntry<D>>) {
        for page in self.pages.drain(..) {
            self.file.release(page);
        }
        self.len = entries.len();
        let cap = self.codec.leaf_capacity();
        self.open = Vec::new();
        for chunk in entries.chunks(cap) {
            if chunk.len() == cap {
                // xlint: allow(io-fallibility, panic-freedom) -- invariant: in-memory file cannot fail
                let page = self.file.allocate().expect("in-memory file cannot fail");
                let mut bytes = Vec::with_capacity(page_store::PAGE_SIZE);
                self.codec.encode_leaf(chunk, &mut bytes);
                self.file
                    .write(page, &bytes)
                    // xlint: allow(io-fallibility, panic-freedom) -- invariant: in-memory file cannot fail
                    .expect("in-memory file cannot fail");
                self.pages.push(page);
            } else {
                self.open = chunk.to_vec();
            }
        }
    }

    fn flush_page(&mut self) {
        // xlint: allow(io-fallibility, panic-freedom) -- invariant: in-memory file cannot fail
        let page = self.file.allocate().expect("in-memory file cannot fail");
        let mut bytes = Vec::with_capacity(page_store::PAGE_SIZE);
        self.codec.encode_leaf(&self.open, &mut bytes);
        self.file
            .write(page, &bytes)
            // xlint: allow(io-fallibility, panic-freedom) -- invariant: in-memory file cannot fail
            .expect("in-memory file cannot fail");
        self.pages.push(page);
        self.open.clear();
    }

    /// Executes a prob-range query by scanning every page.
    ///
    /// Convenience over [`SeqScan::execute_with`] with a throwaway
    /// context.
    pub fn execute(&self, query: &Query<D>) -> QueryOutcome {
        self.execute_with(query, &mut QueryCtx::new())
    }

    /// [`SeqScan::try_execute_with`], panicking on storage failure (the
    /// scan file itself is in-memory; only the heap can fail).
    pub fn execute_with(&self, query: &Query<D>, ctx: &mut QueryCtx) -> QueryOutcome {
        self.try_execute_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a prob-range query with caller-owned scratch state (the
    /// scan is only read; see [`crate::UTree::execute_with`] for the
    /// shared-read contract). The
    /// [`QueryOptions`](crate::tree::QueryOptions) ablation switches are
    /// U-tree-specific and ignored here.
    pub fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        ctx.begin();
        let rq = query.region();
        let pq = query.threshold();
        let mode = query.refine_mode();
        // One catalog-lookup plan for the whole scan; per-entry filtering
        // is pure rectangle arithmetic.
        let plan = crate::filter::PreparedQuery::new(&self.catalog, rq, pq);
        let t0 = Instant::now();
        {
            let QueryCtx {
                stats,
                validated,
                candidates,
                ..
            } = &mut *ctx;
            let mut classify = |rec: &ULeafEntry<D>| {
                let view = CfbView {
                    pair: &rec.cfbs,
                    catalog: &self.catalog,
                };
                stats.visited += 1;
                match crate::filter::filter_object_planned(&view, &rec.mbr, &plan) {
                    FilterOutcome::Pruned => stats.pruned += 1,
                    FilterOutcome::Validated => {
                        stats.validated += 1;
                        validated.push(rec.id);
                    }
                    FilterOutcome::Candidate => candidates.push((rec.addr, rec.id)),
                }
            };
            for &page in &self.pages {
                let bytes = self.file.read(page);
                stats.node_reads += 1;
                for rec in self.codec.decode_leaf(bytes) {
                    classify(&rec);
                }
            }
            for rec in &self.open {
                classify(rec);
            }
            if !self.open.is_empty() {
                stats.node_reads += 1; // the partially filled tail page
            }
        }
        ctx.stats.filter_nanos = t0.elapsed().as_nanos();
        ctx.stats.candidates = ctx.candidates.len() as u64;
        ctx.stats.results = ctx.validated.len() as u64;

        let t1 = Instant::now();
        refine_ctx(&self.heap, rq, pq, mode, ctx)?;
        ctx.stats.refine_nanos = t1.elapsed().as_nanos();
        Ok(outcome_from_ctx(ctx))
    }

    /// Executes a top-k ranking query as the **refine-everything oracle**:
    /// every object whose MBR intersects `r_q` has its appearance
    /// probability computed (objects fully contained are pinned to 1, as
    /// on the trees), then the k best are reported. This is the baseline
    /// the bounded best-first traversals are measured against — identical
    /// answers, maximal `prob_computations`.
    pub fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        ctx.begin();
        let t0 = Instant::now();
        let rq = query.region();
        let k = query.k();
        let mode = query.refine_mode();
        {
            let QueryCtx {
                stats,
                candidates,
                ranked,
                ..
            } = &mut *ctx;
            let mut classify = |rec: &ULeafEntry<D>| {
                stats.visited += 1;
                if rq.contains_rect(&rec.mbr) {
                    stats.validated += 1;
                    crate::rank::push_hit(
                        ranked,
                        k,
                        crate::rank::RankedHit {
                            p: 1.0,
                            id: rec.id,
                            validated: true,
                        },
                    );
                } else if rec.mbr.intersects(rq) {
                    stats.candidates += 1;
                    candidates.push((rec.addr, rec.id));
                } else {
                    stats.pruned += 1;
                }
            };
            for &page in &self.pages {
                let bytes = self.file.read(page);
                stats.node_reads += 1;
                for rec in self.codec.decode_leaf(bytes) {
                    classify(&rec);
                }
            }
            for rec in &self.open {
                classify(rec);
            }
            if !self.open.is_empty() {
                stats.node_reads += 1;
            }
        }
        let cands = std::mem::take(&mut ctx.candidates);
        for &(addr, id) in &cands {
            let p = crate::query::refine_one(&self.heap, addr, id, rq, mode, ctx)?;
            if p > 0.0 {
                crate::rank::push_hit(
                    &mut ctx.ranked,
                    k,
                    crate::rank::RankedHit {
                        p,
                        id,
                        validated: false,
                    },
                );
            }
        }
        // Hand the buffer back so its capacity stays with the context.
        ctx.candidates = cands;
        Ok(crate::rank::finish(ctx, t0))
    }

    /// [`SeqScan::try_rank_topk_with`], panicking on storage failure.
    pub fn rank_topk_with(&self, query: &RankQuery<D>, ctx: &mut QueryCtx) -> RankOutcome {
        self.try_rank_topk_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SeqScan::rank_topk_with`] with a throwaway context.
    pub fn rank_topk(&self, query: &RankQuery<D>) -> RankOutcome {
        self.rank_topk_with(query, &mut QueryCtx::new())
    }
}

impl<const D: usize> ProbIndex<D> for SeqScan<D> {
    fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        SeqScan::insert(self, obj)
    }

    fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        SeqScan::delete(self, obj)
    }

    fn len(&self) -> usize {
        SeqScan::len(self)
    }

    fn index_size_bytes(&self) -> u64 {
        SeqScan::size_bytes(self)
    }

    fn heap_size_bytes(&self) -> u64 {
        SeqScan::heap_size_bytes(self)
    }

    fn io_counters(&self) -> u64 {
        SeqScan::io_counters(self)
    }

    fn reset_io(&self) {
        SeqScan::reset_io(self)
    }

    fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        SeqScan::try_execute_with(self, query, ctx)
    }

    fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        SeqScan::try_rank_topk_with(self, query, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ProbRangeQuery, QueryStats, RefineMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::Point;
    use uncertain_geom::Rect;
    use uncertain_pdf::ObjectPdf;

    fn run<const D: usize, I: ProbIndex<D>>(
        index: &I,
        q: ProbRangeQuery<D>,
        mode: RefineMode,
    ) -> (Vec<u64>, QueryStats) {
        let out = index.execute(&Query::from_prob_range(q, mode));
        (out.ids(), out.stats)
    }

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    #[test]
    fn seqscan_matches_utree_results_but_reads_everything() {
        let mut rng = SmallRng::seed_from_u64(61);
        let mut scan = SeqScan::new(UCatalog::uniform(8));
        let mut tree = crate::UTree::new(UCatalog::uniform(8));
        for id in 0..500u64 {
            let o = ball(
                id,
                rng.gen_range(300.0..9700.0),
                rng.gen_range(300.0..9700.0),
                200.0,
            );
            scan.insert(&o);
            tree.insert(&o);
        }
        let q = ProbRangeQuery::new(Rect::new([2000.0, 2000.0], [3500.0, 3500.0]), 0.4);
        let (mut a, s_scan) = run(&scan, q, RefineMode::reference(1e-9));
        let (mut b, s_tree) = run(&tree, q, RefineMode::reference(1e-9));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            s_tree.node_reads < s_scan.node_reads,
            "U-tree ({}) must beat the scan ({}) on I/O",
            s_tree.node_reads,
            s_scan.node_reads
        );
    }

    #[test]
    fn scan_reads_every_page() {
        let mut scan = SeqScan::new(UCatalog::uniform(6));
        for id in 0..150u64 {
            scan.insert(&ball(id, 100.0 + id as f64 * 50.0, 5000.0, 20.0));
        }
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.5);
        let (ids, stats) = run(&scan, q, RefineMode::reference(1e-9));
        assert!(ids.is_empty());
        let expected_pages = 150_usize.div_ceil(41); // leaf capacity 41 in 2D
        assert_eq!(stats.node_reads as usize, expected_pages);
        assert_eq!(stats.visited, 150, "a scan inspects every object");
    }

    #[test]
    fn delete_repacks_and_preserves_answers() {
        let mut scan = SeqScan::new(UCatalog::uniform(8));
        let objs: Vec<UncertainObject<2>> = (0..120u64)
            .map(|id| ball(id, 200.0 + id as f64 * 75.0, 5000.0, 30.0))
            .collect();
        for o in &objs {
            scan.insert(o);
        }
        assert_eq!(scan.len(), 120);
        // Delete every third object.
        for o in objs.iter().step_by(3) {
            assert!(scan.delete(o), "object {} must be deletable", o.id);
        }
        assert_eq!(scan.len(), 80);
        assert!(!scan.delete(&objs[0]), "double delete must fail");
        // Survivors all answer; removed ids never appear.
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]), 0.01);
        let (ids, _) = run(&scan, q, RefineMode::reference(1e-8));
        assert_eq!(ids.len(), 80);
        assert!(ids.iter().all(|id| id % 3 != 0));
    }

    #[test]
    fn insert_reports_cpu_breakdown() {
        let mut scan = SeqScan::<2>::new(UCatalog::uniform(8));
        let stats = scan.insert(&ball(1, 5000.0, 5000.0, 250.0));
        assert!(stats.pcr_nanos > 0, "PCR time must be measured");
        assert!(stats.lp_nanos > 0, "CFB fitting time must be measured");
    }
}
