//! Quadratic conservative functional boxes — the Sec 4.3 alternative.
//!
//! The paper: *"instead of using a linear form, one could represent
//! `o.cfb_out(p)` using a quadratic function of p so that `cfb_out(p_j)`
//! bounds `o.pcr(p_j)` more tightly. While this approach enhances the
//! pruning effect of Observation 3, it also increases the storage space of
//! CFBs, and adversely affects query efficiency."*
//!
//! This module implements that trade-off so it can be measured instead of
//! asserted: faces are `α − β·p − γ·p²` (12d floats per pair instead of
//! 8d), fitted by the same Simplex machinery with one extra column, and
//! pluggable into the shared [`filter_object`] via [`QuadCfbView`].
//!
//! [`filter_object`]: crate::filter::filter_object

use crate::catalog::UCatalog;
use crate::filter::PcrAccess;
use crate::pcr::PcrSet;
use simplex_lp::LinearProgram;
use uncertain_geom::Rect;

/// A quadratic box function: face `i∓` at `p` is
/// `alpha ∓-face − beta·p − gamma·p²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadCfb<const D: usize> {
    /// Value at `p = 0`.
    pub alpha: Rect<D>,
    /// Linear coefficients (lower faces).
    pub beta_lo: [f64; D],
    /// Linear coefficients (upper faces).
    pub beta_hi: [f64; D],
    /// Quadratic coefficients (lower faces).
    pub gamma_lo: [f64; D],
    /// Quadratic coefficients (upper faces).
    pub gamma_hi: [f64; D],
}

impl<const D: usize> QuadCfb<D> {
    /// Lower face on dimension `i` at probability `p`.
    #[inline]
    pub fn face_lo(&self, i: usize, p: f64) -> f64 {
        self.alpha.min[i] - self.beta_lo[i] * p - self.gamma_lo[i] * p * p
    }

    /// Upper face on dimension `i` at probability `p`.
    #[inline]
    pub fn face_hi(&self, i: usize, p: f64) -> f64 {
        self.alpha.max[i] - self.beta_hi[i] * p - self.gamma_hi[i] * p * p
    }

    /// The box at probability `p` (inversions collapse to the midpoint).
    pub fn eval(&self, p: f64) -> Rect<D> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.face_lo(i, p);
            max[i] = self.face_hi(i, p);
            if min[i] > max[i] {
                let mid = 0.5 * (min[i] + max[i]);
                min[i] = mid;
                max[i] = mid;
            }
        }
        Rect { min, max }
    }
}

/// An (outer, inner) quadratic pair: 12d floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadCfbPair<const D: usize> {
    /// Contains every `pcr(p_j)`.
    pub outer: QuadCfb<D>,
    /// Contained in every `pcr(p_j)`.
    pub inner: QuadCfb<D>,
}

/// Observation-3 access backed by quadratic CFBs.
pub struct QuadCfbView<'a, const D: usize> {
    /// The pair under evaluation.
    pub pair: &'a QuadCfbPair<D>,
    /// The catalog supplying `p_j`.
    pub catalog: &'a UCatalog,
}

impl<const D: usize> PcrAccess<D> for QuadCfbView<'_, D> {
    fn outer(&self, j: usize) -> Rect<D> {
        self.pair.outer.eval(self.catalog.value(j))
    }

    fn inner(&self, j: usize) -> Rect<D> {
        self.pair.inner.eval(self.catalog.value(j))
    }
}

/// Fits the optimal quadratic pair by per-dimension LPs minimising
/// (maximising) the summed margin — identical construction to Sec 4.4 with
/// the extra `γ·p²` column (`Q = Σ p_j²` joins `P = Σ p_j` in the
/// objective).
pub fn fit_quad_cfb_pair<const D: usize>(pcrs: &PcrSet<D>, catalog: &UCatalog) -> QuadCfbPair<D> {
    let m = catalog.len() as f64;
    let p_sum = catalog.sum();
    let q_sum: f64 = catalog.values().iter().map(|p| p * p).sum();
    let ps = catalog.values();

    let zero = QuadCfb {
        alpha: Rect::new([0.0; D], [0.0; D]),
        beta_lo: [0.0; D],
        beta_hi: [0.0; D],
        gamma_lo: [0.0; D],
        gamma_hi: [0.0; D],
    };
    let mut outer = zero;
    let mut inner = zero;

    for i in 0..D {
        let faces_lo: Vec<f64> = pcrs.rects().iter().map(|r| r.min[i]).collect();
        let faces_hi: Vec<f64> = pcrs.rects().iter().map(|r| r.max[i]).collect();

        // outer, lower: maximize m·α − P·β − Q·γ s.t. α − β·p − γ·p² <= pcr⁻.
        let mut lp = LinearProgram::maximize(vec![m, -p_sum, -q_sum]);
        for (p, c) in ps.iter().zip(&faces_lo) {
            lp.less_eq(vec![1.0, -p, -p * p], *c);
        }
        if let Ok(s) = lp.solve() {
            outer.alpha.min[i] = s.x[0];
            outer.beta_lo[i] = s.x[1];
            outer.gamma_lo[i] = s.x[2];
        } else {
            outer.alpha.min[i] = faces_lo.iter().cloned().fold(f64::INFINITY, f64::min);
        }

        // outer, upper: minimize m·α − P·β − Q·γ s.t. face >= pcr⁺.
        let mut lp = LinearProgram::maximize(vec![-m, p_sum, q_sum]);
        for (p, c) in ps.iter().zip(&faces_hi) {
            lp.greater_eq(vec![1.0, -p, -p * p], *c);
        }
        if let Ok(s) = lp.solve() {
            outer.alpha.max[i] = s.x[0];
            outer.beta_hi[i] = s.x[1];
            outer.gamma_hi[i] = s.x[2];
        } else {
            outer.alpha.max[i] = faces_hi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        }

        // inner: maximize summed margin with the Eq. 14-style coupling.
        // Variables [α⁻, β⁻, γ⁻, α⁺, β⁺, γ⁺].
        let mut lp = LinearProgram::maximize(vec![-m, p_sum, q_sum, m, -p_sum, -q_sum]);
        for ((p, lo), hi) in ps.iter().zip(&faces_lo).zip(&faces_hi) {
            let pp = p * p;
            lp.greater_eq(vec![1.0, -p, -pp, 0.0, 0.0, 0.0], *lo);
            lp.less_eq(vec![0.0, 0.0, 0.0, 1.0, -p, -pp], *hi);
            lp.less_eq(vec![1.0, -p, -pp, -1.0, *p, pp], 0.0);
        }
        match lp.solve() {
            Ok(s) => {
                inner.alpha.min[i] = s.x[0];
                inner.beta_lo[i] = s.x[1];
                inner.gamma_lo[i] = s.x[2];
                inner.alpha.max[i] = s.x[3];
                inner.beta_hi[i] = s.x[4];
                inner.gamma_hi[i] = s.x[5];
            }
            Err(_) => {
                let last = pcrs.rect(pcrs.len() - 1);
                let mid = 0.5 * (last.min[i] + last.max[i]);
                inner.alpha.min[i] = mid;
                inner.alpha.max[i] = mid;
            }
        }
    }

    // Exact feasibility repair (mirrors the linear fitter).
    for i in 0..D {
        let mut out_lo = 0.0f64;
        let mut out_hi = 0.0f64;
        let mut in_lo = 0.0f64;
        let mut in_hi = 0.0f64;
        for (j, &p) in ps.iter().enumerate() {
            let r = pcrs.rect(j);
            out_lo = out_lo.max(outer.face_lo(i, p) - r.min[i]);
            out_hi = out_hi.max(r.max[i] - outer.face_hi(i, p));
            in_lo = in_lo.max(r.min[i] - inner.face_lo(i, p));
            in_hi = in_hi.max(inner.face_hi(i, p) - r.max[i]);
        }
        outer.alpha.min[i] -= out_lo;
        outer.alpha.max[i] += out_hi;
        inner.alpha.min[i] += in_lo;
        inner.alpha.max[i] -= in_hi;
    }

    QuadCfbPair { outer, inner }
}

/// Summed margin of the outer approximation over the catalog — the
/// objective both fitters minimise, for tightness comparisons.
pub fn outer_margin_sum<const D: usize, A: PcrAccess<D>>(acc: &A, catalog: &UCatalog) -> f64 {
    (0..catalog.len()).map(|j| acc.outer(j).margin()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfb::{fit_cfb_pair, CfbView};
    use crate::filter::{filter_object, FilterOutcome};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn disk() -> ObjectPdf<2> {
        ObjectPdf::UniformBall {
            center: Point::new([5_000.0, 5_000.0]),
            radius: 250.0,
        }
    }

    #[test]
    fn quadratic_pair_brackets_pcrs() {
        let cat = UCatalog::uniform(10);
        let pcrs = PcrSet::compute(&disk(), &cat);
        let pair = fit_quad_cfb_pair(&pcrs, &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let out = pair.outer.eval(p);
            assert!(
                out.contains_rect(pcrs.rect(j)),
                "outer at p={p}: {out:?} vs {:?}",
                pcrs.rect(j)
            );
            let inn = pair.inner.eval(p);
            assert!(
                rstar_base::rect_covers_eps(pcrs.rect(j), &inn, 0.05),
                "inner at p={p}"
            );
        }
    }

    #[test]
    fn quadratic_outer_is_at_least_as_tight_as_linear() {
        // The fitters share the objective; the quadratic family contains
        // the linear one (γ = 0), so its optimum cannot be worse.
        let cat = UCatalog::uniform(10);
        for pdf in [
            disk(),
            ObjectPdf::ConGauBall {
                center: Point::new([3_000.0, 4_000.0]),
                radius: 250.0,
                sigma: 125.0,
            },
        ] {
            let pcrs = PcrSet::compute(&pdf, &cat);
            let lin = fit_cfb_pair(&pcrs, &cat);
            let quad = fit_quad_cfb_pair(&pcrs, &cat);
            let lin_margin = outer_margin_sum(
                &CfbView {
                    pair: &lin,
                    catalog: &cat,
                },
                &cat,
            );
            let quad_margin = outer_margin_sum(
                &QuadCfbView {
                    pair: &quad,
                    catalog: &cat,
                },
                &cat,
            );
            assert!(
                quad_margin <= lin_margin * 1.001,
                "quad {quad_margin} vs linear {lin_margin} for {pdf:?}"
            );
        }
    }

    #[test]
    fn quadratic_strictly_tighter_for_curved_pcr_faces() {
        // A disk's marginal quantile is curved in p, so the quadratic fit
        // must strictly beat the linear one on summed margin.
        let cat = UCatalog::uniform(12);
        let pcrs = PcrSet::compute(&disk(), &cat);
        let lin = fit_cfb_pair(&pcrs, &cat);
        let quad = fit_quad_cfb_pair(&pcrs, &cat);
        let lm = outer_margin_sum(
            &CfbView {
                pair: &lin,
                catalog: &cat,
            },
            &cat,
        );
        let qm = outer_margin_sum(
            &QuadCfbView {
                pair: &quad,
                catalog: &cat,
            },
            &cat,
        );
        assert!(
            qm < lm * 0.995,
            "expected >0.5% tightening, got {qm} vs {lm}"
        );
    }

    #[test]
    fn quadratic_filter_is_sound_and_no_weaker() {
        let cat = UCatalog::uniform(8);
        let pdf = disk();
        let pcrs = PcrSet::compute(&pdf, &cat);
        let lin = fit_cfb_pair(&pcrs, &cat);
        let quad = fit_quad_cfb_pair(&pcrs, &cat);
        let mbr = pdf.mbr();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lin_decided = 0;
        let mut quad_decided = 0;
        for _ in 0..400 {
            let cx = rng.gen_range(4_000.0..6_000.0);
            let cy = rng.gen_range(4_000.0..6_000.0);
            let side = rng.gen_range(100.0..1_200.0);
            let rq = Rect::cube(&Point::new([cx, cy]), side);
            let pq = rng.gen_range(0.05..0.95);
            let truth = uncertain_pdf::appearance_reference(&pdf, &rq, 1e-7);
            let lv = filter_object(
                &CfbView {
                    pair: &lin,
                    catalog: &cat,
                },
                &mbr,
                &cat,
                &rq,
                pq,
            );
            let qv = filter_object(
                &QuadCfbView {
                    pair: &quad,
                    catalog: &cat,
                },
                &mbr,
                &cat,
                &rq,
                pq,
            );
            for (name, v) in [("linear", lv), ("quad", qv)] {
                match v {
                    FilterOutcome::Pruned => {
                        assert!(truth < pq + 2e-3, "{name} pruned P={truth} pq={pq}")
                    }
                    FilterOutcome::Validated => {
                        assert!(truth > pq - 2e-3, "{name} validated P={truth} pq={pq}")
                    }
                    FilterOutcome::Candidate => {}
                }
            }
            lin_decided += (lv != FilterOutcome::Candidate) as u32;
            quad_decided += (qv != FilterOutcome::Candidate) as u32;
        }
        assert!(
            quad_decided as f64 >= lin_decided as f64 * 0.98,
            "quadratic decided {quad_decided}, linear {lin_decided}"
        );
    }

    #[test]
    fn storage_trade_off_is_12d_vs_8d() {
        // The Sec 4.3 cost: 12d floats per pair instead of 8d.
        assert_eq!(
            std::mem::size_of::<QuadCfbPair<2>>(),
            12 * 2 * std::mem::size_of::<f64>()
        );
        assert_eq!(
            std::mem::size_of::<crate::cfb::CfbPair<2>>(),
            8 * 2 * std::mem::size_of::<f64>()
        );
    }
}
