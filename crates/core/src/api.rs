//! The backend-agnostic index API.
//!
//! The paper evaluates three interchangeable access methods — the U-tree,
//! U-PCR and a sequential scan — over one contract: answer probabilistic
//! range queries, charge I/O and probability computations. This module
//! makes that contract a first-class, typed API:
//!
//! * [`ProbIndex`] — the trait all three structures implement
//!   (insert / delete / size / I/O accounting / query execution);
//! * [`Query`] + [`QueryBuilder`] — a fluent, validated query description:
//!   `Query::range(rect).threshold(0.7).refine(Refine::monte_carlo(1_000_000, 7)).run(&tree)?`;
//! * [`QueryOutcome`] — structured results carrying per-object
//!   [`Provenance`] (validated for free vs refined with its estimated
//!   probability) plus the [`QueryStats`] cost counters;
//! * [`IndexBuilder`] — fallible construction shared by every backend:
//!   `UTree::<2>::builder().catalog(UCatalog::uniform(10)).build()?`;
//! * [`IndexError`] / [`QueryError`] — typed errors replacing the seed's
//!   `assert!` panics.
//!
//! The old tuple-returning `query` methods remain as deprecated shims; see
//! `docs/API.md` for the migration table.

use crate::catalog::UCatalog;
use crate::query::{ProbRangeQuery, QueryCtx, QueryStats, RefineMode};
use crate::seqscan::SeqScan;
use crate::tree::{InsertStats, QueryOptions, UTree};
use crate::upcr::UPcrTree;
use rstar_base::TreeConfig;
use std::borrow::Borrow;
use std::fmt;
use std::marker::PhantomData;

use uncertain_geom::Rect;
use uncertain_pdf::UncertainObject;

/// Refinement-mode constructors under the name the fluent API uses
/// (`Refine::monte_carlo(..)`, `Refine::reference(..)`).
pub use crate::query::RefineMode as Refine;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Construction errors of catalogs and index builders.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IndexError {
    /// A catalog needs at least two values.
    CatalogTooSmall {
        /// How many values were supplied.
        len: usize,
    },
    /// Catalog values must be strictly ascending.
    CatalogNotAscending {
        /// First index where `values[index] >= values[index + 1]` fails to
        /// ascend.
        index: usize,
    },
    /// Catalog values must lie in `[0, 0.5]` (Sec 4.2: PCRs are only
    /// defined there; `pcr(p)` for `p > 0.5` would be empty).
    CatalogValueOutOfRange {
        /// Index of the offending value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The storage medium failed (a pread/pwrite error surfaced through
    /// the page-store layer during construction or bulk loading).
    ///
    /// Carries the rendered [`std::io::Error`]; the enum stays `Clone +
    /// PartialEq` for test ergonomics, which a raw `io::Error` would
    /// forbid.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::CatalogTooSmall { len } => {
                write!(f, "a catalog needs at least two values (got {len})")
            }
            IndexError::CatalogNotAscending { index } => {
                write!(
                    f,
                    "catalog values must be strictly ascending (violated at index {index})"
                )
            }
            IndexError::CatalogValueOutOfRange { index, value } => {
                write!(
                    f,
                    "catalog values must lie in [0, 0.5] (value {value} at index {index})"
                )
            }
            IndexError::Io { message } => {
                write!(f, "index storage I/O failed: {message}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Validation errors of query descriptions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// The probability threshold must lie in `[0, 1]`.
    ThresholdOutOfRange {
        /// The offending threshold.
        threshold: f64,
    },
    /// The builder was run without `.threshold(..)`.
    MissingThreshold,
    /// The search region is inverted (`min > max`) in some dimension.
    EmptyRegion {
        /// First dimension where `min > max`.
        dim: usize,
    },
    /// The search region contains a NaN or infinite coordinate.
    NonFiniteRegion {
        /// First dimension with a non-finite bound.
        dim: usize,
    },
    /// A ranking query was built with `k = 0`.
    ZeroK,
    /// A Monte-Carlo refinement mode was requested with `n1 = 0` samples
    /// (Eq. 3 has no defined answer without samples).
    ZeroSampleCount,
    /// The storage medium failed while the query was executing (a node or
    /// heap pread surfaced an error through the page-store layer).
    ///
    /// Carries the rendered [`std::io::Error`] so the enum stays `Clone +
    /// PartialEq`.
    Io {
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> Self {
        QueryError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ThresholdOutOfRange { threshold } => {
                write!(
                    f,
                    "probability threshold must lie in [0, 1] (got {threshold})"
                )
            }
            QueryError::MissingThreshold => {
                write!(f, "query built without a probability threshold")
            }
            QueryError::EmptyRegion { dim } => {
                write!(f, "search region has min > max in dimension {dim}")
            }
            QueryError::NonFiniteRegion { dim } => {
                write!(f, "search region has a non-finite bound in dimension {dim}")
            }
            QueryError::ZeroK => {
                write!(f, "a top-k ranking query needs k >= 1")
            }
            QueryError::ZeroSampleCount => {
                write!(f, "Monte-Carlo refinement needs a sample count n1 >= 1")
            }
            QueryError::Io { message } => {
                write!(f, "query storage I/O failed: {message}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The one region check every construction route shares: finite bounds
/// first (NaN would make the `min > max` comparison lie), then
/// orientation. Used by [`ProbRangeQuery::try_new`], [`QueryBuilder::build`]
/// and [`RankBuilder::build`].
pub(crate) fn validate_region<const D: usize>(region: &Rect<D>) -> Result<(), QueryError> {
    for dim in 0..D {
        if !region.min[dim].is_finite() || !region.max[dim].is_finite() {
            return Err(QueryError::NonFiniteRegion { dim });
        }
        if region.min[dim] > region.max[dim] {
            return Err(QueryError::EmptyRegion { dim });
        }
    }
    Ok(())
}

/// Both fluent builders reject a zero-sample Monte-Carlo mode up front, so
/// the refinement step's `MonteCarlo::new` never has to panic on a
/// builder-validated query.
pub(crate) fn validate_refine(refine: &RefineMode) -> Result<(), QueryError> {
    if matches!(refine, RefineMode::MonteCarlo { n1: 0, .. }) {
        return Err(QueryError::ZeroSampleCount);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Query description
// ---------------------------------------------------------------------------

/// A fully validated probabilistic range query: region, threshold,
/// refinement mode and ablation options.
///
/// Built with [`Query::range`]; executed with [`QueryBuilder::run`] or
/// [`ProbIndex::execute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query<const D: usize> {
    region: Rect<D>,
    threshold: f64,
    refine: RefineMode,
    options: QueryOptions,
}

impl<const D: usize> Query<D> {
    /// Starts a fluent query over the given search region.
    pub fn range(region: Rect<D>) -> QueryBuilder<D> {
        QueryBuilder {
            region,
            threshold: None,
            refine: RefineMode::default(),
            options: QueryOptions::default(),
        }
    }

    /// Adopts an already-validated [`ProbRangeQuery`] (e.g. from a
    /// pre-generated workload) with the given refinement mode.
    pub fn from_prob_range(q: ProbRangeQuery<D>, refine: RefineMode) -> Self {
        Query {
            region: q.region,
            threshold: q.threshold,
            refine,
            options: QueryOptions::default(),
        }
    }

    /// Replaces the ablation options (used by the filter-component study).
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// The search region `r_q`.
    pub fn region(&self) -> &Rect<D> {
        &self.region
    }

    /// The probability threshold `p_q`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// How candidate probabilities are evaluated during refinement.
    pub fn refine_mode(&self) -> RefineMode {
        self.refine
    }

    /// The ablation switches.
    pub fn options(&self) -> QueryOptions {
        self.options
    }

    /// The `(r_q, p_q)` pair as the paper's query type.
    pub fn prob_range(&self) -> ProbRangeQuery<D> {
        ProbRangeQuery {
            region: self.region,
            threshold: self.threshold,
        }
    }
}

/// Fluent builder returned by [`Query::range`].
#[derive(Debug, Clone, Copy)]
pub struct QueryBuilder<const D: usize> {
    region: Rect<D>,
    threshold: Option<f64>,
    refine: RefineMode,
    options: QueryOptions,
}

impl<const D: usize> QueryBuilder<D> {
    /// Sets the probability threshold `p_q ∈ [0, 1]` (required).
    pub fn threshold(mut self, p_q: f64) -> Self {
        self.threshold = Some(p_q);
        self
    }

    /// Sets the refinement mode (default: the paper's Monte-Carlo
    /// estimator with n₁ = 10⁶).
    pub fn refine(mut self, refine: RefineMode) -> Self {
        self.refine = refine;
        self
    }

    /// Sets the ablation options (default: all filter components on).
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Turns the range query into a **top-k ranking query**: instead of a
    /// probability threshold, report the `k` objects with the highest
    /// appearance probability in the region, ordered. Only the region and
    /// the refinement mode carry over: a threshold set so far is dropped
    /// (ranking has none), and so are [`QueryOptions`] — the ablation
    /// switches configure the threshold filter rules, which the bounded
    /// best-first traversal does not run.
    pub fn top(self, k: usize) -> RankBuilder<D> {
        RankBuilder {
            region: self.region,
            k,
            refine: self.refine,
        }
    }

    /// Validates the description into a [`Query`].
    pub fn build(self) -> Result<Query<D>, QueryError> {
        let threshold = self.threshold.ok_or(QueryError::MissingThreshold)?;
        // Region + threshold validation is shared with direct
        // `ProbRangeQuery::try_new` construction — one path, one rulebook.
        let q = ProbRangeQuery::try_new(self.region, threshold)?;
        validate_refine(&self.refine)?;
        Ok(Query {
            region: q.region,
            threshold: q.threshold,
            refine: self.refine,
            options: self.options,
        })
    }

    /// Builds and executes against any [`ProbIndex`]. Both validation
    /// failures and storage I/O failures surface here as [`QueryError`]
    /// (the fluent path never panics on a sick disk).
    pub fn run<I: ProbIndex<D> + ?Sized>(self, index: &I) -> Result<QueryOutcome, QueryError> {
        index.try_execute(&self.build()?)
    }
}

// ---------------------------------------------------------------------------
// Ranking queries
// ---------------------------------------------------------------------------

/// A validated probabilistic **top-k ranking query**: report the `k`
/// objects with the highest appearance probability in `region`, ordered by
/// probability (descending, ties by ascending id).
///
/// Built with [`Query::range`]`(..).top(k)`; executed with
/// [`RankBuilder::run`] or [`ProbIndex::rank_topk`]. Objects whose
/// appearance probability is 0 never rank, so the answer may hold fewer
/// than `k` matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankQuery<const D: usize> {
    region: Rect<D>,
    k: usize,
    refine: RefineMode,
}

impl<const D: usize> RankQuery<D> {
    /// The search region `r_q`.
    pub fn region(&self) -> &Rect<D> {
        &self.region
    }

    /// How many objects to report.
    pub fn k(&self) -> usize {
        self.k
    }

    /// How candidate probabilities are evaluated during refinement.
    pub fn refine_mode(&self) -> RefineMode {
        self.refine
    }
}

/// Fluent builder returned by [`QueryBuilder::top`].
#[derive(Debug, Clone, Copy)]
pub struct RankBuilder<const D: usize> {
    region: Rect<D>,
    k: usize,
    refine: RefineMode,
}

impl<const D: usize> RankBuilder<D> {
    /// Sets the refinement mode (default: the paper's Monte-Carlo
    /// estimator with n₁ = 10⁶; ranking seeds it **per object**, see
    /// `docs/API.md` "Ranking queries").
    pub fn refine(mut self, refine: RefineMode) -> Self {
        self.refine = refine;
        self
    }

    /// Validates the description into a [`RankQuery`].
    pub fn build(self) -> Result<RankQuery<D>, QueryError> {
        validate_region(&self.region)?;
        if self.k == 0 {
            return Err(QueryError::ZeroK);
        }
        validate_refine(&self.refine)?;
        Ok(RankQuery {
            region: self.region,
            k: self.k,
            refine: self.refine,
        })
    }

    /// Builds and executes against any [`ProbIndex`]. Both validation
    /// failures and storage I/O failures surface here as [`QueryError`].
    pub fn run<I: ProbIndex<D> + ?Sized>(self, index: &I) -> Result<RankOutcome, QueryError> {
        index.try_rank_topk(&self.build()?)
    }
}

/// One ranked object: its id, appearance probability, and how the
/// probability was certified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedMatch {
    /// The object's application-level identifier.
    pub id: u64,
    /// The appearance probability the match is ranked by.
    /// `Provenance::Validated` matches carry an exact `1.0`.
    pub p: f64,
    /// [`Provenance::Validated`] when the probability was pinned by the
    /// filter bounds (`r_q ⊇ mbr` ⇒ `p = 1`), [`Provenance::Refined`]
    /// when it was computed.
    pub provenance: Provenance,
}

/// Structured result of one ranking query: at most `k` matches ordered by
/// probability (descending, ties by ascending id) plus the cost counters.
///
/// In the stats, `candidates` counts objects whose bounds could not decide
/// them (they entered the ranking frontier); `prob_computations` counts
/// how many of those were actually refined — the gap is what the
/// PCR-bounded traversal saved over a refine-everything scan.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutcome {
    /// The ranked matches, best first.
    pub matches: Vec<RankedMatch>,
    /// The paper's cost metrics for this query.
    pub stats: QueryStats,
}

impl RankOutcome {
    /// The ranked ids, best first.
    pub fn ids(&self) -> Vec<u64> {
        self.matches.iter().map(|m| m.id).collect()
    }

    /// Number of ranked objects (≤ k).
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when nothing in the region has positive probability.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// True when `id` ranked.
    pub fn contains(&self, id: u64) -> bool {
        self.matches.iter().any(|m| m.id == id)
    }

    /// The lowest probability that still ranked (the implicit threshold
    /// this answer corresponds to).
    pub fn min_probability(&self) -> Option<f64> {
        self.matches.last().map(|m| m.p)
    }

    /// Iterates over the matches, best first.
    pub fn iter(&self) -> std::slice::Iter<'_, RankedMatch> {
        self.matches.iter()
    }
}

impl<'a> IntoIterator for &'a RankOutcome {
    type Item = &'a RankedMatch;
    type IntoIter = std::slice::Iter<'a, RankedMatch>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.iter()
    }
}

// ---------------------------------------------------------------------------
// Query results
// ---------------------------------------------------------------------------

/// How a query result was certified (per-object match provenance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Provenance {
    /// Reported by the validation rules without any probability
    /// computation (the paper's "directly reported" results).
    Validated,
    /// Survived refinement with the estimated appearance probability `p`.
    Refined {
        /// The appearance probability the refinement step computed.
        p: f64,
    },
}

/// One qualifying object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The object's application-level identifier.
    pub id: u64,
    /// How the match was certified.
    pub provenance: Provenance,
}

/// Structured result of one query: the matches (validated first, refined
/// after, mirroring execution order) plus the cost counters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The qualifying objects with their provenance.
    pub matches: Vec<Match>,
    /// The paper's cost metrics for this query.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// The qualifying ids, in execution order.
    pub fn ids(&self) -> Vec<u64> {
        self.matches.iter().map(|m| m.id).collect()
    }

    /// The qualifying ids, ascending (for set comparison).
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut ids = self.ids();
        ids.sort_unstable();
        ids
    }

    /// Number of qualifying objects.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when nothing qualified.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// True when `id` qualified.
    pub fn contains(&self, id: u64) -> bool {
        self.matches.iter().any(|m| m.id == id)
    }

    /// Matches certified for free by the validation rules.
    pub fn validated_count(&self) -> usize {
        self.matches
            .iter()
            .filter(|m| m.provenance == Provenance::Validated)
            .count()
    }

    /// Matches that needed a probability computation.
    pub fn refined_count(&self) -> usize {
        self.matches.len() - self.validated_count()
    }

    /// Iterates over the matches.
    pub fn iter(&self) -> std::slice::Iter<'_, Match> {
        self.matches.iter()
    }
}

impl<'a> IntoIterator for &'a QueryOutcome {
    type Item = &'a Match;
    type IntoIter = std::slice::Iter<'a, Match>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.iter()
    }
}

impl IntoIterator for QueryOutcome {
    type Item = Match;
    type IntoIter = std::vec::IntoIter<Match>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.into_iter()
    }
}

/// Assembles an outcome from the two result streams every backend's
/// context produces — validated ids (filter step) then refined `(id, p)`
/// pairs — draining the buffers so their capacity stays with the context
/// for the next query.
pub(crate) fn outcome_from_ctx(ctx: &mut QueryCtx) -> QueryOutcome {
    let mut matches = Vec::with_capacity(ctx.validated.len() + ctx.refined.len());
    matches.extend(ctx.validated.drain(..).map(|id| Match {
        id,
        provenance: Provenance::Validated,
    }));
    matches.extend(ctx.refined.drain(..).map(|(id, p)| Match {
        id,
        provenance: Provenance::Refined { p },
    }));
    QueryOutcome {
        matches,
        stats: ctx.stats,
    }
}

// ---------------------------------------------------------------------------
// The index trait
// ---------------------------------------------------------------------------

/// Anything that can maintain uncertain objects and answer probabilistic
/// range queries — the contract shared by [`UTree`], [`UPcrTree`] and
/// [`SeqScan`].
///
/// Object-safe (except [`ProbIndex::bulk_load`]), so heterogeneous
/// backends can sit behind `dyn ProbIndex<D>`.
pub trait ProbIndex<const D: usize> {
    /// Inserts an object; ids must be unique. Returns the update-cost
    /// breakdown.
    fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats;

    /// Deletes an object previously inserted (the caller supplies the same
    /// object; payloads are recomputed deterministically to locate it).
    /// Returns `true` when found.
    fn delete(&mut self, obj: &UncertainObject<D>) -> bool;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// True when no objects are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the filter structure in bytes (Table 1's metric).
    fn index_size_bytes(&self) -> u64;

    /// Size of the object-detail heap in bytes.
    fn heap_size_bytes(&self) -> u64;

    /// Total filter-structure page accesses (reads + writes) since the
    /// last [`ProbIndex::reset_io`].
    fn io_counters(&self) -> u64;

    /// Resets the I/O counters (harness use).
    fn reset_io(&self);

    /// Executes a validated query, returning matches with provenance and
    /// the cost counters, or a typed [`QueryError::Io`] when the storage
    /// medium fails mid-query.
    ///
    /// This is the **fallible primitive** every backend implements;
    /// [`ProbIndex::execute`] / [`ProbIndex::execute_with`] are
    /// panic-on-I/O-error conveniences over it (an in-memory backend
    /// cannot fail, so the panic is unreachable there).
    ///
    /// Queries only *read* the index (`&self` end-to-end): a shared
    /// reference can serve any number of threads at once when the backend
    /// is `Sync` (all in-repo backends are, on every storage backend).
    /// The context is reset on entry and its buffers are reused across
    /// calls — one context per worker thread is the intended pattern (see
    /// [`crate::engine::BatchExecutor`]).
    fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError>;

    /// [`ProbIndex::try_execute_with`] with a throwaway [`QueryCtx`].
    fn try_execute(&self, query: &Query<D>) -> Result<QueryOutcome, QueryError> {
        self.try_execute_with(query, &mut QueryCtx::new())
    }

    /// Executes a validated query, panicking if the storage medium fails
    /// (see [`ProbIndex::try_execute`] for the fallible surface). This
    /// convenience creates a throwaway [`QueryCtx`]; workloads running
    /// many queries should reuse one per thread via
    /// [`ProbIndex::execute_with`].
    fn execute(&self, query: &Query<D>) -> QueryOutcome {
        self.execute_with(query, &mut QueryCtx::new())
    }

    /// Executes a validated query using caller-owned per-query scratch
    /// state (stats, candidate buffers, traversal stack, refinement RNG),
    /// panicking if the storage medium fails (see
    /// [`ProbIndex::try_execute_with`] for the fallible surface).
    fn execute_with(&self, query: &Query<D>, ctx: &mut QueryCtx) -> QueryOutcome {
        self.try_execute_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a validated **top-k ranking query**: the `k` objects with
    /// the highest appearance probability in the region, ordered
    /// (descending probability, ties by ascending id). Returns a typed
    /// [`QueryError::Io`] when the storage medium fails mid-query.
    ///
    /// The tree backends run a best-first traversal over PCR-derived
    /// upper probability bounds with lazy refinement — a candidate's
    /// probability is only computed while its upper bound still beats the
    /// current k-th lower bound; [`crate::SeqScan`] is the
    /// refine-everything oracle. All backends return identical matches
    /// under a deterministic refinement mode.
    ///
    /// Same concurrency contract as [`ProbIndex::try_execute_with`]:
    /// `&self` end-to-end, per-query state in the caller's [`QueryCtx`].
    fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError>;

    /// [`ProbIndex::try_rank_topk_with`] with a throwaway [`QueryCtx`].
    fn try_rank_topk(&self, query: &RankQuery<D>) -> Result<RankOutcome, QueryError> {
        self.try_rank_topk_with(query, &mut QueryCtx::new())
    }

    /// Executes a validated top-k ranking query, panicking if the storage
    /// medium fails (see [`ProbIndex::try_rank_topk`] for the fallible
    /// surface).
    fn rank_topk(&self, query: &RankQuery<D>) -> RankOutcome {
        self.rank_topk_with(query, &mut QueryCtx::new())
    }

    /// [`ProbIndex::rank_topk`] with caller-owned scratch state (the
    /// ranking frontier, bound buffers and result heap live in the
    /// context, so one context per worker thread serves batches of
    /// ranking queries without reallocation).
    fn rank_topk_with(&self, query: &RankQuery<D>, ctx: &mut QueryCtx) -> RankOutcome {
        self.try_rank_topk_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Loads every object from an iterator into the index, returning the
    /// accumulated [`InsertStats`]. Accepts owned or borrowed objects.
    ///
    /// The default is the plain insert loop; per-phase wall-clock
    /// (`pcr_nanos`, `lp_nanos`) and I/O counters accumulate each insert's
    /// breakdown **exactly once** — the aggregate equals the sum of the
    /// individual [`ProbIndex::insert`] stats, with no build-level clock
    /// layered on top of the per-insert clocks. [`crate::UTree`] and
    /// [`crate::UPcrTree`] override this with a Sort-Tile-Recursive bulk
    /// build when the index is empty (packed leaves, bottom-up levels,
    /// build-level timing measured once per phase).
    fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
        Self: Sized,
    {
        let mut acc = InsertStats::default();
        for obj in objs {
            acc += &self.insert(obj.borrow());
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

/// A backend constructible by [`IndexBuilder`]. Implemented by the three
/// structures; sealed against downstream implementations so the builder
/// surface can evolve.
pub trait IndexBackend<const D: usize>: ProbIndex<D> + Sized + sealed::Sealed {
    /// Human-readable backend name (diagnostics, harness tables).
    const NAME: &'static str;

    /// The paper's Sec 6.2 default catalog for this backend.
    fn default_catalog() -> UCatalog;

    #[doc(hidden)]
    fn from_parts(catalog: UCatalog, cfg: TreeConfig) -> Self;
}

mod sealed {
    pub trait Sealed {}
    impl<const D: usize, S: page_store::PageStore> Sealed for super::UTree<D, S> {}
    impl<const D: usize, S: page_store::PageStore> Sealed for super::UPcrTree<D, S> {}
    impl<const D: usize> Sealed for super::SeqScan<D> {}
}

impl<const D: usize> IndexBackend<D> for UTree<D> {
    const NAME: &'static str = "u-tree";

    fn default_catalog() -> UCatalog {
        UCatalog::paper_utree_default()
    }

    fn from_parts(catalog: UCatalog, cfg: TreeConfig) -> Self {
        UTree::with_config(catalog, cfg)
    }
}

impl<const D: usize> IndexBackend<D> for UPcrTree<D> {
    const NAME: &'static str = "u-pcr";

    fn default_catalog() -> UCatalog {
        // Sec 6.2 tuning: m = 9 in 2D, m = 10 in 3D.
        UCatalog::uniform(if D >= 3 { 10 } else { 9 })
    }

    fn from_parts(catalog: UCatalog, cfg: TreeConfig) -> Self {
        UPcrTree::with_config(catalog, cfg)
    }
}

impl<const D: usize> IndexBackend<D> for SeqScan<D> {
    const NAME: &'static str = "seq-scan";

    fn default_catalog() -> UCatalog {
        // Same filter power per object as the default U-tree.
        UCatalog::paper_utree_default()
    }

    fn from_parts(catalog: UCatalog, _cfg: TreeConfig) -> Self {
        // A packed sequential file has no R* tuning knobs.
        SeqScan::new(catalog)
    }
}

enum CatalogSpec {
    Ready(UCatalog),
    Values(Vec<f64>),
    Uniform(usize),
}

/// Fallible, fluent construction shared by all three backends:
///
/// ```
/// use utree::{ProbIndex, UCatalog, UTree};
///
/// let tree = UTree::<2>::builder()
///     .catalog(UCatalog::uniform(10))
///     .build()
///     .expect("valid catalog");
/// assert!(tree.is_empty());
///
/// // Invalid catalogs are typed errors, not panics:
/// let err = UTree::<2>::builder()
///     .catalog_values(vec![0.3, 0.1])
///     .build()
///     .err()
///     .unwrap();
/// assert!(err.to_string().contains("ascending"));
/// ```
pub struct IndexBuilder<const D: usize, B: IndexBackend<D>> {
    catalog: Option<CatalogSpec>,
    cfg: TreeConfig,
    _backend: PhantomData<fn() -> B>,
}

impl<const D: usize, B: IndexBackend<D>> Default for IndexBuilder<D, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, B: IndexBackend<D>> IndexBuilder<D, B> {
    /// An empty builder (backend defaults apply at [`IndexBuilder::build`]).
    pub fn new() -> Self {
        IndexBuilder {
            catalog: None,
            cfg: TreeConfig::default(),
            _backend: PhantomData,
        }
    }

    /// Uses an already-validated catalog.
    pub fn catalog(mut self, catalog: UCatalog) -> Self {
        self.catalog = Some(CatalogSpec::Ready(catalog));
        self
    }

    /// Uses raw catalog values, validated at build time.
    pub fn catalog_values(mut self, values: Vec<f64>) -> Self {
        self.catalog = Some(CatalogSpec::Values(values));
        self
    }

    /// Uses the evenly spaced catalog `{0, 0.5/(m−1), …, 0.5}`.
    pub fn uniform_catalog(mut self, m: usize) -> Self {
        self.catalog = Some(CatalogSpec::Uniform(m));
        self
    }

    /// Overrides the R*-tree tuning (ignored by the sequential scan).
    pub fn tree_config(mut self, cfg: TreeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Validates and constructs the backend. Without an explicit catalog,
    /// the backend's paper default (Sec 6.2) is used.
    pub fn build(self) -> Result<B, IndexError> {
        let catalog = match self.catalog {
            None => B::default_catalog(),
            Some(CatalogSpec::Ready(c)) => c,
            Some(CatalogSpec::Values(values)) => UCatalog::try_new(values)?,
            Some(CatalogSpec::Uniform(m)) => UCatalog::try_uniform(m)?,
        };
        Ok(B::from_parts(catalog, self.cfg))
    }

    /// Validates, constructs, and **bulk-loads** the backend in one step:
    /// `UTree::builder().uniform_catalog(8).bulk(&objs)?`. On the tree
    /// backends the freshly built (empty) index takes the packed STR
    /// build; on [`crate::SeqScan`] the default insert loop runs.
    pub fn bulk<It>(self, objs: It) -> Result<B, IndexError>
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        let mut backend = self.build()?;
        backend.bulk_load(objs);
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    #[test]
    fn builder_rejects_bad_catalogs_with_typed_errors() {
        let e = UTree::<2>::builder()
            .catalog_values(vec![0.1])
            .build()
            .err()
            .unwrap();
        assert_eq!(e, IndexError::CatalogTooSmall { len: 1 });

        let e = UTree::<2>::builder()
            .catalog_values(vec![0.0, 0.2, 0.2])
            .build()
            .err()
            .unwrap();
        assert_eq!(e, IndexError::CatalogNotAscending { index: 1 });

        let e = UPcrTree::<2>::builder()
            .catalog_values(vec![0.0, 0.7])
            .build()
            .err()
            .unwrap();
        assert_eq!(
            e,
            IndexError::CatalogValueOutOfRange {
                index: 1,
                value: 0.7
            }
        );

        let e = SeqScan::<2>::builder()
            .uniform_catalog(1)
            .build()
            .err()
            .unwrap();
        assert_eq!(e, IndexError::CatalogTooSmall { len: 1 });
    }

    #[test]
    fn builder_defaults_follow_the_paper() {
        let t = UTree::<2>::builder().build().unwrap();
        assert_eq!(t.catalog().len(), 15);
        let p2 = UPcrTree::<2>::builder().build().unwrap();
        assert_eq!(p2.catalog().len(), 9);
        let p3 = UPcrTree::<3>::builder().build().unwrap();
        assert_eq!(p3.catalog().len(), 10);
    }

    #[test]
    fn query_builder_validates() {
        let rect = Rect::new([0.0, 0.0], [10.0, 10.0]);
        assert_eq!(
            Query::range(rect).build().unwrap_err(),
            QueryError::MissingThreshold
        );
        assert_eq!(
            Query::range(rect).threshold(1.5).build().unwrap_err(),
            QueryError::ThresholdOutOfRange { threshold: 1.5 }
        );
        let inverted = Rect {
            min: [5.0, 0.0],
            max: [0.0, 10.0],
        };
        assert_eq!(
            Query::range(inverted).threshold(0.5).build().unwrap_err(),
            QueryError::EmptyRegion { dim: 0 }
        );
        let non_finite = Rect {
            min: [0.0, f64::NAN],
            max: [10.0, 10.0],
        };
        assert_eq!(
            Query::range(non_finite).threshold(0.5).build().unwrap_err(),
            QueryError::NonFiniteRegion { dim: 1 }
        );
        let q = Query::range(rect)
            .threshold(0.5)
            .refine(Refine::reference(1e-8))
            .build()
            .unwrap();
        assert_eq!(q.threshold(), 0.5);
        assert_eq!(q.refine_mode(), Refine::Reference { tol: 1e-8 });
    }

    #[test]
    fn builders_reject_zero_sample_monte_carlo() {
        // Regression: `MonteCarlo::new(0)` used to be an assert! panic hit
        // mid-refinement; the builders now reject the mode up front with
        // the typed error every other validation failure uses.
        let rect = Rect::new([0.0, 0.0], [10.0, 10.0]);
        assert_eq!(
            Query::range(rect)
                .threshold(0.5)
                .refine(Refine::monte_carlo(0, 7))
                .build()
                .unwrap_err(),
            QueryError::ZeroSampleCount
        );
        assert_eq!(
            Query::range(rect)
                .top(3)
                .refine(Refine::monte_carlo(0, 7))
                .build()
                .unwrap_err(),
            QueryError::ZeroSampleCount
        );
        // n1 >= 1 passes, and the typed path exists on the estimator too.
        assert!(Query::range(rect)
            .threshold(0.5)
            .refine(Refine::monte_carlo(1, 7))
            .build()
            .is_ok());
        assert!(uncertain_pdf::MonteCarlo::try_new(0).is_err());
    }

    #[test]
    fn outcome_carries_provenance() {
        let mut tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        tree.insert(&ball(7, 500.0, 500.0, 100.0));
        tree.insert(&ball(8, 620.0, 500.0, 100.0));
        // Fully containing query: both validated, no integration.
        let out = Query::range(Rect::new([300.0, 300.0], [800.0, 700.0]))
            .threshold(0.95)
            .refine(Refine::reference(1e-8))
            .run(&tree)
            .unwrap();
        assert_eq!(out.sorted_ids(), vec![7, 8]);
        assert_eq!(out.validated_count(), 2);
        assert_eq!(out.refined_count(), 0);
        assert_eq!(out.stats.prob_computations, 0);

        // Half-covering query: refined matches carry their probability.
        let out = Query::range(Rect::new([400.0, 300.0], [500.0, 700.0]))
            .threshold(0.2)
            .refine(Refine::reference(1e-8))
            .run(&tree)
            .unwrap();
        for m in &out {
            if let Provenance::Refined { p } = m.provenance {
                assert!((0.2..=1.0).contains(&p), "match {m:?} below threshold");
            }
        }
        assert_eq!(out.len(), out.validated_count() + out.refined_count());
    }

    #[test]
    fn dyn_prob_index_is_object_safe() {
        let mut tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        tree.insert(&ball(1, 100.0, 100.0, 20.0));
        let as_dyn: &dyn ProbIndex<2> = &tree;
        assert_eq!(as_dyn.len(), 1);
        let out = Query::range(Rect::new([0.0, 0.0], [200.0, 200.0]))
            .threshold(0.5)
            .refine(Refine::reference(1e-8))
            .run(as_dyn)
            .unwrap();
        assert_eq!(out.ids(), vec![1]);
    }
}
