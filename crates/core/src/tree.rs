//! The U-tree (paper Sec 5): a fully dynamic, disk-based index for
//! multi-dimensional uncertain data with arbitrary pdfs.

use crate::api::{
    outcome_from_ctx, IndexBuilder, ProbIndex, Query, QueryError, QueryOutcome, RankOutcome,
    RankQuery,
};
use crate::catalog::UCatalog;
use crate::cfb::{fit_cfb_pair, CfbView};
use crate::entry::{UCodec, ULeafEntry};
use crate::filter::FilterOutcome;
use crate::key::{UKey, UMetrics};
use crate::object_codec::encode_object;
use crate::pcr::PcrSet;
use crate::persist;
use crate::query::{refine_ctx, QueryCtx};
use page_store::{f32_round_down, f32_round_up, CommitReceipt, ObjectHeap, PageFile, PageStore};
use rstar_base::{str_order_by, LeafRecord, NodeCodec, RStarTreeBase, TreeConfig, TreeStats};
use std::borrow::Borrow;
use std::io;
use std::ops::AddAssign;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use uncertain_geom::Rect;
use uncertain_pdf::{ObjectPdf, UncertainObject};

/// Ablation switches for query execution
/// ([`crate::api::QueryBuilder::options`]).
///
/// Disabling a component never changes the *result set* (everything not
/// decided by a filter goes through exact refinement) — only the cost.
/// The U-tree honours every switch; U-PCR and the sequential scan have no
/// Observation-4 descent and ignore the options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Apply Observation 4 at intermediate entries (off = plain R-tree
    /// `e.MBR(p₁)` intersection pruning).
    pub observation4: bool,
    /// Apply the Observation-3 leaf rules at all (off = MBR intersection
    /// only; every intersecting object becomes a refinement candidate).
    pub leaf_filter: bool,
    /// Allow the validation rules to report results without refinement
    /// (off = validated objects are demoted to candidates).
    pub validation: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            observation4: true,
            leaf_filter: true,
            validation: true,
        }
    }
}

/// Cost breakdown of one insertion (Fig 11a's CPU components), or — via
/// [`crate::api::ProbIndex::bulk_load`] — the accumulated breakdown of a
/// batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InsertStats {
    /// Nanoseconds computing the PCRs (marginal CDF inversion).
    pub pcr_nanos: u128,
    /// Nanoseconds in the Simplex CFB fitting.
    pub lp_nanos: u128,
    /// Index page reads caused by the insertion.
    pub io_reads: u64,
    /// Index page writes caused by the insertion.
    pub io_writes: u64,
}

impl AddAssign<&InsertStats> for InsertStats {
    fn add_assign(&mut self, other: &InsertStats) {
        self.pcr_nanos += other.pcr_nanos;
        self.lp_nanos += other.lp_nanos;
        self.io_reads += other.io_reads;
        self.io_writes += other.io_writes;
    }
}

/// The U-tree: an R*-tree derivative over conservative functional boxes,
/// plus the object-detail heap file its leaf entries point into.
///
/// Construction goes through [`UTree::builder`] (shared with the other
/// backends); queries through the fluent [`Query`] API. Both are available
/// generically via the [`ProbIndex`] trait.
///
/// The tree is generic over its [`PageStore`] `S`: the default is the
/// in-memory [`PageFile`]; [`UTree::open`] yields a disk-backed tree
/// (alias `DiskUTree`) reading a [`UTree::save`]d index cold from disk
/// through a bounded LRU cache over a crash-safe write-ahead log —
/// updates become durable via [`UTree::commit`]/`flush`, and reopening
/// after a crash recovers a committed prefix. Query results are
/// byte-identical across backends — only the I/O cost model changes.
///
/// ```
/// use utree::{ProbIndex, Provenance, Query, Refine, UTree};
/// use uncertain_geom::{Point, Rect};
/// use uncertain_pdf::{ObjectPdf, UncertainObject};
///
/// let mut tree = UTree::<2>::builder().uniform_catalog(6).build()?;
/// tree.insert(&UncertainObject::new(
///     1,
///     ObjectPdf::UniformBall { center: Point::new([50.0, 50.0]), radius: 10.0 },
/// ));
///
/// let outcome = Query::range(Rect::new([30.0, 30.0], [70.0, 70.0]))
///     .threshold(0.9)
///     .refine(Refine::reference(1e-8))
///     .run(&tree)?;
/// assert_eq!(outcome.ids(), vec![1]);
/// // The containing query certifies the object without integration:
/// assert_eq!(outcome.matches[0].provenance, Provenance::Validated);
/// assert_eq!(outcome.stats.prob_computations, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct UTree<const D: usize, S: PageStore = PageFile> {
    tree: RStarTreeBase<D, UMetrics<D>, ULeafEntry<D>, UCodec<D>, S>,
    heap: ObjectHeap<S>,
    catalog: Arc<UCatalog>,
}

impl<const D: usize> UTree<D> {
    /// Fluent fallible construction (see [`IndexBuilder`]).
    pub fn builder() -> IndexBuilder<D, Self> {
        IndexBuilder::new()
    }

    /// An empty in-memory U-tree over the given catalog.
    pub fn new(catalog: UCatalog) -> Self {
        Self::with_config(catalog, TreeConfig::default())
    }

    /// An empty in-memory U-tree with explicit R* tuning.
    pub fn with_config(catalog: UCatalog, cfg: TreeConfig) -> Self {
        let catalog = Arc::new(catalog);
        let metrics = UMetrics::new(catalog.clone());
        let codec = UCodec::new(catalog.clone());
        Self {
            tree: RStarTreeBase::new(metrics, codec, cfg),
            heap: ObjectHeap::new(),
            catalog,
        }
    }
}

impl<const D: usize, S: PageStore> UTree<D, S> {
    /// An empty U-tree over caller-supplied node and heap stores (the
    /// epoch layer builds its copy-on-write trees through this).
    pub fn with_stores(catalog: UCatalog, cfg: TreeConfig, node_store: S, heap_store: S) -> Self {
        let catalog = Arc::new(catalog);
        let metrics = UMetrics::new(catalog.clone());
        let codec = UCodec::new(catalog.clone());
        Self {
            tree: RStarTreeBase::with_store(node_store, metrics, codec, cfg)
                // xlint: allow(panic-freedom) -- invariant: node store failed while formatting an empty tree
                .expect("node store failed while formatting an empty tree"),
            heap: ObjectHeap::with_store(heap_store),
            catalog,
        }
    }
}

impl<const D: usize, S: PageStore + Clone> Clone for UTree<D, S> {
    /// Clones the tree *structure and pages*; on a copy-on-write store
    /// (`ShadowPageFile`) this is the cheap epoch fork — shared pages,
    /// private superstructure. I/O counters of the clone's stores follow
    /// the store's own `Clone` semantics.
    fn clone(&self) -> Self {
        Self {
            tree: self.tree.clone(),
            heap: self.heap.clone(),
            catalog: Arc::clone(&self.catalog),
        }
    }
}

impl<const D: usize> UTree<D, persist::DiskStore> {
    /// Opens a [`UTree::save`]d index directory, reading node and heap
    /// pages from disk through two LRU buffer pools of `buffer_pages`
    /// frames each.
    ///
    /// The returned tree answers queries byte-identically to the one that
    /// was saved; its logical I/O counters behave exactly like the
    /// in-memory tree's, while the pools' backend counters report the
    /// physical reads that actually hit the disk files.
    ///
    /// Pool latching is automatic (small pools exact-LRU, large pools
    /// striped for concurrent readers); [`UTree::open_with_shards`] pins
    /// it.
    pub fn open<P: AsRef<Path>>(dir: P, buffer_pages: usize) -> io::Result<Self> {
        Self::open_parts(dir, buffer_pages, None)
    }

    /// [`UTree::open`] with an explicit buffer-pool shard count: `1` gives
    /// the exact global-LRU pool (the stack-algorithm baseline the paper's
    /// buffer experiments assume), larger values trade LRU exactness for
    /// reader parallelism.
    pub fn open_with_shards<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        shards: usize,
    ) -> io::Result<Self> {
        Self::open_parts(dir, buffer_pages, Some(shards))
    }

    fn open_parts<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        shards: Option<usize>,
    ) -> io::Result<Self> {
        let parts =
            persist::open_parts(dir.as_ref(), persist::KIND_UTREE, D, buffer_pages, shards)?;
        Ok(Self::from_opened_parts(parts))
    }

    /// Assembles a disk-backed tree from already-recovered parts — the
    /// tail of `open`, shared with the multi-index catalog (which recovers
    /// many segments against one log before assembling any tree).
    pub(crate) fn from_opened_parts(parts: persist::OpenedParts) -> Self {
        let metrics = UMetrics::new(parts.catalog.clone());
        let codec = UCodec::new(parts.catalog.clone());
        Self {
            tree: RStarTreeBase::from_raw_parts(
                parts.index,
                parts.meta.root,
                parts.meta.height,
                parts.meta.len,
                metrics,
                codec,
                parts.meta.cfg,
            ),
            heap: parts.heap,
            catalog: parts.catalog,
        }
    }

    /// Commits every update since the last commit as **one atomic WAL
    /// batch**: dirty index and heap pages, allocation changes and the
    /// tree metadata, sealed by a single commit marker — after a crash,
    /// recovery lands on a batch boundary, never between the index and its
    /// heap. Under a group-commit window ([`Self::set_group_commit`]) the
    /// fsync may be deferred; the receipt says whether this batch is
    /// durable yet. Uncommitted updates of a dropped tree roll back.
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        self.commit_inner(false)
    }

    /// [`Self::commit`] with a forced fsync: on return the batch is
    /// durable regardless of the group-commit window.
    pub fn flush(&mut self) -> io::Result<()> {
        self.commit_inner(true).map(|_| ())
    }

    fn commit_inner(&mut self, force_sync: bool) -> io::Result<CommitReceipt> {
        let meta = persist::encode_meta(&self.saved_meta());
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        let (receipt, durable) = {
            let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
            self.stage_commit(&mut w)?;
            w.append_meta(&meta);
            let receipt = w.commit()?;
            if force_sync && !receipt.durable {
                w.sync()?;
            }
            (receipt, w.durable_lsn())
        };
        self.finish_commit(receipt.lsn, durable)?;
        Ok(CommitReceipt {
            lsn: receipt.lsn,
            durable: durable >= receipt.lsn,
        })
    }

    /// Stages this tree's share of one WAL batch: pool frames →
    /// journaling stores (nothing reaches the backing files here), then
    /// both stores' pending records into the log. The caller appends its
    /// own metadata and the commit marker — the multi-index catalog stages
    /// *every* tree this way and seals them under a single marker, so an
    /// all-indexes commit recovers atomically.
    pub(crate) fn stage_commit(&mut self, wal: &mut page_store::wal::Wal) -> io::Result<()> {
        self.tree.store_mut().write_back()?;
        self.heap.file_mut().write_back()?;
        self.tree.store_mut().backend_mut().stage(wal);
        self.heap.file_mut().backend_mut().stage(wal);
        Ok(())
    }

    /// Completes a commit this tree was staged into: records the batch's
    /// LSN and applies every batch the log has made durable onto the
    /// snapshot files (only durable batches may touch them — the
    /// write-ahead rule; deferred ones apply when a later sync covers
    /// them).
    pub(crate) fn finish_commit(&mut self, lsn: u64, durable: u64) -> io::Result<()> {
        let index = self.tree.store_mut().backend_mut();
        index.note_commit(lsn);
        index.apply_through(durable)?;
        let heap = self.heap.file_mut().backend_mut();
        heap.note_commit(lsn);
        heap.apply_through(durable)
    }

    /// True while a group-commit window still holds batches that were
    /// committed but not yet fsynced (checkpoint audit).
    pub(crate) fn has_deferred_commits(&mut self) -> bool {
        self.tree.store_mut().backend_mut().has_deferred_commits()
            || self.heap.file_mut().backend_mut().has_deferred_commits()
    }

    /// Durably commits, rewrites the full snapshot (`index.pg`, `heap.pg`,
    /// `meta.bin`) of this tree's own directory, and truncates the log —
    /// bounding recovery time and log growth. Readers of the old snapshot
    /// files keep their inodes; this tree continues on the log as usual.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.flush()?;
        // Write-ahead audit: under a group-commit window, commits may have
        // returned `durable: false`; the snapshot rename below must never
        // overtake them. `flush()` just forced the fsync, so a deferred
        // commit surviving to this point is a protocol bug — refuse to
        // snapshot rather than publish a snapshot ahead of the log.
        if self.has_deferred_commits() {
            return Err(io::Error::other(
                "checkpoint: deferred group commits survived the forced sync",
            ));
        }
        let dir = self
            .tree
            .store()
            .backing_path()
            .and_then(|p| p.parent().map(|d| d.to_path_buf()))
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "tree has no backing directory")
            })?;
        persist::save_index(
            &dir,
            &self.saved_meta(),
            self.tree.store(),
            self.heap.file(),
        )?;
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
        w.truncate()
    }

    /// Sets the group-commit window: fsync every `every`-th commit
    /// (`1`, the default, syncs every commit). Larger windows batch the
    /// fsync cost across commits; a crash can lose the unsynced tail of
    /// whole batches, never tear one.
    pub fn set_group_commit(&mut self, every: u64) {
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        // xlint: allow(panic-freedom) -- invariant: wal poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
        wal.lock().expect("wal poisoned").set_group_commit(every);
    }

    /// Number of log fsyncs since open (group-commit diagnostics).
    pub fn wal_sync_count(&mut self) -> u64 {
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        // xlint: allow(panic-freedom) -- invariant: wal poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
        let guard = wal.lock().expect("wal poisoned");
        guard.sync_count()
    }
}

impl<const D: usize, S: PageStore> UTree<D, S> {
    /// Saves the index as a directory (`index.pg`, `heap.pg`, `meta.bin`)
    /// that [`UTree::open`] can reopen cold. Node and heap pages are
    /// copied verbatim — they are already in on-page codec format — and
    /// the superstructure (catalog, R* tuning, root/height/len) goes into
    /// the metadata file.
    pub(crate) fn saved_meta(&self) -> persist::SavedMeta {
        persist::SavedMeta {
            kind: persist::KIND_UTREE,
            dims: D as u8,
            catalog: self.catalog.values().to_vec(),
            cfg: self.tree.config(),
            root: self.tree.root_page(),
            height: self.tree.height(),
            len: self.tree.len(),
            heap_open_page: self.heap.open_page(),
        }
    }

    /// Snapshots the index (tree pages, heap, catalog, metadata) into
    /// `dir` so [`UTree::open`] can rebuild it cold.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        // A disk-backed tree must not snapshot over its own live directory
        // (the snapshot would disagree with the WAL next to it); that's
        // what `checkpoint()` is for.
        persist::reject_live_dir(self.tree.store(), dir.as_ref())?;
        persist::save_index(
            dir.as_ref(),
            &self.saved_meta(),
            self.tree.store(),
            self.heap.file(),
        )
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &UCatalog {
        &self.catalog
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Index size in bytes (node pages only — Table 1's metric).
    pub fn index_size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    /// Heap (object detail) size in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        self.heap.size_bytes()
    }

    /// Structure statistics of the index. Fallible: walking the node
    /// pages goes through the store, whose errors surface typed instead
    /// of panicking.
    pub fn tree_stats(&self) -> io::Result<TreeStats> {
        self.tree.stats()
    }

    /// R-tree invariant check (tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()
    }

    /// Prepares the filter payload for an object: PCRs → CFB pair →
    /// conservatively rounded entry pieces.
    fn build_filter_payload(
        &self,
        pdf: &ObjectPdf<D>,
    ) -> (crate::cfb::CfbPair<D>, Rect<D>, u128, u128) {
        let t0 = Instant::now();
        let pcrs = PcrSet::compute(pdf, &self.catalog);
        let pcr_nanos = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let cfbs = fit_cfb_pair(&pcrs, &self.catalog);
        let lp_nanos = t1.elapsed().as_nanos();
        let raw = pdf.mbr();
        let mut mbr = raw;
        for i in 0..D {
            mbr.min[i] = f32_round_down(raw.min[i]);
            mbr.max[i] = f32_round_up(raw.max[i]);
        }
        (cfbs, mbr, pcr_nanos, lp_nanos)
    }

    /// Inserts an object: computes its PCRs and CFBs, stores the pdf record
    /// in the heap, and inserts the leaf entry (R* insertion with summed
    /// metrics). Object ids must be unique.
    pub fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        let (cfbs, mbr, pcr_nanos, lp_nanos) = self.build_filter_payload(&obj.pdf);
        let addr = self
            .heap
            .insert(&encode_object(obj))
            // xlint: allow(panic-freedom) -- invariant: heap store failed during insert
            .expect("heap store failed during insert");
        let entry = ULeafEntry::new(cfbs, mbr, addr, obj.id, &self.catalog);
        let reads0 = self.tree.io_stats().reads();
        let writes0 = self.tree.io_stats().writes();
        self.tree
            .insert(entry)
            // xlint: allow(panic-freedom) -- invariant: index store failed during insert
            .expect("index store failed during insert");
        InsertStats {
            pcr_nanos,
            lp_nanos,
            io_reads: self.tree.io_stats().reads() - reads0,
            io_writes: self.tree.io_stats().writes() - writes0,
        }
    }

    /// Deletes an object (the caller supplies the same object that was
    /// inserted; its filter payload is recomputed deterministically to
    /// locate the entry). Returns `true` when found.
    pub fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        let (cfbs, _, _, _) = self.build_filter_payload(&obj.pdf);
        let probe = UKey {
            lo: cfbs.outer.eval(self.catalog.first()),
            hi: cfbs.outer.eval(self.catalog.last()),
        };
        match self
            .tree
            .delete(&probe, obj.id)
            // xlint: allow(panic-freedom) -- invariant: index store failed during delete
            .expect("index store failed during delete")
        {
            Some(entry) => {
                self.heap
                    .remove(entry.addr)
                    // xlint: allow(panic-freedom) -- invariant: heap store failed during delete
                    .expect("heap store failed during delete");
                true
            }
            None => false,
        }
    }

    /// Bulk-loads an empty tree with **Sort-Tile-Recursive packing**: one
    /// pass computes every object's filter payload (PCRs → CFB pair), the
    /// objects are STR-ordered by MBR centre, heap records are appended in
    /// exactly that order (leaf-adjacent objects share heap pages), and
    /// the index is built bottom-up with leaves at full fan-out — no
    /// R*-splits, no re-insertions, and a level-contiguous page layout
    /// that [`UTree::save`]/[`UTree::open`] serve read-optimised.
    ///
    /// On a non-empty tree this falls back to the plain insert loop (the
    /// packed build assumes it owns the page file). Either way the
    /// returned [`InsertStats`] reports **build-level totals measured once
    /// per phase** — PCR and CFB wall-clock accumulate each object's
    /// breakdown exactly once, and the I/O counters are a single delta
    /// around the whole build.
    pub fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        if !self.is_empty() {
            let mut acc = InsertStats::default();
            for obj in objs {
                acc += &self.insert(obj.borrow());
            }
            return acc;
        }
        // Payload phase: PCRs and CFBs for every object, phase clocks
        // summed across the build.
        let mut pcr_nanos = 0u128;
        let mut lp_nanos = 0u128;
        let mut staged: Vec<(crate::cfb::CfbPair<D>, Rect<D>, Vec<u8>, u64)> = Vec::new();
        for obj in objs {
            let obj = obj.borrow();
            let (cfbs, mbr, p, l) = self.build_filter_payload(&obj.pdf);
            pcr_nanos += p;
            lp_nanos += l;
            staged.push((cfbs, mbr, encode_object(obj), obj.id));
        }
        if staged.is_empty() {
            return InsertStats {
                pcr_nanos,
                lp_nanos,
                ..InsertStats::default()
            };
        }
        let leaf_cap = self.tree.codec().leaf_capacity();
        str_order_by(&mut staged, leaf_cap, &|t: &(
            crate::cfb::CfbPair<D>,
            Rect<D>,
            Vec<u8>,
            u64,
        )| t.1.center().coords);
        let reads0 = self.tree.io_stats().reads();
        let writes0 = self.tree.io_stats().writes();
        let records: Vec<ULeafEntry<D>> = staged
            .into_iter()
            .map(|(cfbs, mbr, bytes, id)| {
                let addr = self
                    .heap
                    .insert(&bytes)
                    // xlint: allow(panic-freedom) -- invariant: heap store failed during bulk load
                    .expect("heap store failed during bulk load");
                ULeafEntry::new(cfbs, mbr, addr, id, &self.catalog)
            })
            .collect();
        self.tree
            .bulk_rebuild_ordered(records)
            // xlint: allow(panic-freedom) -- invariant: index store failed during bulk load
            .expect("index store failed during bulk load");
        InsertStats {
            pcr_nanos,
            lp_nanos,
            io_reads: self.tree.io_stats().reads() - reads0,
            io_writes: self.tree.io_stats().writes() - writes0,
        }
    }

    /// Executes a prob-range query, returning matches with provenance.
    ///
    /// Convenience over [`UTree::execute_with`] with a throwaway context.
    /// Panics if the storage medium fails; see [`UTree::try_execute_with`].
    pub fn execute(&self, query: &Query<D>) -> QueryOutcome {
        self.execute_with(query, &mut QueryCtx::new())
    }

    /// [`UTree::try_execute_with`], panicking on storage failure.
    pub fn execute_with(&self, query: &Query<D>, ctx: &mut QueryCtx) -> QueryOutcome {
        self.try_execute_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a prob-range query with caller-owned scratch state.
    ///
    /// Filter step: subtrees are pruned with Observation 4
    /// (`r_q ∩ e.MBR(p_j) = ∅` for the largest catalog value `p_j <= p_q`);
    /// leaf entries are pruned/validated with Observation 3. Refinement:
    /// the remaining candidates' appearance probabilities are evaluated,
    /// one heap I/O per page (Sec 5.2).
    ///
    /// Execution is read-only on the tree (`&self` end-to-end); all
    /// per-query mutable state lives in `ctx`, so a shared tree serves
    /// concurrent queries — one context per thread. `ctx.stats.node_reads`
    /// counts this traversal's own page loads (not a delta of the shared
    /// I/O counters), so per-query stats stay exact however many queries
    /// run at once.
    ///
    /// Callers usually reach this through
    /// [`crate::api::QueryBuilder::run`] or [`ProbIndex::execute`]; a
    /// storage failure mid-traversal surfaces as [`QueryError::Io`].
    pub fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        ctx.begin();
        let rq = query.region();
        let pq = query.threshold();
        let mode = query.refine_mode();
        let opts = query.options();
        // Observation 4 index: p_j = largest catalog value <= p_q
        // (p₁ = 0 guarantees existence; clamp defensively otherwise).
        let j = if opts.observation4 {
            self.catalog
                .largest_leq(pq + crate::filter::PROB_EPS)
                .unwrap_or(0)
        } else {
            0 // e.MBR(p₁=0) covers every object's MBR: plain R-tree pruning
        };
        let frac = self.catalog.fraction(j);
        // One catalog-lookup plan for the whole traversal; per-entry
        // filtering is pure rectangle arithmetic.
        let plan = crate::filter::PreparedQuery::new(&self.catalog, rq, pq);

        let t0 = Instant::now();
        let nodes_read = {
            let QueryCtx {
                stats,
                validated,
                candidates,
                stack,
                ..
            } = &mut *ctx;
            self.tree.visit_with(
                stack,
                |key, _| rq.intersects(&key.interp(frac)),
                |rec| {
                    let view = CfbView {
                        pair: &rec.cfbs,
                        catalog: &self.catalog,
                    };
                    let outcome = if opts.leaf_filter {
                        crate::filter::filter_object_planned(&view, &rec.mbr, &plan)
                    } else if rec.mbr.intersects(rq) {
                        FilterOutcome::Candidate
                    } else {
                        FilterOutcome::Pruned
                    };
                    let outcome = match outcome {
                        FilterOutcome::Validated if !opts.validation => FilterOutcome::Candidate,
                        other => other,
                    };
                    stats.visited += 1;
                    match outcome {
                        FilterOutcome::Pruned => stats.pruned += 1,
                        FilterOutcome::Validated => {
                            stats.validated += 1;
                            validated.push(rec.id);
                        }
                        FilterOutcome::Candidate => candidates.push((rec.addr, rec.id)),
                    }
                },
            )?
        };
        ctx.stats.filter_nanos = t0.elapsed().as_nanos();
        ctx.stats.node_reads = nodes_read;
        ctx.stats.candidates = ctx.candidates.len() as u64;
        ctx.stats.results = ctx.validated.len() as u64;

        let t1 = Instant::now();
        refine_ctx(&self.heap, rq, pq, mode, ctx)?;
        ctx.stats.refine_nanos = t1.elapsed().as_nanos();
        Ok(outcome_from_ctx(ctx))
    }

    /// Executes a probabilistic top-k ranking query with caller-owned
    /// scratch state (see [`ProbIndex::rank_topk`]).
    ///
    /// Best-first descent: intermediate entries are ordered by the graded
    /// Observation-4 bound — the smallest catalog value `p_j` whose
    /// interpolated `e.MBR(p_j)` misses `r_q` caps every subtree object's
    /// appearance probability at `p_j` — and leaf entries by their
    /// CFB-derived [`crate::filter::prob_bounds`]. A candidate is only
    /// refined while its upper bound still beats the current k-th lower
    /// bound, so most probability computations are skipped.
    pub fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        let rq = *query.region();
        let levels: Vec<(f64, f64)> = (0..self.catalog.len())
            .map(|j| (self.catalog.value(j), self.catalog.fraction(j)))
            .collect();
        let plan = crate::filter::PreparedQuery::ranking(&self.catalog, &rq);
        Ok(crate::rank::rank_best_first(
            &self.tree,
            &self.heap,
            query,
            ctx,
            |key: &UKey<D>| {
                let mut bound = 1.0f64;
                for &(pj, frac) in &levels {
                    if !rq.intersects(&key.interp(frac)) {
                        bound = bound.min(pj);
                    }
                }
                bound
            },
            |rec: &ULeafEntry<D>| {
                let view = CfbView {
                    pair: &rec.cfbs,
                    catalog: &self.catalog,
                };
                crate::filter::prob_bounds_planned(&view, &rec.mbr, &plan)
            },
        )?)
    }

    /// [`UTree::try_rank_topk_with`], panicking on storage failure.
    pub fn rank_topk_with(&self, query: &RankQuery<D>, ctx: &mut QueryCtx) -> RankOutcome {
        self.try_rank_topk_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`UTree::rank_topk_with`] with a throwaway context.
    pub fn rank_topk(&self, query: &RankQuery<D>) -> RankOutcome {
        self.rank_topk_with(query, &mut QueryCtx::new())
    }

    /// Visits every leaf entry (diagnostics / baselines).
    pub fn for_each_entry<F: FnMut(&ULeafEntry<D>)>(&self, f: F) {
        self.tree
            .for_each_record(f)
            // xlint: allow(panic-freedom) -- invariant: index store failed during scan
            .expect("index store failed during scan");
    }

    /// Total index-file page accesses (reads + writes) since the last
    /// [`Self::reset_io`] — the harness's update-cost metric.
    pub fn io_counters(&self) -> u64 {
        self.tree.io_stats().total()
    }

    /// Resets the index I/O counters (harness use).
    pub fn reset_io(&self) {
        self.tree.io_stats().reset();
        self.heap.file().stats().reset();
    }

    /// Direct read access to the heap (shared by baselines in benches).
    pub fn heap(&self) -> &ObjectHeap<S> {
        &self.heap
    }

    /// Direct read access to the node store (buffer-pool statistics,
    /// backend counters).
    pub fn node_store(&self) -> &S {
        self.tree.store()
    }
}

impl<const D: usize, S: PageStore> ProbIndex<D> for UTree<D, S> {
    fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        UTree::insert(self, obj)
    }

    fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        UTree::delete(self, obj)
    }

    fn len(&self) -> usize {
        UTree::len(self)
    }

    fn index_size_bytes(&self) -> u64 {
        UTree::index_size_bytes(self)
    }

    fn heap_size_bytes(&self) -> u64 {
        UTree::heap_size_bytes(self)
    }

    fn io_counters(&self) -> u64 {
        UTree::io_counters(self)
    }

    fn reset_io(&self) {
        UTree::reset_io(self)
    }

    fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        UTree::try_execute_with(self, query, ctx)
    }

    fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        UTree::try_rank_topk_with(self, query, ctx)
    }

    fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        UTree::bulk_load(self, objs)
    }
}

// `LeafRecord` is implemented in entry.rs; re-assert the link here so the
// compiler surfaces any drift in one obvious place.
const _: () = {
    fn _assert_leaf_record<const D: usize>() {
        fn takes<L: LeafRecord<UKey<2>>>() {}
        let _ = takes::<ULeafEntry<2>>;
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ProbRangeQuery, QueryStats, RefineMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::Point;

    /// Legacy-tuple shim over the new API so the tests exercise `execute`.
    fn run<const D: usize>(
        tree: &UTree<D>,
        q: ProbRangeQuery<D>,
        mode: RefineMode,
    ) -> (Vec<u64>, QueryStats) {
        let out = tree.execute(&Query::from_prob_range(q, mode));
        (out.ids(), out.stats)
    }

    fn run_opts<const D: usize>(
        tree: &UTree<D>,
        q: ProbRangeQuery<D>,
        mode: RefineMode,
        opts: QueryOptions,
    ) -> (Vec<u64>, QueryStats) {
        let out = tree.execute(&Query::from_prob_range(q, mode).with_options(opts));
        (out.ids(), out.stats)
    }

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    fn build_random(n: usize, seed: u64) -> (UTree<2>, Vec<UncertainObject<2>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tree = UTree::new(UCatalog::uniform(8));
        let mut objs = Vec::new();
        for id in 0..n as u64 {
            let o = ball(
                id,
                rng.gen_range(300.0..9700.0),
                rng.gen_range(300.0..9700.0),
                rng.gen_range(50.0..250.0),
            );
            tree.insert(&o);
            objs.push(o);
        }
        (tree, objs)
    }

    #[test]
    fn empty_tree_query() {
        let tree = UTree::<2>::new(UCatalog::uniform(4));
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [100.0, 100.0]), 0.5);
        let (ids, stats) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        assert!(ids.is_empty());
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn single_object_hit_and_miss() {
        let mut tree = UTree::<2>::new(UCatalog::uniform(6));
        tree.insert(&ball(7, 500.0, 500.0, 100.0));
        // Fully containing query at high threshold: hit, and validated
        // without probability computation.
        let q = ProbRangeQuery::new(Rect::new([300.0, 300.0], [700.0, 700.0]), 0.95);
        let (ids, stats) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        assert_eq!(ids, vec![7]);
        assert_eq!(stats.validated, 1);
        assert_eq!(stats.prob_computations, 0);
        // Disjoint query: pruned without probability computation.
        let q2 = ProbRangeQuery::new(Rect::new([5000.0, 5000.0], [6000.0, 6000.0]), 0.1);
        let (ids2, stats2) = run(&tree, q2, RefineMode::Reference { tol: 1e-8 });
        assert!(ids2.is_empty());
        assert_eq!(stats2.prob_computations, 0);
    }

    #[test]
    fn query_matches_brute_force_ground_truth() {
        let (tree, objs) = build_random(400, 11);
        tree.check_invariants().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for qi in 0..30 {
            let cx = rng.gen_range(500.0..9500.0);
            let cy = rng.gen_range(500.0..9500.0);
            let side = rng.gen_range(200.0..1500.0);
            let pq = rng.gen_range(0.05..0.95);
            let rq = Rect::cube(&Point::new([cx, cy]), side);
            let q = ProbRangeQuery::new(rq, pq);
            let (mut got, _) = run(&tree, q, RefineMode::Reference { tol: 1e-9 });
            got.sort_unstable();
            // Brute force with the same reference evaluator; skip objects
            // whose true probability is within ε of the threshold (filter
            // boundaries are open to either interpretation there).
            let mut expect = Vec::new();
            let mut near_boundary = Vec::new();
            for o in &objs {
                let p = uncertain_pdf::appearance_reference(&o.pdf, &rq, 1e-9);
                if (p - pq).abs() < 1e-4 {
                    near_boundary.push(o.id);
                } else if p >= pq {
                    expect.push(o.id);
                }
            }
            let got_filtered: Vec<u64> = got
                .iter()
                .copied()
                .filter(|id| !near_boundary.contains(id))
                .collect();
            assert_eq!(
                got_filtered, expect,
                "query {qi} mismatch (rq={rq:?}, pq={pq})"
            );
        }
    }

    #[test]
    fn rank_topk_matches_brute_force_ranking() {
        use crate::api::Refine;
        let (tree, objs) = build_random(400, 11);
        let mut rng = SmallRng::seed_from_u64(8);
        for qi in 0..12 {
            let c = Point::new([rng.gen_range(1000.0..9000.0), rng.gen_range(1000.0..9000.0)]);
            let rq = Rect::cube(&c, rng.gen_range(500.0..3000.0));
            let k = rng.gen_range(1..12);
            let q = Query::range(rq)
                .top(k)
                .refine(Refine::reference(1e-9))
                .build()
                .unwrap();
            let out = tree.rank_topk(&q);
            // Brute-force oracle with the index's own probability rule:
            // objects whose (f32-outward-rounded, as stored) MBR is
            // contained in r_q are pinned to 1; everything else gets the
            // reference quadrature; zero-probability objects never rank.
            let mut expect: Vec<(f64, u64)> = objs
                .iter()
                .filter_map(|o| {
                    let raw = o.pdf.mbr();
                    let mbr = Rect {
                        min: [f32_round_down(raw.min[0]), f32_round_down(raw.min[1])],
                        max: [f32_round_up(raw.max[0]), f32_round_up(raw.max[1])],
                    };
                    let p = if rq.contains_rect(&mbr) {
                        1.0
                    } else {
                        uncertain_pdf::appearance_reference(&o.pdf, &rq, 1e-9)
                    };
                    (p > 0.0).then_some((p, o.id))
                })
                .collect();
            expect.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            expect.truncate(k);
            let got: Vec<(f64, u64)> = out.matches.iter().map(|m| (m.p, m.id)).collect();
            assert_eq!(got, expect, "query {qi}: rq={rq:?} k={k}");
            // The ranking is ordered and internally consistent.
            assert!(out
                .matches
                .windows(2)
                .all(|w| w[0].p > w[1].p || (w[0].p == w[1].p && w[0].id < w[1].id)));
            assert!(out.stats.prob_computations <= out.stats.candidates);
            assert_eq!(out.stats.results, out.matches.len() as u64);
        }
    }

    #[test]
    fn rank_topk_skips_most_probability_computations() {
        use crate::api::Refine;
        let (tree, _) = build_random(1500, 23);
        let q = Query::range(Rect::new([2000.0, 2000.0], [7000.0, 7000.0]))
            .top(10)
            .refine(Refine::reference(1e-8))
            .build()
            .unwrap();
        let out = tree.rank_topk(&q);
        assert_eq!(out.len(), 10);
        // The point of the bounded traversal: of the many candidates the
        // region touches, only the contenders for the top 10 are refined.
        assert!(
            out.stats.prob_computations < out.stats.candidates,
            "refined {} of {} candidates — lazy refinement is not lazy",
            out.stats.prob_computations,
            out.stats.candidates
        );
    }

    #[test]
    fn filter_avoids_most_probability_computations() {
        let (tree, _) = build_random(1500, 23);
        let q = ProbRangeQuery::new(Rect::new([3000.0, 3000.0], [5000.0, 5000.0]), 0.6);
        let (ids, stats) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        assert!(!ids.is_empty());
        // The entire point of the paper: most decided objects never reach
        // the integrator.
        let decided = stats.pruned + stats.validated;
        assert!(
            decided > stats.prob_computations,
            "filter decided {decided}, refined {} — filtering is broken",
            stats.prob_computations
        );
    }

    #[test]
    fn delete_then_query() {
        let (mut tree, objs) = build_random(300, 31);
        for o in objs.iter().take(150) {
            assert!(tree.delete(o), "object {} must be deletable", o.id);
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 150);
        // Deleted objects never appear in results.
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]), 0.01);
        let (ids, _) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        for o in objs.iter().take(150) {
            assert!(!ids.contains(&o.id), "deleted {} still reported", o.id);
        }
        for o in objs.iter().skip(150) {
            assert!(ids.contains(&o.id), "surviving {} lost", o.id);
        }
    }

    #[test]
    fn delete_missing_returns_false() {
        let (mut tree, objs) = build_random(50, 41);
        let ghost = ball(9999, 5000.0, 5000.0, 100.0);
        assert!(!tree.delete(&ghost));
        assert!(tree.delete(&objs[0]));
        assert!(!tree.delete(&objs[0]), "double delete must fail");
    }

    #[test]
    fn mixed_pdf_types_coexist() {
        let mut tree = UTree::<2>::new(UCatalog::uniform(8));
        tree.insert(&ball(1, 1000.0, 1000.0, 200.0));
        tree.insert(&UncertainObject::new(
            2,
            ObjectPdf::ConGauBall {
                center: Point::new([1100.0, 1000.0]),
                radius: 200.0,
                sigma: 100.0,
            },
        ));
        tree.insert(&UncertainObject::new(
            3,
            ObjectPdf::UniformBox {
                rect: Rect::new([900.0, 900.0], [1300.0, 1300.0]),
            },
        ));
        let h = uncertain_pdf::HistogramPdf::from_fn(
            Rect::new([800.0, 800.0], [1200.0, 1200.0]),
            [8, 8],
            |p| 1.0 + (p.coords[0] - 800.0) / 400.0,
        );
        tree.insert(&UncertainObject::new(4, ObjectPdf::Histogram(h)));
        // A query around the cluster with a generous region takes all four.
        let q = ProbRangeQuery::new(Rect::new([600.0, 600.0], [1500.0, 1500.0]), 0.9);
        let (mut ids, _) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ablated_queries_return_identical_results() {
        let (tree, _) = build_random(500, 77);
        let q = ProbRangeQuery::new(Rect::new([2500.0, 2500.0], [5000.0, 5500.0]), 0.55);
        let mode = RefineMode::Reference { tol: 1e-8 };
        let (mut full, s_full) = run(&tree, q, mode);
        full.sort_unstable();
        for opts in [
            QueryOptions {
                observation4: false,
                ..QueryOptions::default()
            },
            QueryOptions {
                validation: false,
                ..QueryOptions::default()
            },
            QueryOptions {
                leaf_filter: false,
                validation: false,
                observation4: false,
            },
        ] {
            let (mut got, s) = run_opts(&tree, q, mode, opts);
            got.sort_unstable();
            assert_eq!(got, full, "ablation {opts:?} changed the answers");
            if !opts.validation {
                assert_eq!(s.validated, 0);
                assert!(s.prob_computations >= s_full.prob_computations);
            }
        }
    }

    #[test]
    fn insert_stats_report_cpu_breakdown() {
        let mut tree = UTree::<2>::new(UCatalog::paper_utree_default());
        let stats = tree.insert(&ball(1, 5000.0, 5000.0, 250.0));
        assert!(stats.lp_nanos > 0, "Simplex time must be measured");
        assert!(stats.pcr_nanos > 0, "PCR time must be measured");
        assert!(stats.io_writes > 0, "insertion must write pages");
    }

    /// Delegates every metric to [`UMetrics`] but pins the split rectangle
    /// to an explicit catalog index — lets the test reproduce the
    /// pre-fix `m/2` split choice next to the corrected `⌈m/2⌉ − 1`.
    #[derive(Clone)]
    struct PinnedMedianMetrics {
        inner: UMetrics<2>,
        median: usize,
    }

    impl rstar_base::KeyMetrics<2> for PinnedMedianMetrics {
        type Key = UKey<2>;
        type OverlapProfile = Vec<Rect<2>>;

        fn overlap_profile(&self, k: &UKey<2>) -> Vec<Rect<2>> {
            self.inner.overlap_profile(k)
        }
        fn profile_overlap(&self, a: &Vec<Rect<2>>, b: &Vec<Rect<2>>) -> f64 {
            self.inner.profile_overlap(a, b)
        }
        fn union_with(&self, a: &mut UKey<2>, b: &UKey<2>) {
            self.inner.union_with(a, b)
        }
        fn area(&self, k: &UKey<2>) -> f64 {
            self.inner.area(k)
        }
        fn margin(&self, k: &UKey<2>) -> f64 {
            self.inner.margin(k)
        }
        fn overlap(&self, a: &UKey<2>, b: &UKey<2>) -> f64 {
            self.inner.overlap(a, b)
        }
        fn centroid_distance(&self, a: &UKey<2>, b: &UKey<2>) -> f64 {
            self.inner.centroid_distance(a, b)
        }
        fn split_rect(&self, k: &UKey<2>) -> Rect<2> {
            self.inner.rect_at(k, self.median)
        }
        fn covers(&self, outer: &UKey<2>, inner: &UKey<2>, tolerance: f64) -> bool {
            self.inner.covers(outer, inner, tolerance)
        }
    }

    #[test]
    fn corrected_median_split_does_not_regress() {
        use crate::cfb::fit_cfb_pair;
        use crate::entry::UCodec;
        use crate::key::UMetrics;
        use crate::pcr::PcrSet;
        use page_store::{PageFile, RecordAddr};

        // Even m: the paper's p_{⌈m/2⌉} is index 2, the pre-fix formula
        // picked index 3.
        let cat = Arc::new(UCatalog::uniform(6));
        assert_eq!(cat.median_index(), 2);
        let mut rng = SmallRng::seed_from_u64(4242);
        let entries: Vec<ULeafEntry<2>> = (0..700u64)
            .map(|id| {
                let pdf = ObjectPdf::UniformBall {
                    center: uncertain_geom::Point::new([
                        rng.gen_range(300.0..9700.0),
                        rng.gen_range(300.0..9700.0),
                    ]),
                    radius: rng.gen_range(50.0..300.0),
                };
                let pcrs = PcrSet::compute(&pdf, &cat);
                let cfbs = fit_cfb_pair(&pcrs, &cat);
                let raw = pdf.mbr();
                let mbr = Rect {
                    min: [f32_round_down(raw.min[0]), f32_round_down(raw.min[1])],
                    max: [f32_round_up(raw.max[0]), f32_round_up(raw.max[1])],
                };
                let addr = RecordAddr {
                    page: id / 40,
                    slot: (id % 40) as u16,
                };
                ULeafEntry::new(cfbs, mbr, addr, id, &cat)
            })
            .collect();

        let build = |median: usize| {
            let metrics = PinnedMedianMetrics {
                inner: UMetrics::new(cat.clone()),
                median,
            };
            let mut tree: RStarTreeBase<2, _, ULeafEntry<2>, _, PageFile> = RStarTreeBase::new(
                metrics,
                UCodec::<2>::new(cat.clone()),
                TreeConfig::default(),
            );
            for e in &entries {
                tree.insert(e.clone()).unwrap();
            }
            tree.check_invariants().unwrap();
            tree
        };
        let fixed = build(cat.median_index()); // ⌈m/2⌉ − 1 = 2
        let buggy = build(cat.len() / 2); // the old m/2 = 3

        // Same workload of Observation-4 descents against both trees;
        // compare total node reads (the split's whole job is to keep this
        // low) at the interpolation fractions queries actually use.
        let reads =
            |tree: &RStarTreeBase<2, PinnedMedianMetrics, ULeafEntry<2>, UCodec<2>, PageFile>| {
                let mut rng = SmallRng::seed_from_u64(77);
                let mut total = 0u64;
                for _ in 0..60 {
                    let c = uncertain_geom::Point::new([
                        rng.gen_range(500.0..9500.0),
                        rng.gen_range(500.0..9500.0),
                    ]);
                    let rq = Rect::cube(&c, rng.gen_range(300.0..2000.0));
                    for frac in [0.0, 0.4, 1.0] {
                        total += tree
                            .visit(|key, _| rq.intersects(&key.interp(frac)), |_| {})
                            .unwrap();
                    }
                }
                total
            };
        let io_fixed = reads(&fixed);
        let io_buggy = reads(&buggy);
        // Equivalence bar: the corrected median must not make the split
        // measurably worse — same record count, invariants hold on both,
        // and the workload's traversal cost stays within 5% of the old
        // split's (it is typically at or below it).
        assert_eq!(fixed.len(), buggy.len());
        assert!(
            (io_fixed as f64) <= (io_buggy as f64) * 1.05,
            "median split regressed: {io_fixed} node reads vs {io_buggy} with the old index"
        );
    }

    #[test]
    fn three_dimensional_utree() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut tree = UTree::<3>::new(UCatalog::uniform(6));
        let mut objs = Vec::new();
        for id in 0..200u64 {
            let o: UncertainObject<3> = UncertainObject::new(
                id,
                ObjectPdf::UniformBall {
                    center: Point::new([
                        rng.gen_range(500.0..9500.0),
                        rng.gen_range(500.0..9500.0),
                        rng.gen_range(500.0..9500.0),
                    ]),
                    radius: 125.0,
                },
            );
            tree.insert(&o);
            objs.push(o);
        }
        tree.check_invariants().unwrap();
        let rq = Rect::new([2000.0, 2000.0, 2000.0], [6000.0, 6000.0, 6000.0]);
        let q = ProbRangeQuery::new(rq, 0.5);
        let (mut got, _) = run(&tree, q, RefineMode::Reference { tol: 1e-7 });
        got.sort_unstable();
        let mut expect: Vec<u64> = objs
            .iter()
            .filter(|o| {
                let p = uncertain_pdf::appearance_reference(&o.pdf, &rq, 1e-7);
                (p - 0.5).abs() >= 1e-4 && p >= 0.5
            })
            .map(|o| o.id)
            .collect();
        expect.sort_unstable();
        let got_clean: Vec<u64> = got
            .into_iter()
            .filter(|id| {
                let o = &objs[*id as usize];
                let p = uncertain_pdf::appearance_reference(&o.pdf, &rq, 1e-7);
                (p - 0.5).abs() >= 1e-4
            })
            .collect();
        assert_eq!(got_clean, expect);
    }
}
