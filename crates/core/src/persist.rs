//! On-disk index persistence: page-image snapshots + a write-ahead log +
//! a small metadata file.
//!
//! [`crate::UTree::save`] / [`crate::UPcrTree::save`] write a directory of
//! three files:
//!
//! * `index.pg` — the node pages, copied verbatim into a
//!   [`DiskPageFile`] (they are already in on-page codec format, so the
//!   snapshot *is* the serialized tree);
//! * `heap.pg`  — the object-detail heap pages, likewise;
//! * `meta.bin` — everything that lives outside the page space: structure
//!   kind, dimensionality, the U-catalog, R* tuning, root page, height,
//!   record count, and the heap's open page.
//!
//! A directory that has seen post-open commits additionally holds
//!
//! * `wal.log` — the write-ahead log ([`page_store::wal`]): every commit
//!   since the last snapshot/checkpoint as CRC-framed page images,
//!   allocation records and a metadata blob, sealed by commit markers.
//!
//! `open` reverses the process — **with crash recovery**. The log is
//! scanned, a torn or uncommitted tail is discarded, and every committed
//! batch is replayed onto the snapshot files (full page images make the
//! replay idempotent over any partially-applied base, so a crash at any
//! point — mid-append, mid-apply, even mid-checkpoint — lands on some
//! committed prefix). The authoritative superstructure is the log's last
//! committed metadata record when the log is non-empty, `meta.bin`
//! otherwise; the page files are then wrapped in
//! [`WalStore`]s sharing one log (so an index+heap commit is a single
//! atomic batch) behind [`page_store::BufferPool`]s.
//!
//! All replacement writes here are crash-ordered: temp file → fsync →
//! rename → **fsync the parent directory** (a rename is atomic but not
//! durable until the directory entry itself is synced).

use crate::catalog::UCatalog;
use page_store::wal::{self, Wal, WalStore};
use page_store::{
    fsync_dir, BufferPool, ByteReader, ByteWriter, DiskPageFile, ObjectHeap, PageId, PageStore,
    PAGE_SIZE,
};
use rstar_base::TreeConfig;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// File names inside a saved-index directory.
pub(crate) const META_FILE: &str = "meta.bin";
pub(crate) const INDEX_FILE: &str = "index.pg";
pub(crate) const HEAP_FILE: &str = "heap.pg";
pub(crate) const WAL_FILE: &str = "wal.log";

/// WAL store tags: which [`WalStore`] a log record belongs to.
pub(crate) const WAL_TAG_INDEX: u8 = 0;
pub(crate) const WAL_TAG_HEAP: u8 = 1;

/// Structure tags stored in the metadata.
pub(crate) const KIND_UTREE: u8 = 0;
pub(crate) const KIND_UPCR: u8 = 1;

const MAGIC: [u8; 4] = *b"UIDX";
const VERSION: u16 = 1;

/// The node store every disk-backed tree runs on: an LRU pool over a
/// journaling wrapper over the snapshot file.
pub(crate) type DiskStore = BufferPool<WalStore<DiskPageFile>>;

/// The superstructure a saved index needs besides its page images.
pub(crate) struct SavedMeta {
    pub kind: u8,
    pub dims: u8,
    pub catalog: Vec<f64>,
    pub cfg: TreeConfig,
    pub root: PageId,
    pub height: usize,
    pub len: usize,
    pub heap_open_page: Option<PageId>,
}

pub(crate) fn invalid_data(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Sibling scratch path for write-then-rename replacement.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Makes a just-renamed directory entry durable.
fn fsync_parent(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => fsync_dir(dir),
        _ => Ok(()),
    }
}

/// Copies every page of `src` (live and freed alike, so page ids are
/// preserved verbatim) into a fresh [`DiskPageFile`] at `path`, replicating
/// the free list, and flushes.
///
/// The snapshot is written to a sibling `.tmp` file and renamed into place
/// only when complete, so saving **over** the directory a disk-backed
/// index was opened from never truncates the file that index is still
/// reading (the open store keeps its pre-save inode; reopen to pick up
/// the new snapshot), and a crash mid-save never leaves a torn file
/// behind. The parent directory is fsynced after the rename — without it
/// the rename itself is not crash-durable.
pub(crate) fn dump_store<S: PageStore>(src: &S, path: &Path) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut dst = DiskPageFile::create(&tmp)?;
        let mut buf = [0u8; PAGE_SIZE];
        for id in 0..src.capacity_pages() as PageId {
            let did = dst.allocate()?;
            debug_assert_eq!(did, id, "snapshot ids must mirror the source");
            src.peek_into(id, &mut buf)?;
            dst.write(did, &buf)?;
        }
        // Replaying releases in free-list order reproduces the exact
        // stack, so reallocation order survives the round trip too.
        for id in src.free_list() {
            dst.release(id);
        }
        dst.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent(path)
}

/// Serializes the metadata to its on-disk/WAL byte form.
pub(crate) fn encode_meta(meta: &SavedMeta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u16(VERSION);
    w.put_u8(meta.kind);
    w.put_u8(meta.dims);
    w.put_f64(meta.cfg.min_fill);
    w.put_f64(meta.cfg.reinsert_frac);
    w.put_f64(meta.cfg.covers_tolerance);
    w.put_u64(meta.root);
    w.put_u64(meta.height as u64);
    w.put_u64(meta.len as u64);
    w.put_u64(meta.heap_open_page.unwrap_or(u64::MAX));
    w.put_u16(meta.catalog.len() as u16);
    for &p in &meta.catalog {
        w.put_f64(p);
    }
    w.into_bytes()
}

/// Parses [`encode_meta`] bytes; `origin` labels error messages.
pub(crate) fn decode_meta(bytes: &[u8], origin: &dyn std::fmt::Display) -> io::Result<SavedMeta> {
    // Fixed header + the catalog length field.
    const FIXED: usize = 4 + 2 + 1 + 1 + 3 * 8 + 4 * 8 + 2;
    if bytes.len() < FIXED {
        return Err(invalid_data(format!("{origin}: truncated metadata")));
    }
    if bytes[..4] != MAGIC {
        return Err(invalid_data(format!("{origin}: bad magic")));
    }
    let mut r = ByteReader::new(&bytes[4..]);
    let version = r.get_u16();
    if version != VERSION {
        return Err(invalid_data(format!(
            "{origin}: unsupported metadata version {version}"
        )));
    }
    let kind = r.get_u8();
    let dims = r.get_u8();
    let cfg = TreeConfig {
        min_fill: r.get_f64(),
        reinsert_frac: r.get_f64(),
        covers_tolerance: r.get_f64(),
    };
    let root = r.get_u64();
    let height = r.get_u64() as usize;
    let len = r.get_u64() as usize;
    let heap_open_page = match r.get_u64() {
        u64::MAX => None,
        p => Some(p),
    };
    let m = r.get_u16() as usize;
    if r.remaining() != m * 8 {
        return Err(invalid_data(format!("{origin}: catalog length mismatch")));
    }
    let catalog = (0..m).map(|_| r.get_f64()).collect();
    Ok(SavedMeta {
        kind,
        dims,
        catalog,
        cfg,
        root,
        height,
        len,
        heap_open_page,
    })
}

pub(crate) fn write_meta(path: &Path, meta: &SavedMeta) -> io::Result<()> {
    // Write-then-rename, like the page snapshots: the metadata file is
    // rewritten by every checkpoint and must never be observable
    // half-written. The temp file is fsynced before the rename and the
    // directory after it — the full crash-durable replacement sequence.
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, &encode_meta(meta))?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent(path)
}

pub(crate) fn read_meta(path: &Path) -> io::Result<SavedMeta> {
    let bytes = std::fs::read(path)?;
    decode_meta(&bytes, &path.display())
}

/// Writes a complete saved-index directory: both page-image snapshots plus
/// the metadata file. Shared by every tree's `save` and `checkpoint`.
pub(crate) fn save_index<SI: PageStore, SH: PageStore>(
    dir: &Path,
    meta: &SavedMeta,
    index_store: &SI,
    heap_store: &SH,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    dump_store(index_store, &dir.join(INDEX_FILE))?;
    dump_store(heap_store, &dir.join(HEAP_FILE))?;
    write_meta(&dir.join(META_FILE), meta)
}

/// Guards [`crate::UTree::save`]-style snapshots against the directory a
/// disk-backed tree is live on: a fresh snapshot there would disagree with
/// the (possibly non-empty) WAL sitting next to it, so self-saves must go
/// through `checkpoint()`, which commits and truncates the log around the
/// snapshot.
pub(crate) fn reject_live_dir<S: PageStore>(store: &S, dir: &Path) -> io::Result<()> {
    let Some(backing) = store.backing_path() else {
        return Ok(());
    };
    let Some(live) = backing.parent() else {
        return Ok(());
    };
    let same = live == dir
        || match (live.canonicalize(), dir.canonicalize()) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
    if same {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{}: this tree is live on that directory; use checkpoint() instead of save()",
                dir.display()
            ),
        ));
    }
    Ok(())
}

/// A snapshot file being brought forward by WAL replay: the page file plus
/// the allocation state the log reconstructs on top of it.
pub(crate) struct ReplayFile {
    file: DiskPageFile,
    n_pages: u64,
    free: Vec<PageId>,
}

impl ReplayFile {
    pub(crate) fn new(file: DiskPageFile) -> Self {
        let n_pages = file.capacity_pages() as u64;
        let free = file.free_list();
        Self {
            file,
            n_pages,
            free,
        }
    }
}

impl wal::ReplayTarget for ReplayFile {
    fn apply_image(&mut self, page: PageId, data: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.file.write(page, data)?;
        if page >= self.n_pages {
            self.n_pages = page + 1;
        }
        Ok(())
    }

    fn apply_alloc(&mut self, page: PageId) -> io::Result<()> {
        // Replay can re-allocate a page the snapshot already holds (a
        // crash between snapshot and log truncation): converge, don't
        // assume. The zeroing write also extends the file extent; the
        // batch's paired page image follows and installs the content.
        self.free.retain(|&f| f != page);
        if page >= self.n_pages {
            self.n_pages = page + 1;
        }
        self.file.write(page, &[])
    }

    fn apply_release(&mut self, page: PageId) -> io::Result<()> {
        if !self.free.contains(&page) {
            self.free.push(page);
        }
        Ok(())
    }
}

/// Validates buffer-pool sizing parameters (shared by single-index open
/// and the multi-index catalog open).
pub(crate) fn validate_pool_params(buffer_pages: usize, shards: Option<usize>) -> io::Result<()> {
    if buffer_pages == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a buffer pool needs at least one frame",
        ));
    }
    if shards.is_some_and(|s| !(1..=buffer_pages).contains(&s)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "pool shard count must lie in 1..=buffer_pages",
        ));
    }
    Ok(())
}

/// Wraps a replayed snapshot file in its journaling [`WalStore`] (sharing
/// `wal` under `tag`) behind a `buffer_pages` LRU pool — the standard
/// [`DiskStore`] assembly, shared by single-index open and the catalog.
pub(crate) fn wrap_store(
    rf: ReplayFile,
    wal: &Arc<Mutex<Wal>>,
    tag: u8,
    buffer_pages: usize,
    shards: Option<usize>,
) -> DiskStore {
    let store = WalStore::attach(rf.file, Arc::clone(wal), tag, rf.n_pages, rf.free);
    match shards {
        Some(s) => BufferPool::with_shards(store, buffer_pages, s),
        None => BufferPool::new(store, buffer_pages),
    }
}

/// Everything `open` reconstructs before the tree-specific metrics/codec
/// are attached: validated (possibly log-recovered) metadata, the shared
/// catalog, and the two journaled, pool-wrapped page files.
pub(crate) struct OpenedParts {
    pub meta: SavedMeta,
    pub catalog: Arc<UCatalog>,
    pub index: DiskStore,
    pub heap: ObjectHeap<DiskStore>,
}

/// Reads and validates a saved-index directory (structure kind,
/// dimensionality, catalog, and that the root / open heap page actually
/// lie inside their files), **recovering any write-ahead log first**, then
/// wrapping each page file in a journaling [`WalStore`] (both sharing one
/// log, so index+heap commits stay atomic) behind a `buffer_pages` LRU
/// pool. `shards` pins the pools' latch striping (`None` = automatic; see
/// `BufferPool::new`). Shared by every tree's `open`.
pub(crate) fn open_parts(
    dir: &Path,
    kind: u8,
    dims: usize,
    buffer_pages: usize,
    shards: Option<usize>,
) -> io::Result<OpenedParts> {
    validate_pool_params(buffer_pages, shards)?;

    // Crash recovery: scan the log (discarding a torn/uncommitted tail)
    // and replay every committed batch onto the snapshot files. Full page
    // images make this idempotent whatever prefix of the batches a
    // pre-crash apply already flushed.
    let recovery = Wal::recover(dir.join(WAL_FILE))?;
    let mut index_rf = ReplayFile::new(DiskPageFile::open(dir.join(INDEX_FILE))?);
    let mut heap_rf = ReplayFile::new(DiskPageFile::open(dir.join(HEAP_FILE))?);
    let wal_meta = wal::replay(&recovery.batches, &mut [&mut index_rf, &mut heap_rf])?;

    // The log's last committed metadata is authoritative (it belongs to
    // the replayed page state); `meta.bin` covers the snapshot-only case.
    let meta_path = dir.join(META_FILE);
    let meta = match wal_meta {
        Some(bytes) => decode_meta(&bytes, &format!("{} (wal)", dir.display()))?,
        None => read_meta(&meta_path)?,
    };
    expect(&meta, kind, dims, &meta_path)?;
    let catalog = Arc::new(UCatalog::try_new(meta.catalog.clone()).map_err(invalid_data)?);

    let wal = Arc::new(Mutex::new(recovery.wal));
    let index = wrap_store(index_rf, &wal, WAL_TAG_INDEX, buffer_pages, shards);
    if meta.root as usize >= index.capacity_pages() {
        return Err(invalid_data(format!(
            "{}: root page {} outside the index file",
            dir.display(),
            meta.root
        )));
    }
    let heap_store = wrap_store(heap_rf, &wal, WAL_TAG_HEAP, buffer_pages, shards);
    if let Some(p) = meta.heap_open_page {
        if p as usize >= heap_store.capacity_pages() {
            return Err(invalid_data(format!(
                "{}: open heap page {p} outside the heap file",
                dir.display()
            )));
        }
    }
    let heap = ObjectHeap::from_raw_parts(heap_store, meta.heap_open_page);
    Ok(OpenedParts {
        meta,
        catalog,
        index,
        heap,
    })
}

/// Validates the metadata against what the caller is about to construct.
pub(crate) fn expect(meta: &SavedMeta, kind: u8, dims: usize, path: &Path) -> io::Result<()> {
    if meta.kind != kind {
        return Err(invalid_data(format!(
            "{}: saved index kind {} does not match the requested structure ({kind})",
            path.display(),
            meta.kind
        )));
    }
    if meta.dims as usize != dims {
        return Err(invalid_data(format!(
            "{}: saved index is {}-dimensional, expected {dims}",
            path.display(),
            meta.dims
        )));
    }
    if meta.height == 0 {
        return Err(invalid_data(format!("{}: zero height", path.display())));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use page_store::PageFile;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("utree-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn meta_roundtrip() {
        let dir = temp_dir("meta");
        let path = dir.join(META_FILE);
        let meta = SavedMeta {
            kind: KIND_UPCR,
            dims: 3,
            catalog: vec![0.0, 0.25, 0.5],
            cfg: TreeConfig {
                min_fill: 0.35,
                reinsert_frac: 0.25,
                covers_tolerance: 0.01,
            },
            root: 42,
            height: 3,
            len: 1234,
            heap_open_page: Some(7),
        };
        write_meta(&path, &meta).unwrap();
        let back = read_meta(&path).unwrap();
        assert_eq!(back.kind, meta.kind);
        assert_eq!(back.dims, meta.dims);
        assert_eq!(back.catalog, meta.catalog);
        assert_eq!(back.cfg.min_fill, meta.cfg.min_fill);
        assert_eq!(back.root, 42);
        assert_eq!(back.height, 3);
        assert_eq!(back.len, 1234);
        assert_eq!(back.heap_open_page, Some(7));
        assert!(expect(&back, KIND_UPCR, 3, &path).is_ok());
        assert!(expect(&back, KIND_UTREE, 3, &path).is_err());
        assert!(expect(&back, KIND_UPCR, 2, &path).is_err());
        // The WAL carries the identical byte form.
        let via_wal = decode_meta(&encode_meta(&meta), &"wal").unwrap();
        assert_eq!(via_wal.root, meta.root);
        assert_eq!(via_wal.catalog, meta.catalog);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_meta_rejects_garbage() {
        let dir = temp_dir("garbage");
        let path = dir.join(META_FILE);
        std::fs::write(&path, b"not an index").unwrap();
        assert!(read_meta(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_replicates_pages_and_free_list() {
        let dir = temp_dir("dump");
        let mut src = PageFile::new();
        let ids: Vec<_> = (0..6).map(|_| src.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            src.write(id, &[i as u8 + 10; 32]).unwrap();
        }
        src.release(ids[2]);
        src.release(ids[4]);
        let path = dir.join(INDEX_FILE);
        dump_store(&src, &path).unwrap();
        let dst = DiskPageFile::open(&path).unwrap();
        assert_eq!(dst.capacity_pages(), 6);
        assert_eq!(dst.free_list(), src.free_list());
        for &id in &[ids[0], ids[1], ids[3], ids[5]] {
            assert_eq!(dst.peek_page(id).unwrap()[..], src.peek(id)[..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_converges_over_a_fresh_snapshot() {
        // A log replayed over a snapshot that already contains its effects
        // (crash between snapshot rename and log truncation) must land on
        // the same state as replaying over the pre-snapshot base.
        let dir = temp_dir("converge");
        let path = dir.join(INDEX_FILE);
        let mut base = DiskPageFile::create(&path).unwrap();
        let p0 = base.allocate().unwrap();
        base.write(p0, b"pre-existing").unwrap();
        base.flush().unwrap();

        let mut rf = ReplayFile::new(base);
        use wal::ReplayTarget;
        let img = {
            let mut b = [0u8; PAGE_SIZE];
            b[..5].copy_from_slice(b"fresh");
            b
        };
        // alloc p1 + image, release p0, then the snapshot-included replay
        // of the same ops again.
        for _ in 0..2 {
            rf.apply_alloc(1).unwrap();
            rf.apply_image(1, &img).unwrap();
            rf.apply_release(0).unwrap();
        }
        assert_eq!(rf.n_pages, 2);
        assert_eq!(rf.free, vec![0]);
        assert_eq!(&rf.file.peek_page(1).unwrap()[..5], b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
