//! Prob-range queries, execution statistics and the shared refinement step.

use crate::api::QueryError;
use crate::object_codec::decode_object;
use page_store::{ObjectHeap, PageId, PageStore, RecordAddr};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io;
use std::ops::AddAssign;
use uncertain_geom::Rect;
use uncertain_pdf::{appearance_reference, MonteCarlo, PreparedPdf, RefineScratch};

/// A probabilistic range query `q = (r_q, p_q)` (paper Sec 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbRangeQuery<const D: usize> {
    /// The search region `r_q`.
    pub region: Rect<D>,
    /// The probability threshold `p_q ∈ [0, 1]`.
    pub threshold: f64,
}

impl<const D: usize> ProbRangeQuery<D> {
    /// Creates a query, returning a typed error when `threshold` is
    /// outside `[0, 1]` or the region has a non-finite or inverted bound.
    ///
    /// This is the single validation path: the fluent builder
    /// ([`crate::api::QueryBuilder::build`]) delegates here, so a query
    /// constructed directly from a pre-generated workload is held to
    /// exactly the same rules — a NaN/∞ region can no longer slip into a
    /// traversal as a silently empty (or garbage) search box.
    pub fn try_new(region: Rect<D>, threshold: f64) -> Result<Self, QueryError> {
        crate::api::validate_region(&region)?;
        if !(0.0..=1.0).contains(&threshold) {
            return Err(QueryError::ThresholdOutOfRange { threshold });
        }
        Ok(Self { region, threshold })
    }

    /// [`Self::try_new`], panicking on an out-of-range threshold.
    pub fn new(region: Rect<D>, threshold: f64) -> Self {
        // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
        Self::try_new(region, threshold).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// How candidate appearance probabilities are evaluated in the refinement
/// step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefineMode {
    /// The paper's Monte-Carlo estimator (Eq. 3) with n₁ samples and a
    /// deterministic seed.
    MonteCarlo {
        /// Sample count (the paper settles on 10⁶; Sec 6.1).
        n1: usize,
        /// Seed for reproducible runs.
        seed: u64,
    },
    /// Deterministic quadrature (exact for uniform/histogram objects) —
    /// used by correctness tests and fast benchmark runs.
    Reference {
        /// Quadrature tolerance.
        tol: f64,
    },
}

impl RefineMode {
    /// The paper's Monte-Carlo estimator with `n1` samples and a seed.
    pub fn monte_carlo(n1: usize, seed: u64) -> Self {
        RefineMode::MonteCarlo { n1, seed }
    }

    /// Deterministic quadrature with the given tolerance.
    pub fn reference(tol: f64) -> Self {
        RefineMode::Reference { tol }
    }
}

impl Default for RefineMode {
    fn default() -> Self {
        RefineMode::MonteCarlo {
            n1: 1_000_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Cost counters for one query (the paper's evaluation metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Index node pages read (Fig 9/10 "number of node accesses").
    pub node_reads: u64,
    /// Heap pages read during refinement (grouped: one I/O per page).
    pub heap_reads: u64,
    /// Appearance probabilities computed (Fig 9/10 "# of prob.
    /// computations").
    pub prob_computations: u64,
    /// Leaf entries inspected by the filter step
    /// (`pruned + validated + candidates`).
    pub visited: u64,
    /// Leaf entries pruned by the filter rules.
    pub pruned: u64,
    /// Results certified without probability computation.
    pub validated: u64,
    /// Entries that required refinement.
    pub candidates: u64,
    /// Final result count.
    pub results: u64,
    /// Monte-Carlo samples drawn during refinement (n₁ per estimate that
    /// did not short-circuit). Together with `refine_nanos` this makes the
    /// refinement cost attributable as nanoseconds **per sample**, a
    /// machine-scaled figure the bench gates can compare across runs.
    pub refined_samples: u64,
    /// Wall-clock nanoseconds in the filter step.
    pub filter_nanos: u128,
    /// Wall-clock nanoseconds in the refinement step.
    pub refine_nanos: u128,
}

impl QueryStats {
    /// Total page accesses (index + heap).
    pub fn total_io(&self) -> u64 {
        self.node_reads + self.heap_reads
    }

    /// Fraction of qualifying objects reported without probability
    /// computation (the percentages annotated in Fig 9/10).
    pub fn directly_reported_fraction(&self) -> f64 {
        if self.results == 0 {
            return 0.0;
        }
        self.validated as f64 / self.results as f64
    }

    /// `true` when every *count* field matches `other` — the timing fields
    /// (`filter_nanos`, `refine_nanos`) are ignored. This is the right
    /// equality for comparing a parallel run against a sequential one:
    /// work done is deterministic, wall-clock is not.
    pub fn same_counts(&self, other: &QueryStats) -> bool {
        // Whole-struct equality with the clocks zeroed, so a counter added
        // to QueryStats later is compared automatically instead of being
        // silently excluded.
        let strip = |s: &QueryStats| QueryStats {
            filter_nanos: 0,
            refine_nanos: 0,
            ..*s
        };
        strip(self) == strip(other)
    }
}

impl AddAssign<&QueryStats> for QueryStats {
    fn add_assign(&mut self, other: &QueryStats) {
        self.node_reads += other.node_reads;
        self.heap_reads += other.heap_reads;
        self.prob_computations += other.prob_computations;
        self.visited += other.visited;
        self.pruned += other.pruned;
        self.validated += other.validated;
        self.candidates += other.candidates;
        self.results += other.results;
        self.refined_samples += other.refined_samples;
        self.filter_nanos += other.filter_nanos;
        self.refine_nanos += other.refine_nanos;
    }
}

impl AddAssign<QueryStats> for QueryStats {
    fn add_assign(&mut self, other: QueryStats) {
        *self += &other;
    }
}

/// Reusable per-query scratch state: the cost counters of the query being
/// executed, the result/candidate buffers the filter step fills, the
/// traversal stack, and the refinement RNG.
///
/// This is the mutable half of query execution. The indexes themselves are
/// only ever *read* during a query (`&self` end-to-end), so one shared
/// index can serve any number of concurrent queries — each carrying its
/// own `QueryCtx`. A context is cheap to create, but reusing one per
/// worker thread (as [`crate::engine::BatchExecutor`] does) amortises the
/// buffer allocations across a whole workload.
///
/// The Monte-Carlo generator lives here too, but is **re-seeded from the
/// query's [`RefineMode`] seed on every refinement pass** — that is what
/// makes results byte-identical however queries are scheduled across
/// threads.
#[derive(Debug, Default)]
pub struct QueryCtx {
    /// Cost counters of the current query (zeroed when execution begins).
    pub stats: QueryStats,
    /// Ids validated for free by the filter step.
    pub(crate) validated: Vec<u64>,
    /// Entries the filter could not decide; input to refinement.
    pub(crate) candidates: Vec<(RecordAddr, u64)>,
    /// Refinement qualifiers with their computed probabilities.
    pub(crate) refined: Vec<(u64, f64)>,
    /// Tree-traversal stack (reused by [`rstar_base::RStarTreeBase::visit_with`]).
    pub(crate) stack: Vec<(PageId, usize)>,
    /// Monte-Carlo generator slot (re-seeded per refinement pass).
    pub(crate) rng: Option<SmallRng>,
    /// Best-first ranking frontier (nodes and undecided objects, keyed by
    /// upper probability bound).
    pub(crate) frontier: std::collections::BinaryHeap<crate::rank::RankItem>,
    /// Lower bounds of objects currently in the frontier, keyed
    /// `(lb_bits, id)` so the k-th best bound is an ordered lookup.
    pub(crate) pending: std::collections::BTreeSet<(u64, u64)>,
    /// Exact ranking results so far (sorted descending, capped at k).
    pub(crate) ranked: Vec<crate::rank::RankedHit>,
    /// Distinct heap pages touched by one-at-a-time refinement (sorted).
    pub(crate) heap_pages: Vec<PageId>,
    /// Reusable SoA buffers for the chunked Monte-Carlo kernels
    /// ([`uncertain_pdf::kernel`]): warm after the first refinement, so a
    /// refinement pass allocates nothing. Deliberately *not* cleared by
    /// [`QueryCtx::begin`] — the buffers are the point of reuse, and the
    /// sample counter is snapshotted per pass.
    pub(crate) scratch: RefineScratch,
}

impl QueryCtx {
    /// A fresh context with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets per-query state (stats and buffers) while keeping the buffer
    /// capacity from earlier queries. Every backend calls this on entry to
    /// `execute_with` / `rank_topk_with`.
    pub(crate) fn begin(&mut self) {
        self.stats = QueryStats::default();
        self.validated.clear();
        self.candidates.clear();
        self.refined.clear();
        self.stack.clear();
        self.frontier.clear();
        self.pending.clear();
        self.ranked.clear();
        self.heap_pages.clear();
    }
}

/// The per-object Monte-Carlo seed used by ranking refinement.
///
/// Range refinement seeds one generator per *pass* (candidates are
/// evaluated in one deterministic sweep), but a best-first ranking refines
/// objects one at a time in a bound-dependent order that legitimately
/// differs between backends. Deriving the stream from `(seed, id)` makes
/// every object's estimate a pure function of the query — identical on
/// every backend, in any traversal order, on any thread.
pub(crate) fn rank_refine_seed(seed: u64, id: u64) -> u64 {
    // SplitMix64-style finalizer over the id, xored into the query seed.
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seed ^ (z ^ (z >> 31))
}

/// Refines a single candidate: loads its heap record, computes the
/// appearance probability under `mode`, and charges the ranking cost
/// model (`prob_computations` per call; `heap_reads` counts *distinct*
/// pages touched this query, tracked in `ctx.heap_pages`).
pub(crate) fn refine_one<const D: usize, S: PageStore>(
    heap: &ObjectHeap<S>,
    addr: RecordAddr,
    id: u64,
    rq: &Rect<D>,
    mode: RefineMode,
    ctx: &mut QueryCtx,
) -> io::Result<f64> {
    let t0 = std::time::Instant::now();
    if let Err(at) = ctx.heap_pages.binary_search(&addr.page) {
        ctx.heap_pages.insert(at, addr.page);
        ctx.stats.heap_reads += 1;
    }
    let p = match heap.get(addr)? {
        Some(bytes) => {
            let obj = decode_object::<D>(&bytes);
            debug_assert_eq!(obj.id, id, "heap record id mismatch");
            match mode {
                RefineMode::MonteCarlo { n1, seed } => {
                    let mut rng = SmallRng::seed_from_u64(rank_refine_seed(seed, id));
                    let prepared = PreparedPdf::new(&obj.pdf);
                    let s0 = ctx.scratch.samples();
                    let p = MonteCarlo::new(n1).estimate_with(
                        &prepared,
                        rq,
                        &mut rng,
                        &mut ctx.scratch,
                    );
                    ctx.stats.refined_samples += ctx.scratch.samples() - s0;
                    p
                }
                RefineMode::Reference { tol } => appearance_reference(&obj.pdf, rq, tol),
            }
        }
        None => {
            debug_assert!(
                false,
                "candidate addr {}/{} missing from heap",
                addr.page, addr.slot
            );
            0.0
        }
    };
    ctx.stats.prob_computations += 1;
    ctx.stats.refine_nanos += t0.elapsed().as_nanos();
    Ok(p)
}

/// Shared refinement core writing qualifiers into `out` (Sec 5.2):
/// candidates are grouped by heap page; each page is loaded once; every
/// candidate's appearance probability is evaluated and compared with `p_q`.
#[allow(clippy::too_many_arguments)]
fn refine_core<const D: usize, S: PageStore>(
    heap: &ObjectHeap<S>,
    candidates: &[(RecordAddr, u64)],
    rq: &Rect<D>,
    pq: f64,
    mode: RefineMode,
    stats: &mut QueryStats,
    rng_slot: &mut Option<SmallRng>,
    scratch: &mut RefineScratch,
    out: &mut Vec<(u64, f64)>,
) -> io::Result<()> {
    let samples0 = scratch.samples();
    let mut by_page: BTreeMap<PageId, Vec<(u16, u64)>> = BTreeMap::new();
    for (addr, id) in candidates {
        by_page.entry(addr.page).or_default().push((addr.slot, *id));
    }
    // One generator for the whole refinement pass, seeded afresh from the
    // mode (never carried over from a previous query) so that a query's
    // answer is independent of which thread runs it and in what order.
    *rng_slot = match mode {
        RefineMode::MonteCarlo { seed, .. } => Some(SmallRng::seed_from_u64(seed)),
        RefineMode::Reference { .. } => None,
    };
    let qualified0 = out.len();
    for (page, slots) in by_page {
        let records = heap.page_records(page)?;
        stats.heap_reads += 1;
        for (slot, id) in slots {
            let Some((_, bytes)) = records.iter().find(|(s, _)| *s == slot) else {
                debug_assert!(false, "candidate addr {page}/{slot} missing from heap");
                continue;
            };
            let obj = decode_object::<D>(bytes);
            debug_assert_eq!(obj.id, id, "heap record id mismatch");
            let p_app = match mode {
                RefineMode::MonteCarlo { n1, .. } => {
                    // xlint: allow(panic-freedom) -- invariant: rng exists in Monte-Carlo mode
                    let rng = rng_slot.as_mut().expect("rng exists in Monte-Carlo mode");
                    let prepared = PreparedPdf::new(&obj.pdf);
                    MonteCarlo::new(n1).estimate_with(&prepared, rq, rng, scratch)
                }
                RefineMode::Reference { tol } => appearance_reference(&obj.pdf, rq, tol),
            };
            stats.prob_computations += 1;
            if p_app >= pq {
                out.push((id, p_app));
            }
        }
    }
    stats.results += (out.len() - qualified0) as u64;
    stats.refined_samples += scratch.samples() - samples0;
    Ok(())
}

/// Runs the refinement step over the candidates a context's filter step
/// collected, appending qualifiers to the context's `refined` buffer and
/// charging its stats.
pub(crate) fn refine_ctx<const D: usize, S: PageStore>(
    heap: &ObjectHeap<S>,
    rq: &Rect<D>,
    pq: f64,
    mode: RefineMode,
    ctx: &mut QueryCtx,
) -> io::Result<()> {
    let QueryCtx {
        stats,
        candidates,
        refined,
        rng,
        scratch,
        ..
    } = ctx;
    refine_core(heap, candidates, rq, pq, mode, stats, rng, scratch, refined)
}

/// The refinement step of Sec 5.2, reporting each qualifying candidate
/// with the appearance probability computed for it.
///
/// Returns `(id, p)` for the qualifiers and updates `stats`. Standalone
/// surface for direct callers; query execution goes through the
/// [`QueryCtx`]-based path, which reuses buffers across queries.
pub fn refine_candidates_scored<const D: usize, S: PageStore>(
    heap: &ObjectHeap<S>,
    candidates: &[(RecordAddr, u64)],
    rq: &Rect<D>,
    pq: f64,
    mode: RefineMode,
    stats: &mut QueryStats,
) -> io::Result<Vec<(u64, f64)>> {
    let mut out = Vec::new();
    let mut rng = None;
    let mut scratch = RefineScratch::new();
    refine_core(
        heap,
        candidates,
        rq,
        pq,
        mode,
        stats,
        &mut rng,
        &mut scratch,
        &mut out,
    )?;
    Ok(out)
}

/// [`refine_candidates_scored`] without the probabilities (the original
/// id-only surface, kept for direct callers of the refinement step).
pub fn refine_candidates<const D: usize, S: PageStore>(
    heap: &ObjectHeap<S>,
    candidates: &[(RecordAddr, u64)],
    rq: &Rect<D>,
    pq: f64,
    mode: RefineMode,
    stats: &mut QueryStats,
) -> io::Result<Vec<u64>> {
    Ok(
        refine_candidates_scored(heap, candidates, rq, pq, mode, stats)?
            .into_iter()
            .map(|(id, _)| id)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_codec::encode_object;
    use uncertain_geom::Point;
    use uncertain_pdf::{ObjectPdf, UncertainObject};

    #[test]
    fn refinement_groups_by_page_and_filters_by_threshold() {
        let mut heap = ObjectHeap::new();
        // Two objects: one mostly inside the query, one mostly outside.
        let inside: UncertainObject<2> = UncertainObject::new(
            1,
            ObjectPdf::UniformBox {
                rect: Rect::new([0.0, 0.0], [10.0, 10.0]),
            },
        );
        let outside: UncertainObject<2> = UncertainObject::new(
            2,
            ObjectPdf::UniformBox {
                rect: Rect::new([90.0, 90.0], [110.0, 110.0]),
            },
        );
        let a1 = heap.insert(&encode_object(&inside)).unwrap();
        let a2 = heap.insert(&encode_object(&outside)).unwrap();
        assert_eq!(a1.page, a2.page, "small records share a page");

        let rq = Rect::new([-1.0, -1.0], [9.0, 11.0]); // 90% of obj 1, 0% of 2
        let mut stats = QueryStats::default();
        let got = refine_candidates_scored(
            &heap,
            &[(a1, 1), (a2, 2)],
            &rq,
            0.5,
            RefineMode::Reference { tol: 1e-9 },
            &mut stats,
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
        assert!((got[0].1 - 0.9).abs() < 1e-6, "reported p {}", got[0].1);
        assert_eq!(stats.heap_reads, 1, "grouping must cost a single I/O");
        assert_eq!(stats.prob_computations, 2);
        assert_eq!(stats.results, 1);
    }

    #[test]
    fn monte_carlo_mode_agrees_with_reference() {
        let mut heap = ObjectHeap::new();
        let obj: UncertainObject<2> = UncertainObject::new(
            5,
            ObjectPdf::UniformBall {
                center: Point::new([50.0, 50.0]),
                radius: 10.0,
            },
        );
        let a = heap.insert(&encode_object(&obj)).unwrap();
        let rq = Rect::new([40.0, 40.0], [50.0, 60.0]); // left half: P = 0.5
        for (pq, expect_hit) in [(0.45, true), (0.55, false)] {
            let mut stats = QueryStats::default();
            let got = refine_candidates(
                &heap,
                &[(a, 5)],
                &rq,
                pq,
                RefineMode::MonteCarlo {
                    n1: 60_000,
                    seed: 7,
                },
                &mut stats,
            )
            .unwrap();
            assert_eq!(got.len() == 1, expect_hit, "pq={pq}");
        }
    }

    #[test]
    fn stats_accumulate_via_add_assign() {
        let mut a = QueryStats {
            node_reads: 5,
            heap_reads: 1,
            prob_computations: 2,
            ..Default::default()
        };
        let b = QueryStats {
            node_reads: 3,
            validated: 4,
            results: 4,
            ..Default::default()
        };
        a += &b;
        assert_eq!(a.node_reads, 8);
        assert_eq!(a.validated, 4);
        assert_eq!(a.total_io(), 9);
        // By-value and by-reference accumulation are the same operation.
        let mut c = QueryStats::default();
        c += b;
        let mut d = QueryStats::default();
        d += &b;
        assert_eq!(c, d);
    }

    #[test]
    fn add_assign_merges_every_counter() {
        // Stamp every field with a distinct value; a future field added to
        // QueryStats but forgotten in AddAssign will fail the whole-struct
        // equality below.
        let unit = QueryStats {
            node_reads: 1,
            heap_reads: 2,
            prob_computations: 3,
            visited: 4,
            pruned: 5,
            validated: 6,
            candidates: 7,
            results: 8,
            refined_samples: 9,
            filter_nanos: 10,
            refine_nanos: 11,
        };
        let mut acc = unit;
        acc += &unit;
        let expect = QueryStats {
            node_reads: 2,
            heap_reads: 4,
            prob_computations: 6,
            visited: 8,
            pruned: 10,
            validated: 12,
            candidates: 14,
            results: 16,
            refined_samples: 18,
            filter_nanos: 20,
            refine_nanos: 22,
        };
        assert_eq!(acc, expect);
        assert!(acc.same_counts(&expect));
        // same_counts ignores wall-clock, nothing else.
        let mut slower = expect;
        slower.refine_nanos += 1_000;
        assert!(acc.same_counts(&slower));
        let mut busier = expect;
        busier.visited += 1;
        assert!(!acc.same_counts(&busier));
    }

    #[test]
    fn stats_equality_derives() {
        assert_eq!(QueryStats::default(), QueryStats::default());
        assert_eq!(
            RefineMode::monte_carlo(10, 3),
            RefineMode::MonteCarlo { n1: 10, seed: 3 }
        );
        assert_ne!(RefineMode::reference(1e-6), RefineMode::reference(1e-7));
    }

    #[test]
    fn directly_reported_fraction() {
        let s = QueryStats {
            validated: 9,
            results: 10,
            ..Default::default()
        };
        assert!((s.directly_reported_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(QueryStats::default().directly_reported_fraction(), 0.0);
    }

    #[test]
    fn try_new_rejects_bad_thresholds() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        assert!(ProbRangeQuery::try_new(r, 0.0).is_ok());
        assert!(ProbRangeQuery::try_new(r, 1.0).is_ok());
        assert_eq!(
            ProbRangeQuery::try_new(r, 1.01).unwrap_err(),
            QueryError::ThresholdOutOfRange { threshold: 1.01 }
        );
        assert!(ProbRangeQuery::try_new(r, -0.2).is_err());
    }

    #[test]
    fn try_new_rejects_bad_regions_like_the_builder() {
        use crate::api::Query;
        // Regression: the NaN/∞ checks used to live only in the fluent
        // builder, so direct construction (pre-generated workloads)
        // silently produced garbage traversal boxes.
        let nan = Rect {
            min: [0.0, f64::NAN],
            max: [10.0, 10.0],
        };
        assert_eq!(
            ProbRangeQuery::try_new(nan, 0.5).unwrap_err(),
            QueryError::NonFiniteRegion { dim: 1 }
        );
        let inf = Rect {
            min: [0.0, 0.0],
            max: [f64::INFINITY, 10.0],
        };
        assert_eq!(
            ProbRangeQuery::try_new(inf, 0.5).unwrap_err(),
            QueryError::NonFiniteRegion { dim: 0 }
        );
        let inverted = Rect {
            min: [5.0, 0.0],
            max: [0.0, 10.0],
        };
        assert_eq!(
            ProbRangeQuery::try_new(inverted, 0.5).unwrap_err(),
            QueryError::EmptyRegion { dim: 0 }
        );
        // Both construction routes go through the same validation path.
        assert_eq!(
            Query::range(nan).threshold(0.5).build().unwrap_err(),
            ProbRangeQuery::try_new(nan, 0.5).unwrap_err()
        );
        assert_eq!(
            Query::range(inverted).threshold(0.5).build().unwrap_err(),
            ProbRangeQuery::try_new(inverted, 0.5).unwrap_err()
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn new_panics_on_nan_region() {
        let nan = Rect {
            min: [f64::NAN, 0.0],
            max: [10.0, 10.0],
        };
        let _ = ProbRangeQuery::new(nan, 0.5);
    }
}
