//! A resident query service over an [`IndexCatalog`]: admission batching
//! onto a worker pool with per-worker [`QueryCtx`] reuse, plus sustained
//! throughput and tail-latency accounting.
//!
//! [`QueryService::serve`] is the serving loop of the multi-index engine:
//! the caller thread **admits** requests onto a shared queue in batches of
//! at most `max_batch` (one queue lock per batch, not per request), while
//! `workers` resident threads drain it — each holding one [`QueryCtx`]
//! across *all* the requests it executes, exactly the reuse pattern
//! [`crate::engine::BatchExecutor`] established for homogeneous batches.
//! Requests name their index; lookup failures and query errors become
//! [`ServiceReply::Error`] for that request alone, never a torn batch.
//!
//! Replies come back in submission order. The accompanying
//! [`ServiceReport`] records per-request latency from *admission* to
//! completion (so queueing delay counts, as it does for a real client)
//! and derives sustained qps plus nearest-rank percentiles (p50/p99).

use crate::api::{ProbIndex, Query, QueryOutcome, RankOutcome, RankQuery};
use crate::catalog_store::IndexCatalog;
use crate::query::QueryCtx;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One request to the service: which named index to hit, and with what.
#[derive(Debug, Clone)]
pub enum ServiceRequest<const D: usize> {
    /// A probabilistic range query against the named index.
    Range {
        /// Catalog name of the target index.
        index: String,
        /// The validated query.
        query: Query<D>,
    },
    /// A probabilistic top-k ranking query against the named index.
    TopK {
        /// Catalog name of the target index.
        index: String,
        /// The validated query.
        query: RankQuery<D>,
    },
}

/// The per-request answer, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceReply {
    /// Range answer.
    Range(QueryOutcome),
    /// Ranking answer.
    TopK(RankOutcome),
    /// This request failed (unknown index, invalid query, storage error);
    /// the rest of the batch is unaffected.
    Error(String),
}

/// Throughput and latency accounting for one [`QueryService::serve`] run.
///
/// Latency is measured per request from admission to completion, so time
/// spent queued behind other requests counts. Percentiles use the
/// nearest-rank method on the sorted latencies.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Requests executed (successes and per-request errors alike).
    pub served: usize,
    /// Wall-clock duration of the whole run, admission included.
    pub wall_nanos: u64,
    /// Per-request latencies, sorted ascending.
    latencies: Vec<u64>,
}

impl ServiceReport {
    /// Sustained queries per second over the run's wall clock. `NAN` when
    /// nothing was served — an empty run has no meaningful rate.
    pub fn queries_per_sec(&self) -> f64 {
        if self.served == 0 {
            return f64::NAN;
        }
        self.served as f64 * 1e9 / self.wall_nanos.max(1) as f64
    }

    /// Nearest-rank latency percentile, `p` in `(0, 100]`. `None` when
    /// nothing was served.
    pub fn percentile_nanos(&self, p: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        assert!(p > 0.0 && p <= 100.0, "percentile {p} outside (0, 100]");
        let rank = (p / 100.0 * self.latencies.len() as f64).ceil() as usize;
        Some(self.latencies[rank.clamp(1, self.latencies.len()) - 1])
    }

    /// Median request latency.
    pub fn p50_nanos(&self) -> Option<u64> {
        self.percentile_nanos(50.0)
    }

    /// 99th-percentile (tail) request latency.
    pub fn p99_nanos(&self) -> Option<u64> {
        self.percentile_nanos(99.0)
    }
}

struct Job<const D: usize> {
    seq: usize,
    submitted: Instant,
    request: ServiceRequest<D>,
}

struct Queue<const D: usize> {
    jobs: Mutex<(VecDeque<Job<D>>, bool)>,
    ready: Condvar,
}

/// A resident worker pool serving heterogeneous query traffic against an
/// [`IndexCatalog`] — see the module docs for the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct QueryService {
    workers: usize,
    max_batch: usize,
}

impl QueryService {
    /// A service with `workers` resident threads admitting requests in
    /// batches of at most `max_batch`.
    ///
    /// # Panics
    ///
    /// If `workers` or `max_batch` is zero.
    pub fn new(workers: usize, max_batch: usize) -> Self {
        assert!(workers > 0, "a service needs at least one worker");
        assert!(max_batch > 0, "admission batches hold at least one request");
        Self { workers, max_batch }
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission batch cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Runs the serving loop over `requests`: admits them in batches,
    /// executes them on the worker pool against `catalog`, and returns
    /// the replies **in submission order** plus the run's report.
    pub fn serve<const D: usize>(
        &self,
        catalog: &IndexCatalog<D>,
        requests: Vec<ServiceRequest<D>>,
    ) -> (Vec<ServiceReply>, ServiceReport) {
        let start = Instant::now();
        let n = requests.len();
        let queue = Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        };

        let mut outcomes: Vec<(usize, ServiceReply, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| scope.spawn(|| worker_loop(&queue, catalog)))
                .collect();

            // Admission: one queue lock per batch, not per request.
            let mut seq = 0;
            let mut requests = requests.into_iter();
            loop {
                let batch: Vec<_> = requests.by_ref().take(self.max_batch).collect();
                if batch.is_empty() {
                    break;
                }
                let submitted = Instant::now();
                // xlint: allow(panic-freedom) -- invariant: job queue mutex poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
                let mut jobs = queue.jobs.lock().expect("job queue mutex poisoned");
                for request in batch {
                    jobs.0.push_back(Job {
                        seq,
                        submitted,
                        request,
                    });
                    seq += 1;
                }
                drop(jobs);
                queue.ready.notify_all();
            }
            // xlint: allow(panic-freedom) -- invariant: job queue mutex poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
            queue.jobs.lock().expect("job queue mutex poisoned").1 = true;
            queue.ready.notify_all();

            handles
                .into_iter()
                // xlint: allow(panic-freedom) -- invariant: service workers don't panic
                .flat_map(|h| h.join().expect("service workers don't panic"))
                .collect()
        });

        let mut replies: Vec<Option<ServiceReply>> = (0..n).map(|_| None).collect();
        let mut latencies = Vec::with_capacity(n);
        for (seq, reply, nanos) in outcomes.drain(..) {
            replies[seq] = Some(reply);
            latencies.push(nanos);
        }
        latencies.sort_unstable();
        let replies = replies
            .into_iter()
            // xlint: allow(panic-freedom) -- invariant: every admitted request is answered
            .map(|r| r.expect("every admitted request is answered"))
            .collect();
        let report = ServiceReport {
            served: n,
            wall_nanos: start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            latencies,
        };
        (replies, report)
    }
}

fn worker_loop<const D: usize>(
    queue: &Queue<D>,
    catalog: &IndexCatalog<D>,
) -> Vec<(usize, ServiceReply, u64)> {
    let mut ctx = QueryCtx::new();
    let mut done = Vec::new();
    loop {
        let job = {
            // xlint: allow(panic-freedom) -- invariant: job queue mutex poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
            let mut jobs = queue.jobs.lock().expect("job queue mutex poisoned");
            loop {
                if let Some(job) = jobs.0.pop_front() {
                    break Some(job);
                }
                if jobs.1 {
                    break None;
                }
                // xlint: allow(panic-freedom) -- invariant: job queue condvar poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
                jobs = queue.ready.wait(jobs).expect("job queue condvar poisoned");
            }
        };
        let Some(job) = job else {
            return done;
        };
        let reply = execute(catalog, &job.request, &mut ctx);
        let nanos = job.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        done.push((job.seq, reply, nanos));
    }
}

fn execute<const D: usize>(
    catalog: &IndexCatalog<D>,
    request: &ServiceRequest<D>,
    ctx: &mut QueryCtx,
) -> ServiceReply {
    let lookup = |name: &str| {
        catalog
            .get(name)
            .ok_or_else(|| format!("no index named {name:?} in the catalog"))
    };
    match request {
        ServiceRequest::Range { index, query } => match lookup(index) {
            Ok(idx) => match idx.try_execute_with(query, ctx) {
                Ok(outcome) => ServiceReply::Range(outcome),
                Err(e) => ServiceReply::Error(e.to_string()),
            },
            Err(e) => ServiceReply::Error(e),
        },
        ServiceRequest::TopK { index, query } => match lookup(index) {
            Ok(idx) => match idx.try_rank_topk_with(query, ctx) {
                Ok(outcome) => ServiceReply::TopK(outcome),
                Err(e) => ServiceReply::Error(e.to_string()),
            },
            Err(e) => ServiceReply::Error(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Query, Refine};
    use crate::catalog::UCatalog;
    use rstar_base::TreeConfig;
    use uncertain_geom::{Point, Rect};
    use uncertain_pdf::{ObjectPdf, UncertainObject};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("utree-service-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn object(id: u64, x: f64, y: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: 6.0,
            },
        )
    }

    fn serving_catalog(name: &str) -> IndexCatalog<2> {
        let dir = temp_dir(name);
        let mut cat = IndexCatalog::create(&dir, 64).unwrap();
        cat.create_index("hot", UCatalog::uniform(10), TreeConfig::default(), 3)
            .unwrap();
        cat.create_index("cold", UCatalog::uniform(10), TreeConfig::default(), 2)
            .unwrap();
        for i in 0..120u64 {
            let obj = object(i, (i % 25) as f64 * 4.0, (i / 25) as f64 * 18.0);
            cat.get_mut("hot").unwrap().insert(&obj);
            cat.get_mut("cold").unwrap().insert(&object(
                1_000 + i,
                (i % 20) as f64 * 5.0,
                (i / 20) as f64 * 15.0,
            ));
        }
        cat.commit().unwrap();
        cat
    }

    fn range_req(index: &str, lo: f64, hi: f64, p: f64) -> ServiceRequest<2> {
        ServiceRequest::Range {
            index: index.to_string(),
            query: Query::range(Rect::new([lo, lo], [hi, hi]))
                .threshold(p)
                .refine(Refine::reference(1e-8))
                .build()
                .unwrap(),
        }
    }

    fn topk_req(index: &str, lo: f64, hi: f64, k: usize) -> ServiceRequest<2> {
        ServiceRequest::TopK {
            index: index.to_string(),
            query: Query::range(Rect::new([lo, lo], [hi, hi]))
                .top(k)
                .refine(Refine::monte_carlo(2_000, 7))
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn replies_match_direct_execution_in_submission_order() {
        let cat = serving_catalog("direct");
        let mut requests = Vec::new();
        for i in 0..40 {
            let lo = (i % 10) as f64 * 3.0;
            if i % 3 == 0 {
                requests.push(topk_req(
                    if i % 2 == 0 { "hot" } else { "cold" },
                    lo,
                    lo + 40.0,
                    5,
                ));
            } else {
                requests.push(range_req(
                    if i % 2 == 0 { "hot" } else { "cold" },
                    lo,
                    lo + 40.0,
                    0.3,
                ));
            }
        }

        let service = QueryService::new(4, 8);
        let (replies, report) = service.serve(&cat, requests.clone());
        assert_eq!(replies.len(), requests.len());
        assert_eq!(report.served, requests.len());

        // Wall-clock stats (`*_nanos`) legitimately differ run to run;
        // everything else must be byte-identical to a direct call.
        let normalize = |mut reply: ServiceReply| {
            match &mut reply {
                ServiceReply::Range(out) => {
                    out.stats.filter_nanos = 0;
                    out.stats.refine_nanos = 0;
                }
                ServiceReply::TopK(out) => {
                    out.stats.filter_nanos = 0;
                    out.stats.refine_nanos = 0;
                }
                ServiceReply::Error(_) => {}
            }
            reply
        };

        let mut ctx = QueryCtx::new();
        for (request, reply) in requests.iter().zip(&replies) {
            let expected = match request {
                ServiceRequest::Range { index, query } => ServiceReply::Range(
                    cat.get(index)
                        .unwrap()
                        .try_execute_with(query, &mut ctx)
                        .unwrap(),
                ),
                ServiceRequest::TopK { index, query } => ServiceReply::TopK(
                    cat.get(index)
                        .unwrap()
                        .try_rank_topk_with(query, &mut ctx)
                        .unwrap(),
                ),
            };
            assert_eq!(normalize(reply.clone()), normalize(expected));
        }
    }

    #[test]
    fn an_unknown_index_fails_alone_not_the_batch() {
        let cat = serving_catalog("unknown");
        let requests = vec![
            range_req("hot", 0.0, 60.0, 0.3),
            range_req("missing", 0.0, 60.0, 0.3),
            topk_req("cold", 0.0, 60.0, 3),
        ];
        let (replies, report) = QueryService::new(2, 2).serve(&cat, requests);
        assert!(matches!(replies[0], ServiceReply::Range(_)));
        let ServiceReply::Error(msg) = &replies[1] else {
            panic!("expected an error reply, got {:?}", replies[1]);
        };
        assert!(msg.contains("missing"), "unhelpful error: {msg}");
        assert!(matches!(replies[2], ServiceReply::TopK(_)));
        assert_eq!(report.served, 3);
    }

    #[test]
    fn the_report_accounts_for_every_request() {
        let cat = serving_catalog("report");
        let requests: Vec<_> = (0..30).map(|_| range_req("hot", 0.0, 50.0, 0.2)).collect();
        let (_, report) = QueryService::new(3, 7).serve(&cat, requests);
        assert_eq!(report.served, 30);
        assert!(report.queries_per_sec().is_finite());
        assert!(report.queries_per_sec() > 0.0);
        let p50 = report.p50_nanos().unwrap();
        let p99 = report.p99_nanos().unwrap();
        assert!(p50 <= p99, "p50 {p50} above p99 {p99}");
        assert!(report.percentile_nanos(100.0).unwrap() >= p99);
    }

    #[test]
    fn an_empty_run_reports_nan_qps_and_no_percentiles() {
        let cat = serving_catalog("empty");
        let (replies, report) = QueryService::new(2, 4).serve(&cat, Vec::new());
        assert!(replies.is_empty());
        assert_eq!(report.served, 0);
        assert!(report.queries_per_sec().is_nan());
        assert!(report.p50_nanos().is_none());
        assert!(report.p99_nanos().is_none());
    }
}
