//! Best-first top-k ranking over PCR-derived probability bounds.
//!
//! The PCR/CFB machinery of Sec 4–5 yields cheap per-entry *bounds* on
//! appearance probability ([`crate::filter::prob_bounds`]), which is
//! exactly what probabilistic ranking needs (cf. Bernecker et al.,
//! probabilistic pruning for similarity ranking in uncertain databases):
//!
//! * the frontier is a priority queue over tree nodes and undecided
//!   objects, keyed by an **upper** probability bound — nodes by the
//!   graded Observation-4 bound (smallest catalog value whose
//!   `e.MBR(p_j)` misses `r_q`), objects by their filter bounds;
//! * refinement is **lazy**: a popped object is integrated only while its
//!   upper bound still beats the current k-th best *lower* bound (exact
//!   probabilities of refined hits merged with the lower bounds of
//!   objects still in the frontier), so most probability computations are
//!   skipped;
//! * the traversal stops as soon as the best remaining upper bound falls
//!   below that k-th lower bound — everything still unexpanded is
//!   provably outside the top k. Ties are never pruned (strict
//!   comparisons throughout), so the answer equals the refine-everything
//!   oracle's under a deterministic refinement mode.
//!
//! The driver is generic over the tree ([`RStarTreeBase`]) and leaf-entry
//! shape, so [`crate::UTree`] (CFB bounds) and [`crate::UPcrTree`] (exact
//! PCR bounds) share it verbatim; [`crate::SeqScan`] implements the
//! oracle by scanning.

use crate::api::{Provenance, RankOutcome, RankQuery, RankedMatch};
use crate::query::{refine_one, QueryCtx};
use page_store::{ObjectHeap, PageId, PageStore, RecordAddr};
use rstar_base::{KeyMetrics, LeafRecord, NodeCodec, RStarTreeBase};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::io;
use std::time::Instant;
use uncertain_geom::Rect;

/// What a frontier entry points at.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RankTarget {
    /// An unexpanded tree node.
    Node(PageId),
    /// An undecided object (heap address, id, lower probability bound).
    Object {
        /// Heap address of the object's pdf record.
        addr: RecordAddr,
        /// Object id.
        id: u64,
        /// The lower bound registered in the pending set.
        lb: f64,
    },
}

/// A frontier entry, ordered by its upper probability bound (max-heap).
///
/// Bounds live in `[0, 1]`, so the IEEE bit pattern orders like the
/// value; ties break on kind (objects before nodes — an exact result
/// tightens the k-th bound sooner) and then on id/page for a fully
/// deterministic pop order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankItem {
    /// Sound upper bound on any reachable object's appearance probability.
    pub(crate) upper: f64,
    /// The node or object this bound belongs to.
    pub(crate) target: RankTarget,
}

impl RankItem {
    fn order_key(&self) -> (u64, u8, u64) {
        let (kind, tag) = match self.target {
            RankTarget::Object { id, .. } => (1u8, id),
            RankTarget::Node(page) => (0u8, page),
        };
        (self.upper.to_bits(), kind, tag)
    }
}

impl PartialEq for RankItem {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}

impl Eq for RankItem {}

impl Ord for RankItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl PartialOrd for RankItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An exact ranking result (refined probability, or pinned to 1 by the
/// validation bound).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankedHit {
    /// Exact appearance probability.
    pub(crate) p: f64,
    /// Object id.
    pub(crate) id: u64,
    /// True when `p = 1` was certified without integration.
    pub(crate) validated: bool,
}

/// The leaf-entry surface the ranking driver needs, shared by the U-tree
/// and U-PCR entry types.
pub(crate) trait RankLeaf<const D: usize> {
    /// MBR of the object's uncertainty region.
    fn mbr(&self) -> &Rect<D>;
    /// Heap address of the pdf record.
    fn addr(&self) -> RecordAddr;
    /// Object id.
    fn oid(&self) -> u64;
}

impl<const D: usize> RankLeaf<D> for crate::entry::ULeafEntry<D> {
    fn mbr(&self) -> &Rect<D> {
        &self.mbr
    }
    fn addr(&self) -> RecordAddr {
        self.addr
    }
    fn oid(&self) -> u64 {
        self.id
    }
}

impl<const D: usize> RankLeaf<D> for crate::entry::UPcrLeafEntry<D> {
    fn mbr(&self) -> &Rect<D> {
        &self.mbr
    }
    fn addr(&self) -> RecordAddr {
        self.addr
    }
    fn oid(&self) -> u64 {
        self.id
    }
}

/// Inserts a hit keeping `ranked` sorted by `(p desc, id asc)` and capped
/// at `k` — entries that fall off the end are exact and below the k-th
/// exact value, so they can never re-enter.
pub(crate) fn push_hit(ranked: &mut Vec<RankedHit>, k: usize, hit: RankedHit) {
    let at = ranked.partition_point(|h| h.p > hit.p || (h.p == hit.p && h.id < hit.id));
    ranked.insert(at, hit);
    ranked.truncate(k);
}

/// The current k-th best guaranteed lower bound: exact probabilities of
/// ranked hits merged with the lower bounds of objects still in the
/// frontier. Returns `-1.0` while fewer than `k` bounds exist (every
/// upper bound beats it). Each object contributes exactly once — its
/// pending entry is removed before it is refined.
pub(crate) fn kth_bound(ranked: &[RankedHit], pending: &BTreeSet<(u64, u64)>, k: usize) -> f64 {
    let mut exact = ranked.iter().map(|h| h.p).peekable();
    let mut lbs = pending
        .iter()
        .rev()
        .map(|(bits, _)| f64::from_bits(*bits))
        .peekable();
    let mut kth = -1.0;
    for _ in 0..k {
        kth = match (exact.peek(), lbs.peek()) {
            (Some(&a), Some(&b)) if a >= b => {
                exact.next();
                a
            }
            (Some(&a), None) => {
                exact.next();
                a
            }
            (_, Some(&b)) => {
                lbs.next();
                b
            }
            (None, None) => return -1.0,
        };
    }
    kth
}

/// Runs the best-first bounded ranking over a tree + heap pair.
///
/// `node_upper` maps a bounding key to a sound upper bound on every
/// object in its subtree; `entry_bounds` maps a leaf entry to its
/// `(lower, upper)` probability bounds. All per-query state lives in
/// `ctx` (`&self` on the index end-to-end).
pub(crate) fn rank_best_first<const D: usize, M, L, C, S, NB, EB>(
    tree: &RStarTreeBase<D, M, L, C, S>,
    heap: &ObjectHeap<S>,
    query: &RankQuery<D>,
    ctx: &mut QueryCtx,
    node_upper: NB,
    entry_bounds: EB,
) -> io::Result<RankOutcome>
where
    M: KeyMetrics<D>,
    L: LeafRecord<M::Key> + RankLeaf<D>,
    C: NodeCodec<M::Key, L>,
    S: PageStore,
    NB: Fn(&M::Key) -> f64,
    EB: Fn(&L) -> (f64, f64),
{
    ctx.begin();
    let t_total = Instant::now();
    let rq = query.region();
    let k = query.k();
    let mode = query.refine_mode();

    ctx.frontier.push(RankItem {
        upper: 1.0,
        target: RankTarget::Node(tree.root_page()),
    });
    // Staging buffers for one node expansion (the two `read_node`
    // callbacks each own one, the frontier absorbs both afterwards).
    let mut staged_nodes: Vec<RankItem> = Vec::new();
    let mut staged_objs: Vec<RankItem> = Vec::new();

    while let Some(item) = ctx.frontier.pop() {
        // An object's own lower bound must not defend it against itself.
        if let RankTarget::Object { id, lb, .. } = item.target {
            ctx.pending.remove(&(lb.to_bits(), id));
        }
        let tau = kth_bound(&ctx.ranked, &ctx.pending, k);
        if item.upper < tau {
            // The frontier pops in descending upper-bound order, so every
            // remaining node/object is provably outside the top k — and
            // all pending lower bounds sit below `tau` too, which means
            // the k bounds at or above it are exact hits already.
            break;
        }
        match item.target {
            RankTarget::Node(page) => {
                let QueryCtx {
                    stats,
                    frontier,
                    pending,
                    ranked,
                    ..
                } = &mut *ctx;
                stats.node_reads += 1;
                tree.read_node(
                    page,
                    |key, child| {
                        let b = node_upper(key).min(item.upper);
                        // Strict pruning only: a subtree tying `tau` may
                        // still hold an object that ties into the top k.
                        if b > 0.0 && b >= tau {
                            staged_nodes.push(RankItem {
                                upper: b,
                                target: RankTarget::Node(child),
                            });
                        }
                    },
                    |rec| {
                        stats.visited += 1;
                        if rq.contains_rect(rec.mbr()) {
                            // Pinned to P = 1 by the MBR alone — the one
                            // refinement-free report, identical on every
                            // backend because it ignores the tightness of
                            // the PCR approximation at hand.
                            stats.validated += 1;
                            push_hit(
                                ranked,
                                k,
                                RankedHit {
                                    p: 1.0,
                                    id: rec.oid(),
                                    validated: true,
                                },
                            );
                            return;
                        }
                        let (lb, ub) = entry_bounds(rec);
                        let ub = ub.min(item.upper);
                        let lb = lb.min(ub);
                        if ub <= 0.0 {
                            stats.pruned += 1;
                            return;
                        }
                        stats.candidates += 1;
                        pending.insert((lb.to_bits(), rec.oid()));
                        staged_objs.push(RankItem {
                            upper: ub,
                            target: RankTarget::Object {
                                addr: rec.addr(),
                                id: rec.oid(),
                                lb,
                            },
                        });
                    },
                )?;
                frontier.extend(staged_nodes.drain(..));
                frontier.extend(staged_objs.drain(..));
            }
            RankTarget::Object { addr, id, .. } => {
                let p = refine_one(heap, addr, id, rq, mode, ctx)?;
                if p > 0.0 {
                    push_hit(
                        &mut ctx.ranked,
                        k,
                        RankedHit {
                            p,
                            id,
                            validated: false,
                        },
                    );
                }
            }
        }
    }

    Ok(finish(ctx, t_total))
}

/// Assembles the outcome from a context's ranked hits (shared with the
/// sequential-scan oracle) and settles the wall-clock split.
pub(crate) fn finish(ctx: &mut QueryCtx, t_total: Instant) -> RankOutcome {
    let matches: Vec<RankedMatch> = ctx
        .ranked
        .iter()
        .map(|h| RankedMatch {
            id: h.id,
            p: h.p,
            provenance: if h.validated {
                Provenance::Validated
            } else {
                Provenance::Refined { p: h.p }
            },
        })
        .collect();
    ctx.stats.results = matches.len() as u64;
    ctx.stats.filter_nanos = t_total
        .elapsed()
        .as_nanos()
        .saturating_sub(ctx.stats.refine_nanos);
    RankOutcome {
        matches,
        stats: ctx.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(p: f64, id: u64) -> RankedHit {
        RankedHit {
            p,
            id,
            validated: false,
        }
    }

    #[test]
    fn push_hit_keeps_descending_order_capped_at_k() {
        let mut ranked = Vec::new();
        for (p, id) in [(0.4, 1), (0.9, 2), (0.6, 3), (0.9, 0), (0.5, 4)] {
            push_hit(&mut ranked, 3, hit(p, id));
        }
        let got: Vec<(f64, u64)> = ranked.iter().map(|h| (h.p, h.id)).collect();
        // Ties (0.9) order by ascending id; 0.5 and 0.4 fell off the cap.
        assert_eq!(got, vec![(0.9, 0), (0.9, 2), (0.6, 3)]);
    }

    #[test]
    fn kth_bound_merges_exact_and_pending() {
        let ranked = vec![hit(0.8, 1), hit(0.3, 2)];
        let mut pending = BTreeSet::new();
        pending.insert((0.5f64.to_bits(), 7));
        pending.insert((0.1f64.to_bits(), 8));
        // Merged descending: 0.8, 0.5, 0.3, 0.1.
        assert_eq!(kth_bound(&ranked, &pending, 1), 0.8);
        assert_eq!(kth_bound(&ranked, &pending, 2), 0.5);
        assert_eq!(kth_bound(&ranked, &pending, 3), 0.3);
        assert_eq!(kth_bound(&ranked, &pending, 4), 0.1);
        // Fewer than k known bounds: every upper bound must beat it.
        assert_eq!(kth_bound(&ranked, &pending, 5), -1.0);
    }

    #[test]
    fn rank_items_order_by_upper_bound_then_kind() {
        let node = |upper: f64, page: u64| RankItem {
            upper,
            target: RankTarget::Node(page),
        };
        let obj = |upper: f64, id: u64| RankItem {
            upper,
            target: RankTarget::Object {
                addr: RecordAddr { page: 0, slot: 0 },
                id,
                lb: 0.0,
            },
        };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(node(0.5, 1));
        heap.push(obj(0.9, 10));
        heap.push(node(0.9, 2));
        heap.push(obj(0.2, 11));
        // Highest bound first; at equal bounds the object pops before the
        // node (an exact result tightens tau sooner).
        assert!(matches!(
            heap.pop().unwrap().target,
            RankTarget::Object { id: 10, .. }
        ));
        assert!(matches!(heap.pop().unwrap().target, RankTarget::Node(2)));
        assert!(matches!(heap.pop().unwrap().target, RankTarget::Node(1)));
        assert!(matches!(
            heap.pop().unwrap().target,
            RankTarget::Object { id: 11, .. }
        ));
    }
}
