//! # utree — indexing multi-dimensional uncertain data with arbitrary pdfs
//!
//! A faithful implementation of Tao, Cheng, Xiao, Ngai, Kao, Prabhakar:
//! *"Indexing Multi-Dimensional Uncertain Data with Arbitrary Probability
//! Density Functions"*, VLDB 2005.
//!
//! The library answers **probabilistic range queries** — given a rectangle
//! `r_q` and a threshold `p_q`, find every uncertain object whose
//! appearance probability `∫_{ur ∩ r_q} pdf` is at least `p_q` — while
//! computing as few of those expensive integrals as possible:
//!
//! 1. [`PcrSet`] pre-computes *probabilistically constrained regions*
//!    at the catalog values ([`UCatalog`]);
//! 2. [`cfb::fit_cfb_pair`] compresses them into two linear
//!    *conservative functional boxes* by Simplex LP (8d floats per object);
//! 3. [`UTree`] indexes the CFBs in an R*-tree derivative whose
//!    intermediate entries prune whole subtrees (Observation 4), and whose
//!    leaf entries prune/validate objects without integration
//!    (Observation 3);
//! 4. only the surviving candidates reach the Monte-Carlo refinement
//!    ([`query::refine_candidates`]).
//!
//! [`UPcrTree`] (PCRs stored verbatim) and [`SeqScan`] (no index) are the
//! paper's comparison points. All three implement the backend-agnostic
//! [`ProbIndex`] trait and are built/queried through the fluent [`api`]
//! surface.
//!
//! Besides threshold queries, the same machinery answers **probabilistic
//! top-k ranking** (`Query::range(..).top(k)` /
//! [`ProbIndex::rank_topk`]): [`filter::prob_bounds`] grades the filter
//! rules into per-object probability bounds, and the trees run a
//! best-first, lazily-refining traversal that computes only a fraction of
//! the appearance probabilities a scan would. The trees are additionally generic over their
//! [`page_store::PageStore`]: `save(dir)` persists an index on disk and
//! [`DiskUTree`]`::open(dir, frames)` reopens it cold through a latched
//! LRU buffer pool with identical query answers.
//!
//! Queries are **read-only** (`&self` end-to-end; per-query state lives in
//! a [`QueryCtx`]), so one shared index serves concurrent readers — the
//! [`engine::BatchExecutor`] fans whole workloads across a worker pool
//! with byte-identical results to a sequential run:
//!
//! ```
//! use utree::{ProbIndex, Query, Refine, UTree};
//! use uncertain_geom::{Point, Rect};
//! use uncertain_pdf::{ObjectPdf, UncertainObject};
//!
//! let mut tree = UTree::<2>::builder().uniform_catalog(10).build()?;
//! tree.insert(&UncertainObject::new(
//!     1,
//!     ObjectPdf::UniformBall { center: Point::new([40.0, 40.0]), radius: 15.0 },
//! ));
//! let outcome = Query::range(Rect::new([0.0, 0.0], [100.0, 100.0]))
//!     .threshold(0.7)
//!     .refine(Refine::reference(1e-8))
//!     .run(&tree)?;
//! assert_eq!(outcome.ids(), vec![1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod api;
pub mod catalog;
pub mod catalog_store;
pub mod cfb;
pub mod engine;
pub mod entry;
pub mod epoch;
pub mod filter;
pub mod key;
pub mod object_codec;
pub mod pcr;
mod persist;
pub mod quadratic;
pub mod query;
mod rank;
pub mod seqscan;
pub mod service;
pub mod shard;
pub mod tree;
pub mod upcr;

pub use api::{
    IndexBackend, IndexBuilder, IndexError, Match, ProbIndex, Provenance, Query, QueryBuilder,
    QueryError, QueryOutcome, RankBuilder, RankOutcome, RankQuery, RankedMatch, Refine,
};
pub use catalog::UCatalog;
pub use catalog_store::{IndexCatalog, IndexDef};
pub use cfb::{fit_cfb_pair, Cfb, CfbPair, CfbView};
pub use engine::{BatchExecutor, BatchOutcome, RankBatchOutcome};
pub use epoch::{EpochIndex, EpochSnapshot};
pub use filter::{
    filter_object, filter_object_planned, prob_bounds, prob_bounds_planned, FilterOutcome,
    PcrAccess, PreparedQuery,
};
pub use key::{PcrKey, PcrMetrics, UKey, UMetrics};
pub use pcr::PcrSet;
pub use quadratic::{fit_quad_cfb_pair, QuadCfb, QuadCfbPair, QuadCfbView};
pub use query::{
    refine_candidates, refine_candidates_scored, ProbRangeQuery, QueryCtx, QueryStats, RefineMode,
};
pub use seqscan::SeqScan;
pub use service::{QueryService, ServiceReply, ServiceReport, ServiceRequest};
pub use shard::{canonicalize, shard_of, ShardedIndex};
pub use tree::{InsertStats, QueryOptions, UTree};
pub use upcr::UPcrTree;

/// The page store of a disk-backed tree: an LRU buffer pool over a
/// journaling [`page_store::WalStore`] over the snapshot file. Commits go
/// to the write-ahead log first; `open` replays the log over the snapshot.
pub type DiskStore = page_store::BufferPool<page_store::WalStore<page_store::DiskPageFile>>;

/// A [`UTree`] reopened from disk through a crash-safe write path — what
/// [`UTree::open`] returns.
pub type DiskUTree<const D: usize> = UTree<D, DiskStore>;

/// A [`UPcrTree`] reopened from disk through a crash-safe write path —
/// what [`UPcrTree::open`] returns.
pub type DiskUPcrTree<const D: usize> = UPcrTree<D, DiskStore>;
