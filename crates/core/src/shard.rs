//! Hash-sharding one logical dataset across several physical trees, with
//! scatter-gather query execution.
//!
//! A [`ShardedIndex`] owns `n` disjoint [`UTree`]s and routes every object
//! to exactly one of them by a stable hash of its id
//! ([`shard_of`]). Queries scatter across all shards and gather one
//! answer:
//!
//! * **range** queries union the per-shard matches into a canonical order
//!   (validated matches by ascending id, then refined matches by
//!   ascending id — see [`canonicalize`]);
//! * **top-k** queries merge the per-shard [`RankedMatch`] streams by the
//!   ranking order (descending probability, ties by ascending id) under a
//!   shared τ cutoff: once `k` merged matches are held, a shard stream is
//!   abandoned at the first element that cannot beat the current k-th
//!   best — the rest of that stream is sorted and can't either.
//!
//! Both answers are **byte-identical to a single unsharded tree** over
//! the same objects, because every per-object decision in the query path
//! is entry-local: validation/pruning and probability bounds come from
//! the object's own CFB payload, and ranking refinement draws from a
//! per-`(seed, id)` stream (see
//! [`crate::query::RefineMode`]). The one exception is Monte-Carlo
//! **range** refinement, which consumes one generator across the whole
//! pass in candidate order — per-object estimates then depend on which
//! other candidates share the pass, so use [`crate::api::Refine::reference`]
//! when cross-partitioning reproducibility matters.
//!
//! Per-object provenance and probabilities survive re-partitioning, so
//! shard counts can change offline (rebuild) without changing any answer.
//! Shape-dependent *cost* counters (`node_reads`, `visited`, `pruned`)
//! naturally differ from the oracle's; the entry-local counters
//! (`validated`, `candidates`, `results`, `prob_computations`) sum to
//! exactly the oracle's values.
//!
//! [`ShardedIndex`] implements [`ProbIndex`], so it drops into everything
//! built on the trait: [`crate::engine::BatchExecutor`] batches,
//! [`crate::service::QueryService`] serving, and the fluent query
//! builders.

use crate::api::{
    Match, ProbIndex, Provenance, Query, QueryError, QueryOutcome, RankOutcome, RankQuery,
    RankedMatch,
};
use crate::catalog::UCatalog;
use crate::query::{QueryCtx, QueryStats};
use crate::tree::{InsertStats, UTree};
use page_store::{PageFile, PageStore};
use rstar_base::TreeConfig;
use std::borrow::Borrow;
use std::cmp::Ordering;
use uncertain_pdf::UncertainObject;

/// The shard an object id routes to: a SplitMix64-style finalizer over the
/// id, reduced modulo the shard count. Stable across processes, platforms
/// and reopens — the routing *is* part of the persistent format once a
/// sharded index is saved.
pub fn shard_of(id: u64, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shard_count as u64) as usize
}

/// Rewrites a [`QueryOutcome`]'s matches into the canonical scatter-gather
/// order — validated matches by ascending id, then refined matches by
/// ascending id — without touching stats. Apply to a single-tree oracle's
/// outcome before comparing it byte-for-byte against a sharded answer
/// (the oracle reports matches in its own traversal order).
pub fn canonicalize(mut outcome: QueryOutcome) -> QueryOutcome {
    let (mut validated, mut refined): (Vec<_>, Vec<_>) = outcome
        .matches
        .drain(..)
        .partition(|m| m.provenance == Provenance::Validated);
    validated.sort_unstable_by_key(|m| m.id);
    refined.sort_unstable_by_key(|m| m.id);
    validated.append(&mut refined);
    outcome.matches = validated;
    outcome
}

/// The ranking order: descending probability, ties by ascending id — the
/// same total order [`ProbIndex::rank_topk`] sorts its answer by.
fn rank_order(a: &RankedMatch, b: &RankedMatch) -> Ordering {
    b.p.total_cmp(&a.p).then(a.id.cmp(&b.id))
}

/// One logical uncertain-object index partitioned across several physical
/// [`UTree`] shards (see the module docs for the exact answer semantics).
pub struct ShardedIndex<const D: usize, S: PageStore = PageFile> {
    shards: Vec<UTree<D, S>>,
}

impl<const D: usize> ShardedIndex<D, PageFile> {
    /// An empty in-memory sharded index: `shard_count` U-trees over the
    /// same catalog and R* tuning.
    pub fn new(catalog: UCatalog, cfg: TreeConfig, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "a sharded index needs at least one shard");
        Self {
            shards: (0..shard_count)
                .map(|_| UTree::with_config(catalog.clone(), cfg))
                .collect(),
        }
    }
}

impl<const D: usize, S: PageStore> ShardedIndex<D, S> {
    /// Assembles a sharded index from pre-built physical trees (the
    /// catalog's open path; also how a caller shards over custom stores).
    /// Shard order is routing-significant: tree `i` serves
    /// [`shard_of`]`(id, n) == i`.
    pub fn from_trees(shards: Vec<UTree<D, S>>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded index needs at least one shard"
        );
        Self { shards }
    }

    /// Number of physical shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `id` routes to.
    pub fn shard_for(&self, id: u64) -> usize {
        shard_of(id, self.shards.len())
    }

    /// The physical shard trees, in routing order.
    pub fn shards(&self) -> &[UTree<D, S>] {
        &self.shards
    }

    /// Mutable access for the catalog's commit/checkpoint machinery.
    pub(crate) fn shards_mut(&mut self) -> &mut [UTree<D, S>] {
        &mut self.shards
    }

    /// Scatter-gather range execution (see module docs for the canonical
    /// merge order). The context is reused across shards; the returned
    /// stats are the sum over shards.
    fn execute_scatter(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        let mut stats = QueryStats::default();
        let mut validated: Vec<u64> = Vec::new();
        let mut refined: Vec<(u64, f64)> = Vec::new();
        for shard in &self.shards {
            let out = shard.try_execute_with(query, ctx)?;
            stats += &out.stats;
            for m in out.matches {
                match m.provenance {
                    Provenance::Validated => validated.push(m.id),
                    Provenance::Refined { p } => refined.push((m.id, p)),
                }
            }
        }
        validated.sort_unstable();
        refined.sort_unstable_by_key(|&(id, _)| id);
        let matches = validated
            .into_iter()
            .map(|id| Match {
                id,
                provenance: Provenance::Validated,
            })
            .chain(refined.into_iter().map(|(id, p)| Match {
                id,
                provenance: Provenance::Refined { p },
            }))
            .collect();
        Ok(QueryOutcome { matches, stats })
    }

    /// Scatter-gather top-k: every shard answers its local top-k, and the
    /// sorted streams merge under the shared τ cutoff. Correct because an
    /// object in the global top-k is beaten by fewer than `k` objects
    /// globally, hence by fewer than `k` within its own shard — so it is
    /// always present in its shard's local stream.
    fn rank_scatter(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        let k = query.k();
        let mut stats = QueryStats::default();
        let mut merged: Vec<RankedMatch> = Vec::with_capacity(k);
        for shard in &self.shards {
            let out = shard.try_rank_topk_with(query, ctx)?;
            stats += &out.stats;
            for m in out.matches {
                if merged.len() == k {
                    // τ cutoff: the k-th merged match bounds admission.
                    // This stream is sorted by the same order, so its
                    // first non-admissible element ends it.
                    // xlint: allow(panic-freedom) -- invariant: k >= 1 when full
                    let tau = merged.last().expect("k >= 1 when full");
                    if rank_order(&m, tau) != Ordering::Less {
                        break;
                    }
                }
                let pos = merged.partition_point(|held| rank_order(held, &m) == Ordering::Less);
                merged.insert(pos, m);
                merged.truncate(k);
            }
        }
        Ok(RankOutcome {
            matches: merged,
            stats,
        })
    }
}

impl<const D: usize, S: PageStore> ProbIndex<D> for ShardedIndex<D, S> {
    fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        let s = self.shard_for(obj.id);
        self.shards[s].insert(obj)
    }

    fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        let s = self.shard_for(obj.id);
        self.shards[s].delete(obj)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn index_size_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.index_size_bytes()).sum()
    }

    fn heap_size_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.heap_size_bytes()).sum()
    }

    fn io_counters(&self) -> u64 {
        self.shards.iter().map(|s| s.io_counters()).sum()
    }

    fn reset_io(&self) {
        for s in &self.shards {
            s.reset_io();
        }
    }

    fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        self.execute_scatter(query, ctx)
    }

    fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        self.rank_scatter(query, ctx)
    }

    /// Partitions the load by routing hash, then bulk-loads every shard —
    /// each shard gets the packed STR build when it starts empty.
    fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        let n = self.shards.len();
        let mut parts: Vec<Vec<UncertainObject<D>>> = vec![Vec::new(); n];
        for obj in objs {
            let obj = obj.borrow();
            parts[shard_of(obj.id, n)].push(obj.clone());
        }
        let mut acc = InsertStats::default();
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            acc += &shard.bulk_load(&part);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Refine;
    use uncertain_geom::{Point, Rect};
    use uncertain_pdf::ObjectPdf;

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    fn dataset(n: u64) -> Vec<UncertainObject<2>> {
        (0..n)
            .map(|i| {
                ball(
                    i,
                    200.0 + (i % 83) as f64 * 110.0,
                    200.0 + ((i * 13) % 71) as f64 * 125.0,
                    30.0 + (i % 7) as f64 * 25.0,
                )
            })
            .collect()
    }

    #[test]
    fn routing_is_stable_and_total() {
        for n in [1usize, 2, 4, 7] {
            for id in 0..500u64 {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, shard_of(id, n), "routing must be deterministic");
            }
        }
        // All shards actually receive load at small counts.
        for n in [2usize, 4, 7] {
            let mut seen = vec![false; n];
            for id in 0..200u64 {
                seen[shard_of(id, n)] = true;
            }
            assert!(seen.iter().all(|&s| s), "degenerate routing for n={n}");
        }
    }

    #[test]
    fn sharded_range_answers_match_the_oracle() {
        let objs = dataset(400);
        let mut oracle = UTree::<2>::with_config(UCatalog::uniform(6), TreeConfig::default());
        oracle.bulk_load(&objs);
        let query = Query::range(Rect::new([500.0, 500.0], [6500.0, 6500.0]))
            .threshold(0.3)
            .refine(Refine::reference(1e-8))
            .build()
            .unwrap();
        let expect = canonicalize(oracle.execute(&query));

        for n in [1usize, 2, 4, 7] {
            let mut sharded =
                ShardedIndex::<2>::new(UCatalog::uniform(6), TreeConfig::default(), n);
            sharded.bulk_load(&objs);
            assert_eq!(sharded.len(), objs.len());
            let got = sharded.execute(&query);
            assert_eq!(got.matches, expect.matches, "n={n} diverged from oracle");
            // Entry-local counters sum to exactly the oracle's.
            assert_eq!(got.stats.validated, expect.stats.validated);
            assert_eq!(got.stats.candidates, expect.stats.candidates);
            assert_eq!(got.stats.results, expect.stats.results);
            assert_eq!(got.stats.prob_computations, expect.stats.prob_computations);
        }
    }

    #[test]
    fn sharded_topk_merges_to_the_oracle_answer() {
        let objs = dataset(400);
        let mut oracle = UTree::<2>::with_config(UCatalog::uniform(6), TreeConfig::default());
        oracle.bulk_load(&objs);
        for (k, seed) in [(1usize, 1u64), (10, 7), (25, 99)] {
            let query = Query::range(Rect::new([1000.0, 1000.0], [7000.0, 7000.0]))
                .top(k)
                .refine(Refine::monte_carlo(4_000, seed))
                .build()
                .unwrap();
            let expect = oracle.rank_topk(&query);
            for n in [1usize, 2, 4, 7] {
                let mut sharded =
                    ShardedIndex::<2>::new(UCatalog::uniform(6), TreeConfig::default(), n);
                sharded.bulk_load(&objs);
                let got = sharded.rank_topk(&query);
                assert_eq!(
                    got.matches, expect.matches,
                    "top-{k} n={n} diverged from oracle"
                );
            }
        }
    }

    #[test]
    fn inserts_and_deletes_route_consistently() {
        let objs = dataset(120);
        let mut sharded = ShardedIndex::<2>::new(UCatalog::uniform(6), TreeConfig::default(), 4);
        for o in &objs {
            sharded.insert(o);
        }
        assert_eq!(sharded.len(), 120);
        let per_shard: Vec<_> = sharded.shards().iter().map(|s| s.len()).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 120);
        assert!(per_shard.iter().all(|&l| l > 0), "all shards should fill");
        for o in objs.iter().take(40) {
            assert!(sharded.delete(o), "routed delete must find its object");
        }
        assert!(!sharded.delete(&ball(9999, 100.0, 100.0, 10.0)));
        assert_eq!(sharded.len(), 80);
    }

    #[test]
    fn sharded_index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedIndex<2>>();
        assert_send_sync::<ShardedIndex<2, crate::DiskStore>>();
    }
}
