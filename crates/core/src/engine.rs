//! The parallel batch query engine.
//!
//! A [`BatchExecutor`] fans a workload of validated [`Query`]s across a
//! scoped worker pool over **one shared index**. This is the serving shape
//! the paper's structures exist for: filter-step throughput over many
//! concurrent requests, not single-query latency. It builds directly on
//! the two guarantees the rest of the crate provides:
//!
//! * query execution is read-only on the index (`&self` end-to-end), so a
//!   `Sync` backend can be shared by reference across threads — the
//!   in-memory [`crate::UTree`], the disk-backed [`crate::DiskUTree`]
//!   behind its latched buffer pool, [`crate::UPcrTree`] and
//!   [`crate::SeqScan`] all qualify;
//! * all per-query mutable state lives in a [`QueryCtx`], one per worker,
//!   and the refinement RNG is re-seeded per query — so results (matches,
//!   provenance, per-query cost counters) are **byte-identical** to a
//!   sequential run, whatever the thread count or scheduling.
//!
//! Workers pull queries off a shared atomic cursor (work stealing by
//! construction: an expensive query never blocks the rest of the batch
//! behind one thread), and outcomes are returned in workload order.
//!
//! ```
//! use utree::engine::BatchExecutor;
//! use utree::{ProbIndex, Query, Refine, UTree};
//! use uncertain_geom::{Point, Rect};
//! use uncertain_pdf::{ObjectPdf, UncertainObject};
//!
//! let mut tree = UTree::<2>::builder().uniform_catalog(6).build()?;
//! for id in 0..32 {
//!     tree.insert(&UncertainObject::new(
//!         id,
//!         ObjectPdf::UniformBall {
//!             center: Point::new([id as f64 * 30.0, 500.0]),
//!             radius: 20.0,
//!         },
//!     ));
//! }
//! let queries: Vec<_> = (0..8)
//!     .map(|i| {
//!         Query::range(Rect::cube(&Point::new([i as f64 * 120.0, 500.0], ), 200.0))
//!             .threshold(0.5)
//!             .refine(Refine::reference(1e-8))
//!             .build()
//!     })
//!     .collect::<Result<_, _>>()?;
//!
//! let batch = BatchExecutor::new(4).run(&tree, &queries);
//! assert_eq!(batch.outcomes.len(), queries.len());
//! // Identical to the sequential run, in order and in content:
//! let seq = BatchExecutor::run_sequential(&tree, &queries);
//! for (p, s) in batch.outcomes.iter().zip(&seq.outcomes) {
//!     assert_eq!(p.matches, s.matches);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::api::{ProbIndex, Query, QueryOutcome, RankOutcome, RankQuery};
use crate::query::{QueryCtx, QueryStats};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Fans `items` across `workers` scoped threads (shared atomic cursor,
/// one reused [`QueryCtx`] per worker) and returns the outputs in input
/// order. The generic core behind both the range-query and the ranking
/// batch paths.
///
/// A panic inside `f` is caught per item: the worker keeps draining the
/// cursor (so every item is claimed exactly once and no sibling worker's
/// finished output is torn down mid-batch), and the *original* panic
/// payload is re-raised after all workers join. Without the per-item
/// catch, one bad query would unwind its worker thread and turn the whole
/// batch into a generic "worker panicked" join failure.
fn fan_out<Q, T, F>(workers: usize, items: &[Q], f: F) -> Vec<T>
where
    Q: Sync,
    T: Send,
    F: Fn(&Q, &mut QueryCtx) -> T + Sync,
{
    let cursor = AtomicUsize::new(0);
    type Panic = Box<dyn std::any::Any + Send + 'static>;
    type WorkerResult<T> = (Vec<(usize, T)>, Option<Panic>);
    let worker_results: Vec<WorkerResult<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = QueryCtx::new();
                    let mut local = Vec::new();
                    let mut first_panic: Option<Panic> = None;
                    loop {
                        // ordering: Relaxed suffices — the fetch_add
                        // itself hands out each index exactly once, and
                        // the scope join publishes the results.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(item, &mut ctx))) {
                            Ok(out) => local.push((i, out)),
                            Err(payload) => {
                                // The context may hold half-built query
                                // state; start the next item fresh.
                                ctx = QueryCtx::new();
                                first_panic.get_or_insert(payload);
                            }
                        }
                    }
                    (local, first_panic)
                })
            })
            .collect();
        handles
            .into_iter()
            // xlint: allow(panic-freedom) -- invariant: batch worker panicked
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut first_panic: Option<Panic> = None;
    let mut by_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(worker_results.len());
    for (local, panic) in worker_results {
        by_worker.push(local);
        if let Some(p) = panic {
            first_panic.get_or_insert(p);
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(items.len(), || None);
    for (i, outcome) in by_worker.drain(..).flatten() {
        debug_assert!(slots[i].is_none(), "item {i} executed twice");
        slots[i] = Some(outcome);
    }
    slots
        .into_iter()
        // xlint: allow(panic-freedom) -- invariant: every item claimed exactly once
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

/// Executes batches of queries over one shared index with a fixed number
/// of workers (`std::thread::scope`; no queries outlive the call).
///
/// Construction is cheap and the executor is reusable; it holds no state
/// beyond the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    workers: usize,
}

impl Default for BatchExecutor {
    /// One worker per available CPU (at least one).
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }
}

impl BatchExecutor {
    /// An executor with exactly `workers` worker threads (>= 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "batch executor needs at least one worker");
        Self { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `queries` against the shared `index`, returning outcomes in
    /// workload order plus the merged cost counters.
    ///
    /// Requires `I: Sync` — the compiler's proof that sharing `&index`
    /// across the workers is sound. For a backend that is not `Sync`
    /// (e.g. a custom thread-bound store), use
    /// [`BatchExecutor::run_sequential`], which places no such bound.
    /// With one worker (or fewer than two queries) no threads are spawned.
    pub fn run<const D: usize, I>(&self, index: &I, queries: &[Query<D>]) -> BatchOutcome
    where
        I: ProbIndex<D> + Sync + ?Sized,
    {
        let workers = self.workers.min(queries.len().max(1));
        if workers <= 1 {
            return Self::run_with_workers(index, queries, workers);
        }

        let t0 = Instant::now();
        let outcomes = fan_out(workers, queries, |q, ctx| index.execute_with(q, ctx));
        BatchOutcome::assemble(outcomes, workers, t0.elapsed().as_nanos())
    }

    /// Runs a batch of **top-k ranking queries** against the shared
    /// `index`, returning outcomes in workload order plus the merged cost
    /// counters — the ranking twin of [`BatchExecutor::run`], with the
    /// same guarantees: per-worker contexts carry all mutable state, and
    /// the per-object refinement seeding makes every answer independent
    /// of scheduling.
    pub fn run_ranked<const D: usize, I>(
        &self,
        index: &I,
        queries: &[RankQuery<D>],
    ) -> RankBatchOutcome
    where
        I: ProbIndex<D> + Sync + ?Sized,
    {
        let workers = self.workers.min(queries.len().max(1));
        let t0 = Instant::now();
        let outcomes = if workers <= 1 {
            let mut ctx = QueryCtx::new();
            queries
                .iter()
                .map(|q| index.rank_topk_with(q, &mut ctx))
                .collect()
        } else {
            fan_out(workers, queries, |q, ctx| index.rank_topk_with(q, ctx))
        };
        RankBatchOutcome::assemble(outcomes, workers.max(1), t0.elapsed().as_nanos())
    }

    /// Runs a ranking batch on the calling thread, in order, with one
    /// reused context — the baseline [`BatchExecutor::run_ranked`] is
    /// verified against, available for non-`Sync` backends.
    pub fn run_ranked_sequential<const D: usize, I>(
        index: &I,
        queries: &[RankQuery<D>],
    ) -> RankBatchOutcome
    where
        I: ProbIndex<D> + ?Sized,
    {
        let t0 = Instant::now();
        let mut ctx = QueryCtx::new();
        let outcomes: Vec<RankOutcome> = queries
            .iter()
            .map(|q| index.rank_topk_with(q, &mut ctx))
            .collect();
        RankBatchOutcome::assemble(outcomes, 1, t0.elapsed().as_nanos())
    }

    /// Runs the batch on the calling thread, in order, with one reused
    /// context — the fallback for non-`Sync` backends and the baseline the
    /// parallel path is verified against. Available without constructing
    /// an executor.
    pub fn run_sequential<const D: usize, I>(index: &I, queries: &[Query<D>]) -> BatchOutcome
    where
        I: ProbIndex<D> + ?Sized,
    {
        Self::run_with_workers(index, queries, 1)
    }

    fn run_with_workers<const D: usize, I>(
        index: &I,
        queries: &[Query<D>],
        workers: usize,
    ) -> BatchOutcome
    where
        I: ProbIndex<D> + ?Sized,
    {
        let t0 = Instant::now();
        let mut ctx = QueryCtx::new();
        let outcomes: Vec<QueryOutcome> = queries
            .iter()
            .map(|q| index.execute_with(q, &mut ctx))
            .collect();
        BatchOutcome::assemble(outcomes, workers.max(1), t0.elapsed().as_nanos())
    }
}

/// Result of one batch run: the per-query outcomes (in workload order) and
/// the workload-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One [`QueryOutcome`] per input query, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// All per-query [`QueryStats`] merged (`+=`), including the new
    /// `visited` counter. The timing fields sum *CPU-side* work across
    /// workers and therefore exceed wall-clock under parallelism; use
    /// [`BatchOutcome::wall_nanos`] for elapsed time.
    pub stats: QueryStats,
    /// Workers the batch actually used.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u128,
}

impl BatchOutcome {
    fn assemble(outcomes: Vec<QueryOutcome>, workers: usize, wall_nanos: u128) -> Self {
        let mut stats = QueryStats::default();
        for o in &outcomes {
            stats += &o.stats;
        }
        Self {
            outcomes,
            stats,
            workers,
            wall_nanos,
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Aggregate throughput in queries per second: `NaN` for an empty
    /// batch (no throughput to speak of — and `0.0` would read as a
    /// catastrophic regression to a qps floor), with the wall clock
    /// clamped to ≥ 1 ns so a sub-nanosecond reading cannot divide to
    /// infinity.
    pub fn queries_per_sec(&self) -> f64 {
        if self.outcomes.is_empty() {
            return f64::NAN;
        }
        self.outcomes.len() as f64 * 1e9 / self.wall_nanos.max(1) as f64
    }

    /// True when this batch did exactly the same work as `other` and
    /// produced exactly the same answers: per-query matches (ids,
    /// provenance, probabilities) and per-query count statistics all
    /// equal, wall-clock ignored. The equivalence the executor guarantees
    /// between parallel and sequential runs of one workload.
    pub fn same_results(&self, other: &BatchOutcome) -> bool {
        self.outcomes.len() == other.outcomes.len()
            && self
                .outcomes
                .iter()
                .zip(&other.outcomes)
                .all(|(a, b)| a.matches == b.matches && a.stats.same_counts(&b.stats))
    }
}

/// Result of one ranking batch: per-query [`RankOutcome`]s in workload
/// order and the workload-level aggregates (see [`BatchOutcome`] for the
/// field semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct RankBatchOutcome {
    /// One [`RankOutcome`] per input query, in input order.
    pub outcomes: Vec<RankOutcome>,
    /// All per-query [`QueryStats`] merged (`+=`).
    pub stats: QueryStats,
    /// Workers the batch actually used.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u128,
}

impl RankBatchOutcome {
    fn assemble(outcomes: Vec<RankOutcome>, workers: usize, wall_nanos: u128) -> Self {
        let mut stats = QueryStats::default();
        for o in &outcomes {
            stats += &o.stats;
        }
        Self {
            outcomes,
            stats,
            workers,
            wall_nanos,
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Aggregate throughput in queries per second — same contract as
    /// [`BatchOutcome::queries_per_sec`]: `NaN` for an empty batch, wall
    /// clock clamped to ≥ 1 ns otherwise, so the result is finite exactly
    /// when the batch ran at least one query.
    pub fn queries_per_sec(&self) -> f64 {
        if self.outcomes.is_empty() {
            return f64::NAN;
        }
        self.outcomes.len() as f64 * 1e9 / self.wall_nanos.max(1) as f64
    }

    /// True when both batches produced identical ranked answers and did
    /// the same counted work (wall-clock ignored).
    pub fn same_results(&self, other: &RankBatchOutcome) -> bool {
        self.outcomes.len() == other.outcomes.len()
            && self
                .outcomes
                .iter()
                .zip(&other.outcomes)
                .all(|(a, b)| a.matches == b.matches && a.stats.same_counts(&b.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Refine;
    use crate::seqscan::SeqScan;
    use crate::tree::UTree;
    use crate::upcr::UPcrTree;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::{Point, Rect};
    use uncertain_pdf::{ObjectPdf, UncertainObject};

    fn dataset(n: usize, seed: u64) -> Vec<UncertainObject<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| {
                UncertainObject::new(
                    id,
                    ObjectPdf::UniformBall {
                        center: Point::new([
                            rng.gen_range(300.0..9700.0),
                            rng.gen_range(300.0..9700.0),
                        ]),
                        radius: rng.gen_range(50.0..250.0),
                    },
                )
            })
            .collect()
    }

    fn workload(n: usize, seed: u64, refine: Refine) -> Vec<Query<2>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new([rng.gen_range(500.0..9500.0), rng.gen_range(500.0..9500.0)]);
                Query::range(Rect::cube(&c, rng.gen_range(300.0..1800.0)))
                    .threshold(rng.gen_range(0.05..0.95))
                    .refine(refine)
                    .build()
                    .expect("valid query")
            })
            .collect()
    }

    #[test]
    fn indexes_are_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<UTree<2>>();
        assert_sync::<UPcrTree<2>>();
        assert_sync::<SeqScan<2>>();
        assert_sync::<crate::DiskUTree<2>>();
        assert_sync::<crate::DiskUPcrTree<2>>();
    }

    #[test]
    fn parallel_equals_sequential_on_every_backend() {
        let objs = dataset(300, 5);
        let queries = workload(24, 9, Refine::reference(1e-8));

        let mut utree = UTree::<2>::builder().uniform_catalog(8).build().unwrap();
        let mut upcr = UPcrTree::<2>::builder().uniform_catalog(8).build().unwrap();
        let mut scan = SeqScan::<2>::builder().uniform_catalog(8).build().unwrap();
        utree.bulk_load(&objs);
        upcr.bulk_load(&objs);
        scan.bulk_load(&objs);

        let exec = BatchExecutor::new(4);
        for index in [
            &utree as &(dyn ProbIndex<2> + Sync),
            &upcr as &(dyn ProbIndex<2> + Sync),
            &scan as &(dyn ProbIndex<2> + Sync),
        ] {
            let par = exec.run(index, &queries);
            let seq = BatchExecutor::run_sequential(index, &queries);
            assert!(par.same_results(&seq), "parallel diverged from sequential");
            assert!(par.stats.same_counts(&seq.stats), "merged stats diverged");
            assert_eq!(par.len(), queries.len());
        }
    }

    #[test]
    fn monte_carlo_refinement_is_schedule_independent() {
        // The per-query RNG reseed is what makes this hold: identical
        // estimates whichever worker runs the query.
        let objs = dataset(120, 21);
        let mut tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        tree.bulk_load(&objs);
        let queries = workload(12, 33, Refine::monte_carlo(20_000, 0xBEEF));
        let par = BatchExecutor::new(3).run(&tree, &queries);
        let seq = BatchExecutor::run_sequential(&tree, &queries);
        assert!(par.same_results(&seq));
        // Spot-check that refined probabilities (f64s out of the sampler)
        // are bit-equal, not merely close.
        for (p, s) in par.outcomes.iter().zip(&seq.outcomes) {
            assert_eq!(p.matches, s.matches);
        }
    }

    #[test]
    fn merged_stats_sum_the_workload() {
        let objs = dataset(150, 2);
        let mut tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        tree.bulk_load(&objs);
        let queries = workload(10, 3, Refine::reference(1e-7));
        let batch = BatchExecutor::new(2).run(&tree, &queries);
        let mut manual = QueryStats::default();
        for o in &batch.outcomes {
            manual += &o.stats;
        }
        assert_eq!(batch.stats, manual);
        assert_eq!(
            batch.stats.visited,
            batch.outcomes.iter().map(|o| o.stats.visited).sum::<u64>(),
            "visited must merge like every other counter"
        );
    }

    #[test]
    fn degenerate_batches_run_without_threads() {
        let tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        let empty: Vec<Query<2>> = Vec::new();
        let out = BatchExecutor::new(8).run(&tree, &empty);
        assert!(out.is_empty());
        assert_eq!(out.stats, QueryStats::default());
        let one = workload(1, 1, Refine::reference(1e-7));
        let out = BatchExecutor::new(8).run(&tree, &one);
        assert_eq!(out.len(), 1);
        assert_eq!(out.workers, 1, "a single query needs a single worker");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = BatchExecutor::new(0);
    }

    #[test]
    fn fan_out_resurfaces_the_original_panic_and_drains_the_batch() {
        use std::sync::atomic::AtomicUsize;

        let items: Vec<usize> = (0..64).collect();
        let attempted = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fan_out(4, &items, |&i, _ctx| {
                attempted.fetch_add(1, Ordering::SeqCst);
                if i == 13 {
                    panic!("query 13 exploded");
                }
                i * 2
            })
        }));
        let payload = result.expect_err("the batch must fail when a query panics");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("query 13 exploded"),
            "the original panic payload must resurface, not a join error"
        );
        assert_eq!(
            attempted.load(Ordering::SeqCst),
            items.len(),
            "workers must keep draining the cursor past a panicking item"
        );
    }

    #[test]
    fn fan_out_reports_the_first_panic_of_several() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fan_out(2, &items, |&i, _ctx| {
                if i % 3 == 1 {
                    panic!("boom");
                }
                i
            })
        }));
        let payload = result.expect_err("panicking batch must fail");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("boom"));
    }

    #[test]
    fn queries_per_sec_is_nan_on_empty_and_finite_otherwise() {
        let tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
        let empty = BatchExecutor::new(2).run(&tree, &[]);
        assert!(empty.queries_per_sec().is_nan(), "empty batch must be NaN");

        // A sub-nanosecond wall reading must clamp, not divide to inf.
        let one = workload(1, 7, Refine::reference(1e-7));
        let mut batch = BatchExecutor::run_sequential(&tree, &one);
        batch.wall_nanos = 0;
        let qps = batch.queries_per_sec();
        assert!(qps.is_finite(), "clamped qps must be finite, got {qps}");
        assert_eq!(qps, 1e9);

        let ranked_empty = RankBatchOutcome::assemble(Vec::new(), 1, 0);
        assert!(ranked_empty.queries_per_sec().is_nan());
        let ranked = RankBatchOutcome {
            outcomes: vec![RankOutcome {
                matches: Vec::new(),
                stats: QueryStats::default(),
            }],
            stats: QueryStats::default(),
            workers: 1,
            wall_nanos: 0,
        };
        assert!(ranked.queries_per_sec().is_finite());
    }
}
