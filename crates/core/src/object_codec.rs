//! Serialisation of object details for the heap file.
//!
//! The refinement step reads these records back to evaluate appearance
//! probabilities, so full `f64` precision is kept (unlike index entries,
//! which are f32 filters only).

use page_store::{ByteReader, ByteWriter};
use uncertain_geom::{Point, Rect};
use uncertain_pdf::{HistogramPdf, ObjectPdf, UncertainObject};

const TAG_UNIFORM_BALL: u8 = 0;
const TAG_UNIFORM_BOX: u8 = 1;
const TAG_CON_GAU: u8 = 2;
const TAG_HISTOGRAM: u8 = 3;

/// Encodes an object (id + pdf parameters) into heap-record bytes.
pub fn encode_object<const D: usize>(obj: &UncertainObject<D>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(obj.id);
    match &obj.pdf {
        ObjectPdf::UniformBall { center, radius } => {
            w.put_u8(TAG_UNIFORM_BALL);
            for i in 0..D {
                w.put_f64(center.coords[i]);
            }
            w.put_f64(*radius);
        }
        ObjectPdf::UniformBox { rect } => {
            w.put_u8(TAG_UNIFORM_BOX);
            put_rect_f64(&mut w, rect);
        }
        ObjectPdf::ConGauBall {
            center,
            radius,
            sigma,
        } => {
            w.put_u8(TAG_CON_GAU);
            for i in 0..D {
                w.put_f64(center.coords[i]);
            }
            w.put_f64(*radius);
            w.put_f64(*sigma);
        }
        ObjectPdf::Histogram(h) => {
            w.put_u8(TAG_HISTOGRAM);
            put_rect_f64(&mut w, h.rect());
            for i in 0..D {
                w.put_u32(h.bins()[i] as u32);
            }
            w.put_u32(h.mass().len() as u32);
            for &m in h.mass() {
                w.put_f64(m);
            }
        }
    }
    w.into_bytes()
}

/// Decodes heap-record bytes back into an object.
pub fn decode_object<const D: usize>(bytes: &[u8]) -> UncertainObject<D> {
    let mut r = ByteReader::new(bytes);
    let id = r.get_u64();
    let tag = r.get_u8();
    let pdf = match tag {
        TAG_UNIFORM_BALL => {
            let center = get_point_f64(&mut r);
            ObjectPdf::UniformBall {
                center,
                radius: r.get_f64(),
            }
        }
        TAG_UNIFORM_BOX => ObjectPdf::UniformBox {
            rect: get_rect_f64(&mut r),
        },
        TAG_CON_GAU => {
            let center = get_point_f64(&mut r);
            ObjectPdf::ConGauBall {
                center,
                radius: r.get_f64(),
                sigma: r.get_f64(),
            }
        }
        TAG_HISTOGRAM => {
            let rect = get_rect_f64(&mut r);
            let mut bins = [0usize; D];
            for b in bins.iter_mut() {
                *b = r.get_u32() as usize;
            }
            let n = r.get_u32() as usize;
            let mass: Vec<f64> = (0..n).map(|_| r.get_f64()).collect();
            // The encoder wrote the histogram's normalised masses;
            // `from_mass` skips renormalisation so the round trip is
            // bit-exact.
            ObjectPdf::Histogram(HistogramPdf::from_mass(rect, bins, mass))
        }
        // xlint: allow(panic-freedom) -- invariant: unknown pdf tag {other} in heap record
        other => panic!("unknown pdf tag {other} in heap record"),
    };
    UncertainObject::new(id, pdf)
}

fn put_rect_f64<const D: usize>(w: &mut ByteWriter, r: &Rect<D>) {
    for i in 0..D {
        w.put_f64(r.min[i]);
    }
    for i in 0..D {
        w.put_f64(r.max[i]);
    }
}

fn get_rect_f64<const D: usize>(r: &mut ByteReader<'_>) -> Rect<D> {
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for m in min.iter_mut() {
        *m = r.get_f64();
    }
    for m in max.iter_mut() {
        *m = r.get_f64();
    }
    Rect { min, max }
}

fn get_point_f64<const D: usize>(r: &mut ByteReader<'_>) -> Point<D> {
    let mut coords = [0.0; D];
    for c in coords.iter_mut() {
        *c = r.get_f64();
    }
    Point::new(coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_uniform_ball() {
        let o: UncertainObject<2> = UncertainObject::new(
            9,
            ObjectPdf::UniformBall {
                center: Point::new([1.5, -2.25]),
                radius: 7.125,
            },
        );
        assert_eq!(decode_object::<2>(&encode_object(&o)), o);
    }

    #[test]
    fn roundtrip_uniform_box_3d() {
        let o: UncertainObject<3> = UncertainObject::new(
            1,
            ObjectPdf::UniformBox {
                rect: Rect::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]),
            },
        );
        assert_eq!(decode_object::<3>(&encode_object(&o)), o);
    }

    #[test]
    fn roundtrip_congau() {
        let o: UncertainObject<2> = UncertainObject::new(
            77,
            ObjectPdf::ConGauBall {
                center: Point::new([5000.0, 4000.0]),
                radius: 250.0,
                sigma: 125.0,
            },
        );
        assert_eq!(decode_object::<2>(&encode_object(&o)), o);
    }

    #[test]
    fn roundtrip_histogram() {
        let h = HistogramPdf::new(
            Rect::new([0.0, 0.0], [8.0, 8.0]),
            [4, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        );
        let o: UncertainObject<2> = UncertainObject::new(3, ObjectPdf::Histogram(h));
        assert_eq!(decode_object::<2>(&encode_object(&o)), o);
    }

    #[test]
    fn records_are_compact() {
        // Ball records must be small — heap page packing (refinement I/O
        // grouping) relies on many records per page.
        let o: UncertainObject<2> = UncertainObject::new(
            9,
            ObjectPdf::UniformBall {
                center: Point::new([1.0, 2.0]),
                radius: 3.0,
            },
        );
        let bytes = encode_object(&o);
        assert_eq!(bytes.len(), 8 + 1 + 2 * 8 + 8); // id + tag + center + radius
    }

    #[test]
    #[should_panic(expected = "unknown pdf tag")]
    fn bad_tag_panics() {
        let mut bytes = vec![0u8; 9];
        bytes[8] = 200;
        decode_object::<2>(&bytes);
    }
}
