//! Bounding-key types and summed metrics for the two uncertain indexes.
//!
//! * [`UKey`] — the U-tree intermediate representation of Sec 5.1: two
//!   rectangles `MBR⊥` (at `p₁`) and `MBR̄` (at `p_m`) that define the
//!   linear function `e.MBR(p)` of Eq. 15.
//! * [`PcrKey`] — U-PCR's representation: one rectangle per catalog value.
//!
//! Both implement [`rstar_base::KeyMetrics`] with the **summed**
//! counterparts of the R* penalty metrics (Sec 5.3), and both expose the
//! rectangle at the median catalog value for the split algorithm.

use crate::catalog::UCatalog;
use rstar_base::KeyMetrics;
use std::sync::Arc;
use uncertain_geom::Rect;

/// The U-tree bounding key: the key rectangle at `p₁` and at `p_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UKey<const D: usize> {
    /// `MBR⊥`: bound of the subtree's `cfb_out(p₁)` boxes.
    pub lo: Rect<D>,
    /// `MBR̄`: bound of the subtree's `cfb_out(p_m)` boxes.
    pub hi: Rect<D>,
}

impl<const D: usize> UKey<D> {
    /// `e.MBR(p_j)` by linear interpolation (Eq. 15), with
    /// `frac = (p_j − p₁)/(p_m − p₁)`.
    ///
    /// Because each object's `cfb_out` is linear in `p` and bounding is
    /// done at the two endpoints, the interpolated rectangle covers every
    /// subtree object's `cfb_out(p_j)` (min of linear functions is concave,
    /// max is convex — the chord bounds both).
    pub fn interp(&self, frac: f64) -> Rect<D> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.lo.min[i] + (self.hi.min[i] - self.lo.min[i]) * frac;
            max[i] = self.lo.max[i] + (self.hi.max[i] - self.lo.max[i]) * frac;
            if min[i] > max[i] {
                let mid = 0.5 * (min[i] + max[i]);
                min[i] = mid;
                max[i] = mid;
            }
        }
        Rect { min, max }
    }
}

/// Summed metrics over the catalog for [`UKey`]s.
#[derive(Debug, Clone)]
pub struct UMetrics<const D: usize> {
    catalog: Arc<UCatalog>,
    /// Interpolation fractions of every catalog value (precomputed).
    fracs: Vec<f64>,
}

impl<const D: usize> UMetrics<D> {
    /// Metrics bound to a catalog.
    pub fn new(catalog: Arc<UCatalog>) -> Self {
        let fracs = (0..catalog.len()).map(|j| catalog.fraction(j)).collect();
        Self { catalog, fracs }
    }

    /// The catalog this metrics object sums over.
    pub fn catalog(&self) -> &Arc<UCatalog> {
        &self.catalog
    }

    /// `e.MBR(p_j)` for a key.
    pub fn rect_at(&self, k: &UKey<D>, j: usize) -> Rect<D> {
        k.interp(self.fracs[j])
    }
}

impl<const D: usize> KeyMetrics<D> for UMetrics<D> {
    type Key = UKey<D>;
    type OverlapProfile = Vec<Rect<D>>;

    fn overlap_profile(&self, k: &UKey<D>) -> Vec<Rect<D>> {
        self.fracs.iter().map(|&f| k.interp(f)).collect()
    }

    fn profile_overlap(&self, a: &Vec<Rect<D>>, b: &Vec<Rect<D>>) -> f64 {
        a.iter().zip(b).map(|(ra, rb)| ra.overlap(rb)).sum()
    }

    fn union_with(&self, a: &mut UKey<D>, b: &UKey<D>) {
        a.lo = a.lo.union(&b.lo);
        a.hi = a.hi.union(&b.hi);
    }

    fn area(&self, k: &UKey<D>) -> f64 {
        self.fracs.iter().map(|&f| k.interp(f).area()).sum()
    }

    fn margin(&self, k: &UKey<D>) -> f64 {
        self.fracs.iter().map(|&f| k.interp(f).margin()).sum()
    }

    fn overlap(&self, a: &UKey<D>, b: &UKey<D>) -> f64 {
        self.fracs
            .iter()
            .map(|&f| a.interp(f).overlap(&b.interp(f)))
            .sum()
    }

    fn centroid_distance(&self, a: &UKey<D>, b: &UKey<D>) -> f64 {
        self.fracs
            .iter()
            .map(|&f| a.interp(f).centroid_distance(&b.interp(f)))
            .sum()
    }

    fn split_rect(&self, k: &UKey<D>) -> Rect<D> {
        k.interp(self.fracs[self.catalog.median_index()])
    }

    fn covers(&self, outer: &UKey<D>, inner: &UKey<D>, tolerance: f64) -> bool {
        rstar_base::rect_covers_eps(&outer.lo, &inner.lo, tolerance)
            && rstar_base::rect_covers_eps(&outer.hi, &inner.hi, tolerance)
    }
}

/// The U-PCR bounding key: one rectangle per catalog value
/// (level `j` bounds the subtree's `pcr(p_j)` boxes).
#[derive(Debug, Clone, PartialEq)]
pub struct PcrKey<const D: usize> {
    /// `rects[j]` bounds every `pcr(p_j)` in the subtree.
    pub rects: Vec<Rect<D>>,
}

/// Summed metrics for [`PcrKey`]s (direct sums — no interpolation needed,
/// the exact rectangle at every catalog value is stored).
#[derive(Debug, Clone)]
pub struct PcrMetrics<const D: usize> {
    catalog: Arc<UCatalog>,
}

impl<const D: usize> PcrMetrics<D> {
    /// Metrics bound to a catalog (supplies m and the median index).
    pub fn new(catalog: Arc<UCatalog>) -> Self {
        Self { catalog }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<UCatalog> {
        &self.catalog
    }
}

impl<const D: usize> KeyMetrics<D> for PcrMetrics<D> {
    type Key = PcrKey<D>;
    type OverlapProfile = Vec<Rect<D>>;

    fn overlap_profile(&self, k: &PcrKey<D>) -> Vec<Rect<D>> {
        k.rects.clone()
    }

    fn profile_overlap(&self, a: &Vec<Rect<D>>, b: &Vec<Rect<D>>) -> f64 {
        a.iter().zip(b).map(|(ra, rb)| ra.overlap(rb)).sum()
    }

    fn union_with(&self, a: &mut PcrKey<D>, b: &PcrKey<D>) {
        debug_assert_eq!(a.rects.len(), b.rects.len());
        for (ra, rb) in a.rects.iter_mut().zip(&b.rects) {
            *ra = ra.union(rb);
        }
    }

    fn area(&self, k: &PcrKey<D>) -> f64 {
        k.rects.iter().map(Rect::area).sum()
    }

    fn margin(&self, k: &PcrKey<D>) -> f64 {
        k.rects.iter().map(Rect::margin).sum()
    }

    fn overlap(&self, a: &PcrKey<D>, b: &PcrKey<D>) -> f64 {
        a.rects
            .iter()
            .zip(&b.rects)
            .map(|(ra, rb)| ra.overlap(rb))
            .sum()
    }

    fn centroid_distance(&self, a: &PcrKey<D>, b: &PcrKey<D>) -> f64 {
        a.rects
            .iter()
            .zip(&b.rects)
            .map(|(ra, rb)| ra.centroid_distance(rb))
            .sum()
    }

    fn split_rect(&self, k: &PcrKey<D>) -> Rect<D> {
        k.rects[self.catalog.median_index()]
    }

    fn covers(&self, outer: &PcrKey<D>, inner: &PcrKey<D>, tolerance: f64) -> bool {
        outer
            .rects
            .iter()
            .zip(&inner.rects)
            .all(|(o, i)| rstar_base::rect_covers_eps(o, i, tolerance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(lo: Rect<2>, hi: Rect<2>) -> UKey<2> {
        UKey { lo, hi }
    }

    #[test]
    fn interp_endpoints_and_midpoint() {
        let k = key(
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([4.0, 4.0], [6.0, 6.0]),
        );
        assert_eq!(k.interp(0.0), k.lo);
        assert_eq!(k.interp(1.0), k.hi);
        assert_eq!(k.interp(0.5), Rect::new([2.0, 2.0], [8.0, 8.0]));
    }

    #[test]
    fn union_is_componentwise() {
        let cat = Arc::new(UCatalog::uniform(5));
        let metrics = UMetrics::<2>::new(cat);
        let a = key(
            Rect::new([0.0, 0.0], [1.0, 1.0]),
            Rect::new([0.4, 0.4], [0.6, 0.6]),
        );
        let b = key(
            Rect::new([2.0, 0.0], [3.0, 1.0]),
            Rect::new([2.4, 0.4], [2.6, 0.6]),
        );
        let u = metrics.union(&a, &b);
        assert_eq!(u.lo, Rect::new([0.0, 0.0], [3.0, 1.0]));
        assert_eq!(u.hi, Rect::new([0.4, 0.4], [2.6, 0.6]));
        assert!(metrics.covers(&u, &a, 1e-9));
        assert!(metrics.covers(&u, &b, 1e-9));
        assert!(!metrics.covers(&a, &b, 1e-9));
    }

    #[test]
    fn interpolated_union_covers_member_interps() {
        // The concavity/convexity argument in code: chord of the union
        // covers each member at every fraction.
        let cat = Arc::new(UCatalog::uniform(7));
        let metrics = UMetrics::<2>::new(cat.clone());
        let a = key(
            Rect::new([0.0, 0.0], [4.0, 4.0]),
            Rect::new([1.5, 1.5], [2.5, 2.5]),
        );
        let b = key(
            Rect::new([3.0, 3.0], [9.0, 9.0]),
            Rect::new([5.0, 5.0], [7.0, 7.0]),
        );
        let u = metrics.union(&a, &b);
        for j in 0..cat.len() {
            let ru = metrics.rect_at(&u, j);
            assert!(ru.contains_rect(&metrics.rect_at(&a, j)), "a at {j}");
            assert!(ru.contains_rect(&metrics.rect_at(&b, j)), "b at {j}");
        }
    }

    #[test]
    fn summed_metrics_reduce_to_plain_for_constant_keys() {
        // A key with lo == hi behaves like a plain rectangle scaled by m.
        let cat = Arc::new(UCatalog::uniform(4));
        let metrics = UMetrics::<2>::new(cat);
        let r = Rect::new([0.0, 0.0], [2.0, 3.0]);
        let k = key(r, r);
        assert!((metrics.area(&k) - 4.0 * 6.0).abs() < 1e-12);
        assert!((metrics.margin(&k) - 4.0 * 5.0).abs() < 1e-12);
        let k2 = key(
            Rect::new([1.0, 1.0], [3.0, 4.0]),
            Rect::new([1.0, 1.0], [3.0, 4.0]),
        );
        assert!((metrics.overlap(&k, &k2) - 4.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn pcr_key_metrics_sum_over_catalog() {
        let cat = Arc::new(UCatalog::uniform(3));
        let metrics = PcrMetrics::<2>::new(cat);
        let k = PcrKey {
            rects: vec![
                Rect::new([0.0, 0.0], [4.0, 4.0]),
                Rect::new([1.0, 1.0], [3.0, 3.0]),
                Rect::new([2.0, 2.0], [2.0, 2.0]),
            ],
        };
        assert!((metrics.area(&k) - (16.0 + 4.0 + 0.0)).abs() < 1e-12);
        assert!((metrics.margin(&k) - (8.0 + 4.0 + 0.0)).abs() < 1e-12);
        assert_eq!(metrics.split_rect(&k), k.rects[1]);
    }

    #[test]
    fn pcr_key_union_and_covers() {
        let cat = Arc::new(UCatalog::uniform(2));
        let metrics = PcrMetrics::<2>::new(cat);
        let a = PcrKey {
            rects: vec![
                Rect::new([0.0, 0.0], [1.0, 1.0]),
                Rect::new([0.2, 0.2], [0.8, 0.8]),
            ],
        };
        let b = PcrKey {
            rects: vec![
                Rect::new([5.0, 5.0], [6.0, 6.0]),
                Rect::new([5.2, 5.2], [5.8, 5.8]),
            ],
        };
        let u = metrics.union(&a, &b);
        assert!(metrics.covers(&u, &a, 0.0));
        assert!(metrics.covers(&u, &b, 0.0));
        assert_eq!(u.rects[0], Rect::new([0.0, 0.0], [6.0, 6.0]));
    }
}
