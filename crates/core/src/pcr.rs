//! Probabilistically constrained regions (paper Sec 4.1–4.2).
//!
//! `o.pcr(p)` is the rectangle whose face `i−` (`i+`) cuts off exactly
//! probability `p` of `o`'s mass on the left (right) of axis `i`. PCRs are
//! computed by inverting the per-dimension marginal CDFs ("solve x₁ from
//! o.cdf(x₁) = p") and drive both the pruning and the validation rules.

use crate::catalog::UCatalog;
use crate::filter::PcrAccess;
use uncertain_geom::Rect;
use uncertain_pdf::ObjectPdf;

/// The PCRs of one object at every catalog value.
#[derive(Debug, Clone, PartialEq)]
pub struct PcrSet<const D: usize> {
    rects: Vec<Rect<D>>,
}

impl<const D: usize> PcrSet<D> {
    /// Computes `o.pcr(p_j)` for every catalog value.
    ///
    /// This is the one-time, per-object insertion cost the paper accepts
    /// ("the overhead of each PCR computation is low", Sec 6.2).
    pub fn compute(pdf: &ObjectPdf<D>, catalog: &UCatalog) -> Self {
        let marginals = pdf.marginals();
        let rects = catalog
            .values()
            .iter()
            .map(|&p| {
                let mut min = [0.0; D];
                let mut max = [0.0; D];
                for i in 0..D {
                    min[i] = marginals[i].quantile(p);
                    max[i] = marginals[i].quantile(1.0 - p);
                    if min[i] > max[i] {
                        // p = 0.5 can invert by a rounding hair; collapse.
                        let mid = 0.5 * (min[i] + max[i]);
                        min[i] = mid;
                        max[i] = mid;
                    }
                }
                Rect { min, max }
            })
            .collect();
        Self { rects }
    }

    /// Builds a set from precomputed rectangles (decoding path).
    pub fn from_rects(rects: Vec<Rect<D>>) -> Self {
        assert!(!rects.is_empty());
        Self { rects }
    }

    /// `pcr(p_j)` by catalog index.
    pub fn rect(&self, j: usize) -> &Rect<D> {
        &self.rects[j]
    }

    /// All PCRs, ascending in `p` (thus shrinking).
    pub fn rects(&self) -> &[Rect<D>] {
        &self.rects
    }

    /// Number of catalog values covered.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Exact PCRs act as both the outer and inner approximation of themselves
/// (Observation 2 is Observation 3 with `cfb_out = cfb_in = pcr`).
impl<const D: usize> PcrAccess<D> for PcrSet<D> {
    fn outer(&self, j: usize) -> Rect<D> {
        self.rects[j]
    }

    fn inner(&self, j: usize) -> Rect<D> {
        self.rects[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;
    use uncertain_pdf::appearance_reference;

    fn catalog() -> UCatalog {
        UCatalog::uniform(6) // {0, 0.1, 0.2, 0.3, 0.4, 0.5}
    }

    #[test]
    fn pcr_at_zero_is_the_mbr() {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([100.0, 200.0]),
            radius: 50.0,
        };
        let pcrs = PcrSet::compute(&pdf, &catalog());
        let mbr = pdf.mbr();
        for i in 0..2 {
            assert!((pcrs.rect(0).min[i] - mbr.min[i]).abs() < 1e-6);
            assert!((pcrs.rect(0).max[i] - mbr.max[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn pcrs_shrink_as_p_grows() {
        let pdf: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: Point::new([0.0, 0.0]),
            radius: 250.0,
            sigma: 125.0,
        };
        let pcrs = PcrSet::compute(&pdf, &catalog());
        for j in 1..pcrs.len() {
            assert!(
                pcrs.rect(j - 1).contains_rect(pcrs.rect(j)),
                "pcr({}) must contain pcr({})",
                j - 1,
                j
            );
        }
    }

    #[test]
    fn pcr_at_half_degenerates_to_a_point() {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([10.0, 20.0]),
            radius: 5.0,
        };
        let pcrs = PcrSet::compute(&pdf, &catalog());
        let last = pcrs.rect(pcrs.len() - 1);
        for i in 0..2 {
            assert!(
                last.extent(i) < 1e-6,
                "pcr(0.5) should be (nearly) a point, got extent {}",
                last.extent(i)
            );
        }
        assert!((last.min[0] - 10.0).abs() < 1e-6);
        assert!((last.min[1] - 20.0).abs() < 1e-6);
    }

    /// The defining property: the mass on the outside of each pcr face
    /// equals p_j (verified against quadrature ground truth).
    #[test]
    fn pcr_faces_cut_exactly_p_mass() {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0]),
            radius: 100.0,
        };
        let cat = catalog();
        let pcrs = PcrSet::compute(&pdf, &cat);
        let big = 1000.0;
        for (j, &p) in cat.values().iter().enumerate() {
            let r = pcrs.rect(j);
            // mass strictly left of the lower x-face
            let left = Rect::new([-big, -big], [r.min[0], big]);
            let got = appearance_reference(&pdf, &left, 1e-9);
            assert!((got - p).abs() < 1e-3, "left mass at p={p}: got {got}");
            // mass right of the upper y-face
            let above = Rect::new([-big, r.max[1]], [big, big]);
            let got = appearance_reference(&pdf, &above, 1e-9);
            assert!((got - p).abs() < 1e-3, "top mass at p={p}: got {got}");
        }
    }

    #[test]
    fn congau_pcrs_tighter_than_uniform() {
        // Same support; the Gaussian concentrates mass, so its pcr(0.1)
        // must be strictly inside the uniform's.
        let c = Point::new([0.0, 0.0]);
        let uni: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: c,
            radius: 250.0,
        };
        let gau: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: c,
            radius: 250.0,
            sigma: 125.0,
        };
        let cat = catalog();
        let pu = PcrSet::compute(&uni, &cat);
        let pg = PcrSet::compute(&gau, &cat);
        let j = 1; // p = 0.1
        assert!(pu.rect(j).contains_rect(pg.rect(j)));
        assert!(pu.rect(j).area() > pg.rect(j).area() * 1.05);
    }

    #[test]
    fn histogram_pcr_follows_skew() {
        // Mass concentrated on the left half ⇒ pcr faces shift left.
        let h = uncertain_pdf::HistogramPdf::from_fn(
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            [32, 4],
            |p| if p.coords[0] < 5.0 { 9.0 } else { 1.0 },
        );
        let pdf = ObjectPdf::Histogram(h);
        let pcrs = PcrSet::compute(&pdf, &catalog());
        let r = pcrs.rect(3); // p = 0.3
        let center_x = 0.5 * (r.min[0] + r.max[0]);
        assert!(
            center_x < 5.0,
            "pcr center should lean left, got {center_x}"
        );
    }

    #[test]
    fn three_dimensional_pcrs() {
        let pdf: ObjectPdf<3> = ObjectPdf::UniformBall {
            center: Point::new([0.0, 0.0, 0.0]),
            radius: 125.0,
        };
        let pcrs = PcrSet::compute(&pdf, &catalog());
        // symmetric in all dims
        for j in 0..pcrs.len() {
            let r = pcrs.rect(j);
            for i in 0..3 {
                assert!((r.min[i] + r.max[i]).abs() < 1e-6, "asymmetric dim {i}");
            }
        }
        // nested
        for j in 1..pcrs.len() {
            assert!(pcrs.rect(j - 1).contains_rect(pcrs.rect(j)));
        }
    }
}
