//! Epoch-swap serving: readers keep answering on a consistent tree while
//! a writer installs the next one.
//!
//! The PR-3 query path is `&self` end-to-end, but structural updates still
//! take `&mut UTree` — a live service would stall every reader for every
//! insert. [`EpochIndex`] removes the stall with the classic shadow-paging
//! move (cf. the meta-page pointer swap of append-only B-tree stores):
//!
//! * pages live in a copy-on-write [`ShadowPageFile`], so cloning a tree
//!   is O(pages) pointer bumps and a write after the clone copies only
//!   that page;
//! * the *published* tree sits behind an `Arc` that readers grab with
//!   [`EpochIndex::snapshot`] — a consistent epoch they keep for as long
//!   as they like, wholly unaffected by later writes;
//! * a writer mutates the private writer tree under a mutex, then
//!   *publishes* a clone of it — one pointer swap — and bumps the epoch
//!   counter. Readers that grabbed the old `Arc` finish on the old epoch;
//!   new snapshots see the new one. Nothing blocks readers, ever.
//!
//! The write surface is batch-shaped ([`EpochIndex::commit_with`] and the
//! `insert_batch`/`delete_batch` conveniences) and takes `&self`, so it
//! composes with the shared-read fleet: one thread can commit batches
//! while others run [`crate::engine::BatchExecutor`] workloads against
//! snapshots.
//!
//! Epochs are an **in-memory** serving structure; pair them with a
//! disk-backed tree's WAL commits (see [`crate::DiskUTree`]) when the
//! update stream must also be durable.

use crate::catalog::UCatalog;
use crate::tree::{InsertStats, UTree};
use page_store::ShadowPageFile;
use rstar_base::TreeConfig;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use uncertain_pdf::UncertainObject;

/// A published epoch: a consistent, immutable, shareable U-tree. Queries
/// run on it like on any `&UTree` — including through
/// [`crate::engine::BatchExecutor`].
pub type EpochSnapshot<const D: usize> = Arc<UTree<D, ShadowPageFile>>;

/// A U-tree served via epoch swaps: lock-free consistent snapshots for
/// readers, batched copy-on-write commits for one writer at a time.
pub struct EpochIndex<const D: usize> {
    /// The current epoch number and its tree, swapped together at publish
    /// time. Stamping the number into the published pair is what lets a
    /// reader observe `(epoch, snapshot)` atomically — a separate counter
    /// could be read before or after an in-flight publish and label the
    /// new tree with the old number (or vice versa).
    published: RwLock<(u64, EpochSnapshot<D>)>,
    /// The writer's private successor tree (COW fork of the published
    /// one). The mutex serialises writers; readers never touch it.
    writer: Mutex<UTree<D, ShadowPageFile>>,
}

impl<const D: usize> EpochIndex<D> {
    /// An empty epoch-served U-tree over the given catalog.
    pub fn new(catalog: UCatalog) -> Self {
        Self::with_config(catalog, TreeConfig::default())
    }

    /// An empty epoch-served U-tree with explicit R* tuning.
    pub fn with_config(catalog: UCatalog, cfg: TreeConfig) -> Self {
        Self::from_tree(UTree::with_stores(
            catalog,
            cfg,
            ShadowPageFile::new(),
            ShadowPageFile::new(),
        ))
    }

    /// Starts serving an existing shadow-paged tree as epoch 0.
    pub fn from_tree(tree: UTree<D, ShadowPageFile>) -> Self {
        Self {
            published: RwLock::new((0, Arc::new(tree.clone()))),
            writer: Mutex::new(tree),
        }
    }

    /// The current epoch number (bumped by every commit).
    pub fn epoch(&self) -> u64 {
        self.published
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    /// Grabs the published epoch: a consistent tree that stays exactly as
    /// it is — run any number of queries against it — no matter how many
    /// commits happen meanwhile. Cheap (one `Arc` clone under a read
    /// lock held for nanoseconds).
    pub fn snapshot(&self) -> EpochSnapshot<D> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .1,
        )
    }

    /// Grabs the published epoch *with* its epoch number, read under one
    /// lock acquisition: the number always labels exactly that tree, even
    /// while commits race. Pairing separate [`EpochIndex::epoch`] and
    /// [`EpochIndex::snapshot`] calls cannot make that guarantee.
    pub fn snapshot_pair(&self) -> (u64, EpochSnapshot<D>) {
        let guard = self
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        (guard.0, Arc::clone(&guard.1))
    }

    /// Number of objects in the current epoch.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when the current epoch holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` against the writer tree, then publishes the result as the
    /// next epoch (readers on older epochs are unaffected). Returns the
    /// new epoch number and `f`'s result. Writers serialise on an
    /// internal mutex; `&self` keeps the whole surface shareable.
    ///
    /// The batch is all-or-nothing *visibility-wise*: no reader ever
    /// observes a prefix of `f`'s updates. A panic inside `f` aborts the
    /// batch: the writer is re-forked from the last published epoch (so
    /// none of the half-applied updates survive), the panic is re-raised
    /// to the caller, and the index keeps serving — readers and later
    /// commits are unaffected.
    pub fn commit_with<R>(&self, f: impl FnOnce(&mut UTree<D, ShadowPageFile>) -> R) -> (u64, R) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        match catch_unwind(AssertUnwindSafe(|| f(&mut writer))) {
            Ok(result) => {
                // COW fork: the published clone shares every page with the
                // writer until the *next* batch rewrites some of them.
                let next = Arc::new(writer.clone());
                let mut published = self
                    .published
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                let epoch = published.0 + 1;
                *published = (epoch, next);
                (epoch, result)
            }
            Err(payload) => {
                // `f` left the writer in an unknown half-applied state.
                // Discard it and re-fork from the last published epoch;
                // the guard then drops normally (no poisoning) before the
                // panic resumes on the caller's stack.
                let fork = (*self.snapshot()).clone();
                *writer = fork;
                drop(writer);
                resume_unwind(payload);
            }
        }
    }

    /// Commits one batch of insertions, returning the new epoch number and
    /// the accumulated insertion cost breakdown.
    pub fn insert_batch(&self, objs: &[UncertainObject<D>]) -> (u64, InsertStats) {
        self.commit_with(|tree| {
            let mut total = InsertStats::default();
            for obj in objs {
                let s = tree.insert(obj);
                total += &s;
            }
            total
        })
    }

    /// Commits one batch of deletions, returning the new epoch number and
    /// how many of the objects were actually found and removed.
    pub fn delete_batch(&self, objs: &[UncertainObject<D>]) -> (u64, usize) {
        self.commit_with(|tree| objs.iter().filter(|o| tree.delete(o)).count())
    }

    /// Bulk-loads through the epoch machinery and publishes the result as
    /// one epoch: on an empty index the writer takes the packed STR build
    /// ([`UTree::bulk_load`]), so the published snapshot serves the
    /// read-optimised layout; on a non-empty index this degrades to
    /// [`EpochIndex::insert_batch`] semantics.
    pub fn bulk_load(&self, objs: &[UncertainObject<D>]) -> (u64, InsertStats) {
        self.commit_with(|tree| tree.bulk_load(objs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    #[test]
    fn snapshots_are_immutable_epochs() {
        let index = EpochIndex::<2>::new(UCatalog::uniform(6));
        let (e1, _) = index.insert_batch(&[ball(1, 500.0, 500.0, 50.0)]);
        assert_eq!(e1, 1);
        let old = index.snapshot();
        assert_eq!(old.len(), 1);

        let (e2, _) = index.insert_batch(&[ball(2, 800.0, 800.0, 50.0)]);
        assert_eq!(e2, 2);
        // The old epoch still answers as of its publication...
        assert_eq!(old.len(), 1);
        // ...while a fresh snapshot sees the new batch.
        assert_eq!(index.snapshot().len(), 2);
        old.check_invariants().unwrap();
        index.snapshot().check_invariants().unwrap();
    }

    #[test]
    fn delete_batch_reports_found_count() {
        let index = EpochIndex::<2>::new(UCatalog::uniform(6));
        let objs: Vec<_> = (0..10)
            .map(|i| ball(i, 100.0 * i as f64 + 100.0, 500.0, 30.0))
            .collect();
        index.insert_batch(&objs);
        let ghost = ball(99, 5000.0, 5000.0, 10.0);
        let (_, removed) = index.delete_batch(&[objs[0].clone(), ghost, objs[1].clone()]);
        assert_eq!(removed, 2);
        assert_eq!(index.len(), 8);
    }

    #[test]
    fn bulk_loaded_epoch_serves_snapshots_like_insert_built() {
        use crate::api::{Query, Refine};
        use uncertain_geom::Rect;

        let objs: Vec<_> = (0..300)
            .map(|i| {
                ball(
                    i,
                    150.0 + 31.0 * i as f64,
                    150.0 + 17.0 * ((i * 7) % 300) as f64,
                    40.0,
                )
            })
            .collect();
        let bulk = EpochIndex::<2>::new(UCatalog::uniform(6));
        let (epoch, stats) = bulk.bulk_load(&objs);
        assert_eq!(epoch, 1);
        assert!(stats.pcr_nanos > 0);
        let incremental = EpochIndex::<2>::new(UCatalog::uniform(6));
        incremental.insert_batch(&objs);

        let snap = bulk.snapshot();
        snap.check_invariants().unwrap();
        assert_eq!(snap.len(), 300);
        let q = Query::range(Rect::new([500.0, 500.0], [4000.0, 4000.0]))
            .threshold(0.4)
            .refine(Refine::reference(1e-8))
            .build()
            .unwrap();
        let mut a = snap.execute(&q).ids();
        let mut b = incremental.snapshot().execute(&q).ids();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bulk-loaded epoch must answer like insert-built");

        // A later batch forks COW pages off the packed build.
        bulk.insert_batch(&[ball(1000, 2000.0, 2000.0, 60.0)]);
        assert_eq!(snap.len(), 300, "published epoch stays frozen");
        assert_eq!(bulk.snapshot().len(), 301);
    }

    #[test]
    fn snapshot_pair_never_tears_under_racing_commits() {
        // Each commit inserts exactly one object starting from empty, so
        // the invariant `snapshot.len() == epoch` holds for every
        // published pair. A reader pairing separate epoch()/snapshot()
        // calls could see them disagree mid-publish; snapshot_pair() may
        // not, ever.
        let index = Arc::new(EpochIndex::<2>::new(UCatalog::uniform(6)));
        let commits = 200u64;
        std::thread::scope(|scope| {
            let writer = Arc::clone(&index);
            scope.spawn(move || {
                for id in 0..commits {
                    let x = 100.0 + (id % 97) as f64 * 100.0;
                    let y = 100.0 + (id % 89) as f64 * 110.0;
                    writer.insert_batch(&[ball(id, x, y, 20.0)]);
                }
            });
            for _ in 0..2 {
                let reader = Arc::clone(&index);
                scope.spawn(move || loop {
                    let (epoch, snap) = reader.snapshot_pair();
                    assert_eq!(
                        snap.len() as u64,
                        epoch,
                        "published tree labelled with the wrong epoch number"
                    );
                    if epoch == commits {
                        break;
                    }
                    std::hint::spin_loop();
                });
            }
        });
        assert_eq!(index.epoch(), commits);
        assert_eq!(index.len() as u64, commits);
    }

    #[test]
    fn readers_survive_a_panicking_commit() {
        let index = EpochIndex::<2>::new(UCatalog::uniform(6));
        index.insert_batch(&[ball(1, 500.0, 500.0, 50.0)]);
        assert_eq!(index.epoch(), 1);

        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            index.commit_with(|tree| {
                // Half-apply, then die: none of this may ever publish or
                // linger in the writer fork.
                tree.insert(&ball(2, 800.0, 800.0, 50.0));
                panic!("bad batch");
            })
        }));
        let payload = boom.expect_err("the panic must reach the caller");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("bad batch"),
            "the original panic payload must resurface"
        );

        // The index is still in service: readers see the last good epoch.
        assert_eq!(index.epoch(), 1);
        assert_eq!(index.len(), 1);
        index.snapshot().check_invariants().unwrap();

        // The writer recovered from the published epoch, so the
        // half-applied insert is gone and the next commit works.
        let (epoch, _) = index.insert_batch(&[ball(3, 200.0, 200.0, 30.0)]);
        assert_eq!(epoch, 2);
        let snap = index.snapshot();
        assert_eq!(snap.len(), 2, "half-applied insert must not survive");
        snap.check_invariants().unwrap();
    }

    #[test]
    fn epoch_index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EpochIndex<2>>();
        assert_send_sync::<EpochSnapshot<3>>();
    }
}
