//! Epoch-swap serving: readers keep answering on a consistent tree while
//! a writer installs the next one.
//!
//! The PR-3 query path is `&self` end-to-end, but structural updates still
//! take `&mut UTree` — a live service would stall every reader for every
//! insert. [`EpochIndex`] removes the stall with the classic shadow-paging
//! move (cf. the meta-page pointer swap of append-only B-tree stores):
//!
//! * pages live in a copy-on-write [`ShadowPageFile`], so cloning a tree
//!   is O(pages) pointer bumps and a write after the clone copies only
//!   that page;
//! * the *published* tree sits behind an `Arc` that readers grab with
//!   [`EpochIndex::snapshot`] — a consistent epoch they keep for as long
//!   as they like, wholly unaffected by later writes;
//! * a writer mutates the private writer tree under a mutex, then
//!   *publishes* a clone of it — one pointer swap — and bumps the epoch
//!   counter. Readers that grabbed the old `Arc` finish on the old epoch;
//!   new snapshots see the new one. Nothing blocks readers, ever.
//!
//! The write surface is batch-shaped ([`EpochIndex::commit_with`] and the
//! `insert_batch`/`delete_batch` conveniences) and takes `&self`, so it
//! composes with the shared-read fleet: one thread can commit batches
//! while others run [`crate::engine::BatchExecutor`] workloads against
//! snapshots.
//!
//! Epochs are an **in-memory** serving structure; pair them with a
//! disk-backed tree's WAL commits (see [`crate::DiskUTree`]) when the
//! update stream must also be durable.

use crate::catalog::UCatalog;
use crate::tree::{InsertStats, UTree};
use page_store::ShadowPageFile;
use rstar_base::TreeConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use uncertain_pdf::UncertainObject;

/// A published epoch: a consistent, immutable, shareable U-tree. Queries
/// run on it like on any `&UTree` — including through
/// [`crate::engine::BatchExecutor`].
pub type EpochSnapshot<const D: usize> = Arc<UTree<D, ShadowPageFile>>;

/// A U-tree served via epoch swaps: lock-free consistent snapshots for
/// readers, batched copy-on-write commits for one writer at a time.
pub struct EpochIndex<const D: usize> {
    /// The current epoch, swapped atomically at publish time.
    published: RwLock<EpochSnapshot<D>>,
    /// The writer's private successor tree (COW fork of the published
    /// one). The mutex serialises writers; readers never touch it.
    writer: Mutex<UTree<D, ShadowPageFile>>,
    epoch: AtomicU64,
}

impl<const D: usize> EpochIndex<D> {
    /// An empty epoch-served U-tree over the given catalog.
    pub fn new(catalog: UCatalog) -> Self {
        Self::with_config(catalog, TreeConfig::default())
    }

    /// An empty epoch-served U-tree with explicit R* tuning.
    pub fn with_config(catalog: UCatalog, cfg: TreeConfig) -> Self {
        Self::from_tree(UTree::with_stores(
            catalog,
            cfg,
            ShadowPageFile::new(),
            ShadowPageFile::new(),
        ))
    }

    /// Starts serving an existing shadow-paged tree as epoch 0.
    pub fn from_tree(tree: UTree<D, ShadowPageFile>) -> Self {
        Self {
            published: RwLock::new(Arc::new(tree.clone())),
            writer: Mutex::new(tree),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch number (bumped by every commit).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Grabs the published epoch: a consistent tree that stays exactly as
    /// it is — run any number of queries against it — no matter how many
    /// commits happen meanwhile. Cheap (one `Arc` clone under a read
    /// lock held for nanoseconds).
    pub fn snapshot(&self) -> EpochSnapshot<D> {
        Arc::clone(&self.published.read().expect("epoch index poisoned"))
    }

    /// Number of objects in the current epoch.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when the current epoch holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` against the writer tree, then publishes the result as the
    /// next epoch (readers on older epochs are unaffected). Returns the
    /// new epoch number and `f`'s result. Writers serialise on an
    /// internal mutex; `&self` keeps the whole surface shareable.
    ///
    /// The batch is all-or-nothing *visibility-wise*: no reader ever
    /// observes a prefix of `f`'s updates. (A panic inside `f` poisons
    /// the writer, taking the index out of service rather than publishing
    /// a half-applied batch.)
    pub fn commit_with<R>(&self, f: impl FnOnce(&mut UTree<D, ShadowPageFile>) -> R) -> (u64, R) {
        let mut writer = self.writer.lock().expect("epoch writer poisoned");
        let result = f(&mut writer);
        // COW fork: the published clone shares every page with the writer
        // until the *next* batch rewrites some of them.
        let next = Arc::new(writer.clone());
        *self.published.write().expect("epoch index poisoned") = next;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        (epoch, result)
    }

    /// Commits one batch of insertions, returning the new epoch number and
    /// the accumulated insertion cost breakdown.
    pub fn insert_batch(&self, objs: &[UncertainObject<D>]) -> (u64, InsertStats) {
        self.commit_with(|tree| {
            let mut total = InsertStats::default();
            for obj in objs {
                let s = tree.insert(obj);
                total += &s;
            }
            total
        })
    }

    /// Commits one batch of deletions, returning the new epoch number and
    /// how many of the objects were actually found and removed.
    pub fn delete_batch(&self, objs: &[UncertainObject<D>]) -> (u64, usize) {
        self.commit_with(|tree| objs.iter().filter(|o| tree.delete(o)).count())
    }

    /// Bulk-loads through the epoch machinery and publishes the result as
    /// one epoch: on an empty index the writer takes the packed STR build
    /// ([`UTree::bulk_load`]), so the published snapshot serves the
    /// read-optimised layout; on a non-empty index this degrades to
    /// [`EpochIndex::insert_batch`] semantics.
    pub fn bulk_load(&self, objs: &[UncertainObject<D>]) -> (u64, InsertStats) {
        self.commit_with(|tree| tree.bulk_load(objs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn ball(id: u64, x: f64, y: f64, r: f64) -> UncertainObject<2> {
        UncertainObject::new(
            id,
            ObjectPdf::UniformBall {
                center: Point::new([x, y]),
                radius: r,
            },
        )
    }

    #[test]
    fn snapshots_are_immutable_epochs() {
        let index = EpochIndex::<2>::new(UCatalog::uniform(6));
        let (e1, _) = index.insert_batch(&[ball(1, 500.0, 500.0, 50.0)]);
        assert_eq!(e1, 1);
        let old = index.snapshot();
        assert_eq!(old.len(), 1);

        let (e2, _) = index.insert_batch(&[ball(2, 800.0, 800.0, 50.0)]);
        assert_eq!(e2, 2);
        // The old epoch still answers as of its publication...
        assert_eq!(old.len(), 1);
        // ...while a fresh snapshot sees the new batch.
        assert_eq!(index.snapshot().len(), 2);
        old.check_invariants().unwrap();
        index.snapshot().check_invariants().unwrap();
    }

    #[test]
    fn delete_batch_reports_found_count() {
        let index = EpochIndex::<2>::new(UCatalog::uniform(6));
        let objs: Vec<_> = (0..10)
            .map(|i| ball(i, 100.0 * i as f64 + 100.0, 500.0, 30.0))
            .collect();
        index.insert_batch(&objs);
        let ghost = ball(99, 5000.0, 5000.0, 10.0);
        let (_, removed) = index.delete_batch(&[objs[0].clone(), ghost, objs[1].clone()]);
        assert_eq!(removed, 2);
        assert_eq!(index.len(), 8);
    }

    #[test]
    fn bulk_loaded_epoch_serves_snapshots_like_insert_built() {
        use crate::api::{Query, Refine};
        use uncertain_geom::Rect;

        let objs: Vec<_> = (0..300)
            .map(|i| {
                ball(
                    i,
                    150.0 + 31.0 * i as f64,
                    150.0 + 17.0 * ((i * 7) % 300) as f64,
                    40.0,
                )
            })
            .collect();
        let bulk = EpochIndex::<2>::new(UCatalog::uniform(6));
        let (epoch, stats) = bulk.bulk_load(&objs);
        assert_eq!(epoch, 1);
        assert!(stats.pcr_nanos > 0);
        let incremental = EpochIndex::<2>::new(UCatalog::uniform(6));
        incremental.insert_batch(&objs);

        let snap = bulk.snapshot();
        snap.check_invariants().unwrap();
        assert_eq!(snap.len(), 300);
        let q = Query::range(Rect::new([500.0, 500.0], [4000.0, 4000.0]))
            .threshold(0.4)
            .refine(Refine::reference(1e-8))
            .build()
            .unwrap();
        let mut a = snap.execute(&q).ids();
        let mut b = incremental.snapshot().execute(&q).ids();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bulk-loaded epoch must answer like insert-built");

        // A later batch forks COW pages off the packed build.
        bulk.insert_batch(&[ball(1000, 2000.0, 2000.0, 60.0)]);
        assert_eq!(snap.len(), 300, "published epoch stays frozen");
        assert_eq!(bulk.snapshot().len(), 301);
    }

    #[test]
    fn epoch_index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EpochIndex<2>>();
        assert_send_sync::<EpochSnapshot<3>>();
    }
}
