//! Conservative functional boxes (paper Sec 4.3–4.4).
//!
//! A CFB captures all m PCRs of an object with a *linear function of p*:
//! `cfb(p) = α − β·p` (Eqs. 4–5), so an entry stores 8d floats instead of
//! 2d·m. `cfb_out(p_j)` must contain `pcr(p_j)` and `cfb_in(p_j)` must be
//! contained in it, for every catalog value — the conservativeness that
//! keeps Observation 3 sound.
//!
//! Fitting minimises (maximises, for the inner box) the summed margin
//! `Σ_j MARGIN(cfb(p_j))` (Formula 7), which decomposes per dimension into
//! tiny linear programs solved with the Simplex method, exactly as the
//! paper prescribes.

use crate::catalog::UCatalog;
use crate::filter::PcrAccess;
use crate::pcr::PcrSet;
use page_store::{f32_round_down, f32_round_up};
use simplex_lp::LinearProgram;
use uncertain_geom::Rect;

/// A linear box function `cfb(p) = α − β·p`.
///
/// `alpha` is the rectangle at `p = 0`; `beta_lo[i]`/`beta_hi[i]` are the
/// per-face shrink rates (the paper's `β^{i−}`/`β^{i+}`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cfb<const D: usize> {
    /// Box at `p = 0` (the `α` vector of Eq. 4).
    pub alpha: Rect<D>,
    /// Lower-face slopes `β^{i−}`.
    pub beta_lo: [f64; D],
    /// Upper-face slopes `β^{i+}`.
    pub beta_hi: [f64; D],
}

impl<const D: usize> Cfb<D> {
    /// Lower face on dimension `i` at probability `p`.
    #[inline]
    pub fn face_lo(&self, i: usize, p: f64) -> f64 {
        self.alpha.min[i] - self.beta_lo[i] * p
    }

    /// Upper face on dimension `i` at probability `p`.
    #[inline]
    pub fn face_hi(&self, i: usize, p: f64) -> f64 {
        self.alpha.max[i] - self.beta_hi[i] * p
    }

    /// The box at probability `p`. Numerically inverted faces (possible for
    /// inner boxes near `p = 0.5`) collapse to their midpoint.
    pub fn eval(&self, p: f64) -> Rect<D> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.face_lo(i, p);
            max[i] = self.face_hi(i, p);
            if min[i] > max[i] {
                let mid = 0.5 * (min[i] + max[i]);
                min[i] = mid;
                max[i] = mid;
            }
        }
        Rect { min, max }
    }

    /// Rounds every parameter so the evaluated box can only *grow* under
    /// the on-page f32 narrowing (for outer boxes: lower faces down, upper
    /// faces up — note `face = α − β·p` with `p >= 0`, so a lower face
    /// moves down when `α⁻` shrinks or `β⁻` grows).
    pub fn round_outward(&self) -> Self {
        let mut out = *self;
        for i in 0..D {
            out.alpha.min[i] = f32_round_down(self.alpha.min[i]);
            out.alpha.max[i] = f32_round_up(self.alpha.max[i]);
            out.beta_lo[i] = f32_round_up(self.beta_lo[i]);
            out.beta_hi[i] = f32_round_down(self.beta_hi[i]);
        }
        out
    }

    /// Rounds so the evaluated box can only *shrink* (for inner boxes).
    pub fn round_inward(&self) -> Self {
        let mut out = *self;
        for i in 0..D {
            out.alpha.min[i] = f32_round_up(self.alpha.min[i]);
            out.alpha.max[i] = f32_round_down(self.alpha.max[i]);
            out.beta_lo[i] = f32_round_down(self.beta_lo[i]);
            out.beta_hi[i] = f32_round_up(self.beta_hi[i]);
        }
        out
    }
}

/// The (outer, inner) CFB pair of one object — what a U-tree leaf entry
/// stores, and the Observation-3 view of the object's PCRs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfbPair<const D: usize> {
    /// `cfb_out(p_j) ⊇ pcr(p_j)`.
    pub outer: Cfb<D>,
    /// `cfb_in(p_j) ⊆ pcr(p_j)`.
    pub inner: Cfb<D>,
}

/// Evaluating at catalog values yields the Observation-3 approximations.
pub struct CfbView<'a, const D: usize> {
    /// The pair under evaluation.
    pub pair: &'a CfbPair<D>,
    /// The catalog supplying `p_j`.
    pub catalog: &'a UCatalog,
}

impl<const D: usize> PcrAccess<D> for CfbView<'_, D> {
    fn outer(&self, j: usize) -> Rect<D> {
        self.pair.outer.eval(self.catalog.value(j))
    }

    fn inner(&self, j: usize) -> Rect<D> {
        self.pair.inner.eval(self.catalog.value(j))
    }
}

/// Fits the optimal (summed-margin) outer and inner CFBs to an object's
/// PCRs via per-dimension Simplex LPs (paper Sec 4.4), then nudges the
/// results to be exactly feasible under floating point and conservatively
/// f32-rounded for on-page storage.
pub fn fit_cfb_pair<const D: usize>(pcrs: &PcrSet<D>, catalog: &UCatalog) -> CfbPair<D> {
    let m = catalog.len() as f64;
    let p_sum = catalog.sum();
    let ps = catalog.values();

    let mut outer = Cfb {
        alpha: Rect::new([0.0; D], [0.0; D]),
        beta_lo: [0.0; D],
        beta_hi: [0.0; D],
    };
    let mut inner = outer;

    for i in 0..D {
        let faces_lo: Vec<f64> = pcrs.rects().iter().map(|r| r.min[i]).collect();
        let faces_hi: Vec<f64> = pcrs.rects().iter().map(|r| r.max[i]).collect();

        // ---- outer, lower face: maximize m·α − P·β
        //      s.t. α − β·p_j <= pcr_j (stay below every PCR lower face)
        let (a, b) = {
            let mut lp = LinearProgram::maximize(vec![m, -p_sum]);
            for (p, c) in ps.iter().zip(&faces_lo) {
                lp.less_eq(vec![1.0, -p], *c);
            }
            match lp.solve() {
                Ok(s) => (s.x[0], s.x[1]),
                // Safe fallback: a constant box at the widest PCR.
                Err(_) => (faces_lo.iter().cloned().fold(f64::INFINITY, f64::min), 0.0),
            }
        };
        outer.alpha.min[i] = a;
        outer.beta_lo[i] = b;

        // ---- outer, upper face: minimize m·α − P·β
        //      s.t. α − β·p_j >= pcr_j
        let (a, b) = {
            let mut lp = LinearProgram::maximize(vec![-m, p_sum]);
            for (p, c) in ps.iter().zip(&faces_hi) {
                lp.greater_eq(vec![1.0, -p], *c);
            }
            match lp.solve() {
                Ok(s) => (s.x[0], s.x[1]),
                Err(_) => (
                    faces_hi.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    0.0,
                ),
            }
        };
        outer.alpha.max[i] = a;
        outer.beta_hi[i] = b;

        // ---- inner: maximize Σ_j margins = m·(α⁺−α⁻) − P·(β⁺−β⁻)
        //      s.t. α⁻−β⁻p_j >= pcr_j⁻, α⁺−β⁺p_j <= pcr_j⁺,
        //           α⁻−β⁻p_j <= α⁺−β⁺p_j       (Eq. 14)
        // Variables: [α⁻, β⁻, α⁺, β⁺].
        let sol = {
            let mut lp = LinearProgram::maximize(vec![-m, p_sum, m, -p_sum]);
            for ((p, lo), hi) in ps.iter().zip(&faces_lo).zip(&faces_hi) {
                lp.greater_eq(vec![1.0, -p, 0.0, 0.0], *lo);
                lp.less_eq(vec![0.0, 0.0, 1.0, -p], *hi);
                lp.less_eq(vec![1.0, -p, -1.0, *p], 0.0);
            }
            lp.solve()
        };
        match sol {
            Ok(s) => {
                inner.alpha.min[i] = s.x[0];
                inner.beta_lo[i] = s.x[1];
                inner.alpha.max[i] = s.x[2];
                inner.beta_hi[i] = s.x[3];
            }
            Err(_) => {
                // Fallback: the degenerate point at the smallest PCR's
                // center — inside every (nested) PCR.
                let last = pcrs.rect(pcrs.len() - 1);
                let mid = 0.5 * (last.min[i] + last.max[i]);
                inner.alpha.min[i] = mid;
                inner.beta_lo[i] = 0.0;
                inner.alpha.max[i] = mid;
                inner.beta_hi[i] = 0.0;
            }
        }
    }

    // Exact feasibility repair: shift intercepts by the worst violation so
    // the conservative inclusions hold with zero tolerance.
    for i in 0..D {
        let mut out_lo_shift = 0.0f64; // need face_lo <= pcr_lo
        let mut out_hi_shift = 0.0f64;
        let mut in_lo_shift = 0.0f64; // need face_lo >= pcr_lo
        let mut in_hi_shift = 0.0f64;
        for (j, &p) in ps.iter().enumerate() {
            let r = pcrs.rect(j);
            out_lo_shift = out_lo_shift.max(outer.face_lo(i, p) - r.min[i]);
            out_hi_shift = out_hi_shift.max(r.max[i] - outer.face_hi(i, p));
            in_lo_shift = in_lo_shift.max(r.min[i] - inner.face_lo(i, p));
            in_hi_shift = in_hi_shift.max(inner.face_hi(i, p) - r.max[i]);
        }
        outer.alpha.min[i] -= out_lo_shift;
        outer.alpha.max[i] += out_hi_shift;
        inner.alpha.min[i] += in_lo_shift;
        inner.alpha.max[i] -= in_hi_shift;
    }

    CfbPair {
        outer: outer.round_outward(),
        inner: inner.round_inward(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn fit(pdf: &ObjectPdf<2>, cat: &UCatalog) -> (PcrSet<2>, CfbPair<2>) {
        let pcrs = PcrSet::compute(pdf, cat);
        let pair = fit_cfb_pair(&pcrs, cat);
        (pcrs, pair)
    }

    fn disk() -> ObjectPdf<2> {
        ObjectPdf::UniformBall {
            center: Point::new([5000.0, 5000.0]),
            radius: 250.0,
        }
    }

    /// Containment up to the numeric tolerance of PCR quantiles: at
    /// p = 0.5 the PCR degenerates to a point whose coordinates carry the
    /// bisection tolerance, so exact containment is not meaningful there.
    fn contains_eps(outer: &Rect<2>, inner: &Rect<2>, eps: f64) -> bool {
        rstar_base::rect_covers_eps(outer, inner, eps)
    }

    #[test]
    fn outer_contains_every_pcr() {
        let cat = UCatalog::uniform(8);
        let (pcrs, pair) = fit(&disk(), &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let out = pair.outer.eval(p);
            assert!(
                out.contains_rect(pcrs.rect(j)),
                "cfb_out({p}) = {out:?} must contain pcr = {:?}",
                pcrs.rect(j)
            );
        }
    }

    #[test]
    fn inner_contained_in_every_pcr() {
        let cat = UCatalog::uniform(8);
        let (pcrs, pair) = fit(&disk(), &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let inn = pair.inner.eval(p);
            assert!(
                contains_eps(pcrs.rect(j), &inn, 1e-6),
                "pcr({p}) = {:?} must contain cfb_in = {inn:?}",
                pcrs.rect(j)
            );
        }
    }

    #[test]
    fn congau_cfbs_conservative_too() {
        let pdf: ObjectPdf<2> = ObjectPdf::ConGauBall {
            center: Point::new([1000.0, 2000.0]),
            radius: 250.0,
            sigma: 125.0,
        };
        let cat = UCatalog::paper_utree_default();
        let (pcrs, pair) = fit(&pdf, &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            assert!(
                pair.outer.eval(p).contains_rect(pcrs.rect(j)),
                "outer at {p}"
            );
            // Con-Gau marginals are tabulated (1024-cell grid), so the
            // degenerate pcr(0.5) point carries ~1e-3 of quantile noise;
            // 0.05 is still 4 orders below the radius-250 object scale.
            assert!(
                contains_eps(pcrs.rect(j), &pair.inner.eval(p), 0.05),
                "inner at {p}: pcr={:?} cfb_in={:?}",
                pcrs.rect(j),
                pair.inner.eval(p)
            );
        }
    }

    #[test]
    fn outer_is_tight_for_linear_pcrs() {
        // A uniform box has *linear* PCR faces (quantiles are linear in p),
        // so the optimal linear CFB matches them almost exactly.
        let pdf = ObjectPdf::UniformBox {
            rect: Rect::new([0.0, 0.0], [100.0, 100.0]),
        };
        let cat = UCatalog::uniform(6);
        let (pcrs, pair) = fit(&pdf, &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let out = pair.outer.eval(p);
            let r = pcrs.rect(j);
            for i in 0..2 {
                assert!(
                    (out.min[i] - r.min[i]).abs() < 0.1,
                    "lower face slack at p={p}"
                );
                assert!(
                    (out.max[i] - r.max[i]).abs() < 0.1,
                    "upper face slack at p={p}"
                );
            }
        }
    }

    #[test]
    fn inner_has_positive_extent_away_from_half() {
        let cat = UCatalog::uniform(8);
        let (_, pair) = fit(&disk(), &cat);
        let inn = pair.inner.eval(0.1);
        assert!(inn.extent(0) > 1.0, "inner box degenerate: {inn:?}");
        assert!(inn.extent(1) > 1.0);
    }

    #[test]
    fn rounding_survives_f32_narrowing() {
        let cat = UCatalog::uniform(8);
        let (pcrs, pair) = fit(&disk(), &cat);
        // Simulate the page codec narrow/widen cycle: values must be
        // unchanged (they are already f32-representable) and inclusions
        // must continue to hold exactly.
        for i in 0..2 {
            let a = pair.outer.alpha.min[i];
            assert_eq!(a as f32 as f64, a);
            let b = pair.inner.beta_hi[i];
            assert_eq!(b as f32 as f64, b);
        }
        for (j, &p) in cat.values().iter().enumerate() {
            assert!(pair.outer.eval(p).contains_rect(pcrs.rect(j)));
        }
    }

    #[test]
    fn view_implements_observation3_access() {
        let cat = UCatalog::uniform(6);
        let (pcrs, pair) = fit(&disk(), &cat);
        let view = CfbView {
            pair: &pair,
            catalog: &cat,
        };
        for j in 0..cat.len() {
            assert!(view.outer(j).contains_rect(pcrs.rect(j)));
            assert!(contains_eps(pcrs.rect(j), &view.inner(j), 1e-6));
        }
    }

    #[test]
    fn storage_is_8d_values() {
        // The space claim of Sec 4.3: a CFB pair is 8d floats
        // (2d intercept + 2d slope per box).
        let d = 2;
        assert_eq!(
            std::mem::size_of::<CfbPair<2>>(),
            8 * d * std::mem::size_of::<f64>()
        );
    }
}
