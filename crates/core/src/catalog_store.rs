//! The multi-index catalog: many named, sharded indexes in one directory,
//! committing / recovering through **one** write-ahead log.
//!
//! A catalog directory holds:
//!
//! * `catalog.pg` — a [`DiskPageFile`] whose superblock anchors (via
//!   [`DiskPageFile::app_root`], persisted exactly like the free list) a
//!   chain of pages carrying the catalog records: name → index id →
//!   structure kind, dimensionality, shard count, WAL tag range, U-catalog
//!   values, R* tuning, and every shard's superstructure (root page,
//!   height, record count, open heap page);
//! * `wal.log` — one shared log. Every [`IndexCatalog::commit`] stages
//!   *all* indexes' dirty pages and seals them, together with the encoded
//!   catalog, under a **single commit marker** — crash recovery lands all
//!   indexes on the same batch boundary, never on a mix;
//! * `idx-<id>-<shard>.pg` / `heap-<id>-<shard>.pg` — the node and heap
//!   page snapshots of each physical shard tree, each journaled through
//!   the shared log under its own store tag.
//!
//! On [`IndexCatalog::open`], the page-file catalog supplies the segment
//! *set* (which files exist — index DDL rewrites it durably before any
//! commit can reference the new segments), the log is recovered and
//! replayed across every segment, and the log's last committed catalog
//! record — when present — supplies the authoritative per-index
//! superstructure. [`IndexCatalog::checkpoint`] rewrites all snapshots
//! plus the page-file catalog and truncates the log, exactly like the
//! single-tree `checkpoint`.
//!
//! Naming rules: index names are 1–64 characters from `[A-Za-z0-9_.-]`,
//! unique within the catalog. Names are catalog keys, not file names —
//! segment files are keyed by the immutable numeric index id.

use crate::catalog::UCatalog;
use crate::persist::{self, ReplayFile};
use crate::shard::ShardedIndex;
use crate::tree::UTree;
use crate::DiskStore;
use page_store::wal::{self, CommitReceipt, Wal};
use page_store::{
    byte_array, ByteReader, ByteWriter, DiskPageFile, ObjectHeap, PageId, PageStore, PAGE_SIZE,
};
use rstar_base::TreeConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const CATALOG_FILE: &str = "catalog.pg";
const WAL_FILE: &str = "wal.log";
const MAGIC: [u8; 4] = *b"UCAT";
const VERSION: u16 = 1;
/// Catalog chain page: next-page pointer + chunk length + payload.
const CHAIN_HEADER: usize = 8 + 4;
const CHAIN_CHUNK: usize = PAGE_SIZE - CHAIN_HEADER;
const NO_NEXT: u64 = u64::MAX;
/// WAL store tags are `u8`, two per shard — the hard segment budget.
const MAX_TAGS: u32 = 256;

/// The persistent definition of one named index: everything needed to
/// reopen its shard trees except the page images themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// The catalog key (see the module docs for the naming rules).
    pub name: String,
    /// Immutable numeric id; segment files are named after it.
    pub id: u32,
    /// Physical shard trees this index is partitioned across.
    pub shard_count: usize,
    /// First WAL store tag of this index's segments (two per shard,
    /// contiguous). Tags are assigned at creation and never reused, so
    /// log records written before any later DDL keep replaying onto the
    /// right files.
    pub(crate) base_tag: u8,
    /// U-catalog values shared by every shard.
    pub catalog: Vec<f64>,
    /// R* tuning shared by every shard.
    pub cfg: TreeConfig,
}

/// Per-shard superstructure as carried by the catalog records (the
/// multi-index analogue of `meta.bin`).
#[derive(Debug, Clone, Copy)]
struct ShardMeta {
    root: PageId,
    height: usize,
    len: usize,
    heap_open_page: Option<PageId>,
}

struct CatalogEntry<const D: usize> {
    def: IndexDef,
    index: ShardedIndex<D, DiskStore>,
}

/// A directory of named, sharded, disk-backed indexes sharing one WAL —
/// see the module docs for the file layout and recovery contract.
pub struct IndexCatalog<const D: usize> {
    dir: PathBuf,
    file: DiskPageFile,
    wal: Arc<Mutex<Wal>>,
    entries: Vec<CatalogEntry<D>>,
    next_id: u32,
    next_tag: u32,
    buffer_pages: usize,
    pool_shards: Option<usize>,
}

fn invalid_input(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.to_string())
}

fn validate_name(name: &str) -> io::Result<()> {
    let ok_len = (1..=64).contains(&name.len());
    let ok_chars = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if !(ok_len && ok_chars) {
        return Err(invalid_input(format!(
            "invalid index name {name:?}: 1-64 characters from [A-Za-z0-9_.-]"
        )));
    }
    Ok(())
}

impl<const D: usize> IndexCatalog<D> {
    /// Creates an empty catalog directory: `catalog.pg` (with an empty,
    /// superblock-anchored record chain) and a fresh `wal.log`.
    pub fn create<P: AsRef<Path>>(dir: P, buffer_pages: usize) -> io::Result<Self> {
        Self::create_with_shards(dir, buffer_pages, None)
    }

    /// [`IndexCatalog::create`] with pinned buffer-pool latch striping for
    /// every segment pool (`None` = automatic).
    pub fn create_with_shards<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        pool_shards: Option<usize>,
    ) -> io::Result<Self> {
        persist::validate_pool_params(buffer_pages, pool_shards)?;
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let file = DiskPageFile::create(dir.join(CATALOG_FILE))?;
        let wal = Wal::create(dir.join(WAL_FILE))?;
        let mut catalog = Self {
            dir,
            file,
            wal: Arc::new(Mutex::new(wal)),
            entries: Vec::new(),
            next_id: 0,
            next_tag: 0,
            buffer_pages,
            pool_shards,
        };
        catalog.persist_catalog()?;
        Ok(catalog)
    }

    /// Opens an existing catalog directory, recovering the shared log
    /// first: committed batches replay across every segment file, and the
    /// log's last committed catalog record supersedes `catalog.pg`'s
    /// superstructure for the indexes it names.
    pub fn open<P: AsRef<Path>>(dir: P, buffer_pages: usize) -> io::Result<Self> {
        Self::open_with_shards(dir, buffer_pages, None)
    }

    /// [`IndexCatalog::open`] with pinned buffer-pool latch striping.
    pub fn open_with_shards<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        pool_shards: Option<usize>,
    ) -> io::Result<Self> {
        persist::validate_pool_params(buffer_pages, pool_shards)?;
        let dir = dir.as_ref().to_path_buf();
        let file = DiskPageFile::open(dir.join(CATALOG_FILE))?;
        let blob = read_chain(&file, &dir)?;
        let (mut defs, mut metas, next_id) = decode_catalog::<D>(&blob, &dir)?;

        // Recover the shared log and replay committed batches onto every
        // segment in tag order. Records for tags the current catalog does
        // not know are ignored by `replay` — they cannot exist unless the
        // directory is corrupt, and the superstructure check below
        // catches that case.
        let recovery = Wal::recover(dir.join(WAL_FILE))?;
        let mut replay_files: Vec<ReplayFile> = Vec::new();
        for def in &defs {
            debug_assert_eq!(def.base_tag as usize, replay_files.len());
            for shard in 0..def.shard_count {
                for kind in ["idx", "heap"] {
                    let path = seg_path(&dir, kind, def.id, shard);
                    replay_files.push(ReplayFile::new(DiskPageFile::open(path)?));
                }
            }
        }
        let wal_meta = {
            let mut targets: Vec<&mut dyn wal::ReplayTarget> = replay_files
                .iter_mut()
                .map(|rf| rf as &mut dyn wal::ReplayTarget)
                .collect();
            wal::replay(&recovery.batches, &mut targets)?
        };
        // The log's catalog record is authoritative for the indexes it
        // names (it belongs to the replayed page state); indexes created
        // after the last commit keep their `catalog.pg` superstructure.
        if let Some(bytes) = wal_meta {
            let (wal_defs, wal_metas, wal_next_id) = decode_catalog::<D>(&bytes, &dir)?;
            let _ = wal_next_id;
            for (wdef, wmeta) in wal_defs.iter().zip(&wal_metas) {
                let Some(pos) = defs.iter().position(|d| d.id == wdef.id) else {
                    return Err(persist::invalid_data(format!(
                        "{}: log names index id {} missing from catalog.pg",
                        dir.display(),
                        wdef.id
                    )));
                };
                if defs[pos] != *wdef {
                    return Err(persist::invalid_data(format!(
                        "{}: log and catalog.pg disagree on index {:?}",
                        dir.display(),
                        wdef.name
                    )));
                }
                metas[pos] = wmeta.clone();
            }
        }

        let wal = Arc::new(Mutex::new(recovery.wal));
        let mut next_tag = 0u32;
        let mut entries = Vec::with_capacity(defs.len());
        let mut files = replay_files.into_iter();
        for (def, shard_metas) in defs.drain(..).zip(metas) {
            let ucat =
                Arc::new(UCatalog::try_new(def.catalog.clone()).map_err(persist::invalid_data)?);
            let mut shards = Vec::with_capacity(def.shard_count);
            for (shard, sm) in shard_metas.iter().enumerate() {
                let tag = def.base_tag as u32 + 2 * shard as u32;
                // xlint: allow(panic-freedom) -- invariant: one replay file per tag
                let index_rf = files.next().expect("one replay file per tag");
                // xlint: allow(panic-freedom) -- invariant: one replay file per tag
                let heap_rf = files.next().expect("one replay file per tag");
                let index =
                    persist::wrap_store(index_rf, &wal, tag as u8, buffer_pages, pool_shards);
                let heap_store =
                    persist::wrap_store(heap_rf, &wal, (tag + 1) as u8, buffer_pages, pool_shards);
                let meta = persist::SavedMeta {
                    kind: persist::KIND_UTREE,
                    dims: D as u8,
                    catalog: def.catalog.clone(),
                    cfg: def.cfg,
                    root: sm.root,
                    height: sm.height,
                    len: sm.len,
                    heap_open_page: sm.heap_open_page,
                };
                check_segment(&dir, &def, shard, &meta, &index, &heap_store)?;
                let heap = ObjectHeap::from_raw_parts(heap_store, sm.heap_open_page);
                shards.push(UTree::from_opened_parts(persist::OpenedParts {
                    meta,
                    catalog: Arc::clone(&ucat),
                    index,
                    heap,
                }));
            }
            next_tag = next_tag.max(def.base_tag as u32 + 2 * def.shard_count as u32);
            entries.push(CatalogEntry {
                index: ShardedIndex::from_trees(shards),
                def,
            });
        }
        Ok(Self {
            dir,
            file,
            wal,
            entries,
            next_id,
            next_tag,
            buffer_pages,
            pool_shards,
        })
    }

    /// Creates a new named index partitioned across `shard_count` fresh
    /// shard trees and durably registers it in `catalog.pg` — DDL is
    /// snapshot-ordered: the segment files exist and the catalog names
    /// them before any commit can journal pages against them.
    pub fn create_index(
        &mut self,
        name: &str,
        catalog: UCatalog,
        cfg: TreeConfig,
        shard_count: usize,
    ) -> io::Result<()> {
        validate_name(name)?;
        if self.entries.iter().any(|e| e.def.name == name) {
            return Err(invalid_input(format!("index {name:?} already exists")));
        }
        if shard_count == 0 {
            return Err(invalid_input("an index needs at least one shard"));
        }
        let tags_needed = 2 * shard_count as u32;
        if self.next_tag + tags_needed > MAX_TAGS {
            return Err(invalid_input(format!(
                "catalog is out of WAL store tags ({} used of {MAX_TAGS}, {tags_needed} more needed)",
                self.next_tag
            )));
        }

        let def = IndexDef {
            name: name.to_string(),
            id: self.next_id,
            shard_count,
            base_tag: self.next_tag as u8,
            catalog: catalog.values().to_vec(),
            cfg,
        };
        // Format each shard as an empty in-memory tree and snapshot it to
        // its segment files — crash-ordered ahead of the catalog rewrite,
        // so `catalog.pg` never names files that don't exist.
        let template: UTree<D> = UTree::with_config(catalog, cfg);
        let meta = template.saved_meta();
        let ucat = Arc::new(UCatalog::try_new(def.catalog.clone()).map_err(persist::invalid_data)?);
        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let idx_path = seg_path(&self.dir, "idx", def.id, shard);
            let heap_path = seg_path(&self.dir, "heap", def.id, shard);
            persist::dump_store(template.node_store(), &idx_path)?;
            persist::dump_store(template.heap().file(), &heap_path)?;
            let tag = def.base_tag as u32 + 2 * shard as u32;
            let index = persist::wrap_store(
                ReplayFile::new(DiskPageFile::open(&idx_path)?),
                &self.wal,
                tag as u8,
                self.buffer_pages,
                self.pool_shards,
            );
            let heap_store = persist::wrap_store(
                ReplayFile::new(DiskPageFile::open(&heap_path)?),
                &self.wal,
                (tag + 1) as u8,
                self.buffer_pages,
                self.pool_shards,
            );
            let heap = ObjectHeap::from_raw_parts(heap_store, meta.heap_open_page);
            shards.push(UTree::from_opened_parts(persist::OpenedParts {
                meta: persist::SavedMeta {
                    catalog: def.catalog.clone(),
                    ..template.saved_meta()
                },
                catalog: Arc::clone(&ucat),
                index,
                heap,
            }));
        }
        self.next_id += 1;
        self.next_tag += tags_needed;
        self.entries.push(CatalogEntry {
            index: ShardedIndex::from_trees(shards),
            def,
        });
        self.persist_catalog()
    }

    /// The named index, if it exists (query surface: `&self` end-to-end).
    pub fn get(&self, name: &str) -> Option<&ShardedIndex<D, DiskStore>> {
        self.entries
            .iter()
            .find(|e| e.def.name == name)
            .map(|e| &e.index)
    }

    /// Mutable access to the named index (inserts/deletes; remember to
    /// [`IndexCatalog::commit`]).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ShardedIndex<D, DiskStore>> {
        self.entries
            .iter_mut()
            .find(|e| e.def.name == name)
            .map(|e| &mut e.index)
    }

    /// Index names in creation order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.def.name.as_str()).collect()
    }

    /// The persistent definitions, in creation order.
    pub fn defs(&self) -> impl Iterator<Item = &IndexDef> {
        self.entries.iter().map(|e| &e.def)
    }

    /// Number of named indexes.
    pub fn index_count(&self) -> usize {
        self.entries.len()
    }

    /// Commits every update to every index since the last commit as one
    /// atomic WAL batch: all indexes' dirty pages, allocation changes and
    /// the full catalog record, sealed by a single commit marker.
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        self.commit_inner(false)
    }

    /// [`IndexCatalog::commit`] with a forced fsync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.commit_inner(true).map(|_| ())
    }

    fn commit_inner(&mut self, force_sync: bool) -> io::Result<CommitReceipt> {
        let blob = encode_catalog(self.next_id, self.entries.iter());
        let (receipt, durable) = {
            let wal = Arc::clone(&self.wal);
            let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
            for entry in &mut self.entries {
                for tree in entry.index.shards_mut() {
                    tree.stage_commit(&mut w)?;
                }
            }
            w.append_meta(&blob);
            let receipt = w.commit()?;
            if force_sync && !receipt.durable {
                w.sync()?;
            }
            (receipt, w.durable_lsn())
        };
        for entry in &mut self.entries {
            for tree in entry.index.shards_mut() {
                tree.finish_commit(receipt.lsn, durable)?;
            }
        }
        Ok(CommitReceipt {
            lsn: receipt.lsn,
            durable: durable >= receipt.lsn,
        })
    }

    /// Sets the group-commit window of the shared log (see
    /// [`crate::DiskUTree`]'s `set_group_commit`).
    pub fn set_group_commit(&mut self, every: u64) {
        self.wal
            .lock()
            // xlint: allow(panic-freedom) -- invariant: wal poisoned — a poisoned lock means a panicked writer, and re-raising is the only sound response
            .expect("wal poisoned")
            .set_group_commit(every);
    }

    /// Durably commits, rewrites every segment snapshot and the page-file
    /// catalog, and truncates the shared log — bounding recovery time for
    /// the whole directory at once.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.flush()?;
        for entry in &mut self.entries {
            for tree in entry.index.shards_mut() {
                if tree.has_deferred_commits() {
                    return Err(io::Error::other(
                        "checkpoint: deferred group commits survived the forced sync",
                    ));
                }
            }
        }
        for entry in &self.entries {
            for (shard, tree) in entry.index.shards().iter().enumerate() {
                persist::dump_store(
                    tree.node_store(),
                    &seg_path(&self.dir, "idx", entry.def.id, shard),
                )?;
                persist::dump_store(
                    tree.heap().file(),
                    &seg_path(&self.dir, "heap", entry.def.id, shard),
                )?;
            }
        }
        self.persist_catalog()?;
        self.wal
            .lock()
            .map_err(|_| io::Error::other("wal poisoned"))?
            .truncate()
    }

    /// Rewrites the catalog record chain in `catalog.pg` and re-anchors
    /// the superblock, crash-ordered: the new chain is written into pages
    /// that are free *under the currently-anchored superblock*, so a crash
    /// before the final flush leaves the old chain fully intact.
    fn persist_catalog(&mut self) -> io::Result<()> {
        let blob = encode_catalog(self.next_id, self.entries.iter());
        let old_chain = chain_pages(&self.file, &self.dir)?;
        let mut next = NO_NEXT;
        let chunks: Vec<&[u8]> = blob.chunks(CHAIN_CHUNK).collect();
        for chunk in chunks.iter().rev() {
            let id = self.file.allocate()?;
            let mut page = Vec::with_capacity(CHAIN_HEADER + chunk.len());
            page.extend_from_slice(&next.to_le_bytes());
            page.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            page.extend_from_slice(chunk);
            self.file.write(id, &page)?;
            next = id;
        }
        debug_assert_ne!(next, NO_NEXT, "catalog blob is never empty");
        self.file.set_app_root(Some(next));
        for page in old_chain {
            self.file.release(page);
        }
        self.file.flush()
    }
}

/// `idx-<id>-<shard>.pg` / `heap-<id>-<shard>.pg` under the catalog dir.
fn seg_path(dir: &Path, kind: &str, id: u32, shard: usize) -> PathBuf {
    dir.join(format!("{kind}-{id}-{shard}.pg"))
}

/// The pages of the anchored record chain, in chain order.
fn chain_pages(file: &DiskPageFile, dir: &Path) -> io::Result<Vec<PageId>> {
    let mut pages = Vec::new();
    let mut cur = file.app_root();
    while let Some(id) = cur {
        if pages.len() > file.capacity_pages() {
            return Err(persist::invalid_data(format!(
                "{}: catalog record chain has a cycle",
                dir.display()
            )));
        }
        pages.push(id);
        let page = file.peek_page(id)?;
        cur = match u64::from_le_bytes(byte_array(&page[..8])) {
            NO_NEXT => None,
            next => Some(next),
        };
    }
    Ok(pages)
}

/// Reassembles the record blob from the anchored chain.
fn read_chain(file: &DiskPageFile, dir: &Path) -> io::Result<Vec<u8>> {
    let mut blob = Vec::new();
    for id in chain_pages(file, dir)? {
        let page = file.peek_page(id)?;
        let len = u32::from_le_bytes(byte_array(&page[8..12])) as usize;
        if len > CHAIN_CHUNK {
            return Err(persist::invalid_data(format!(
                "{}: catalog chain page {id} overflows",
                dir.display()
            )));
        }
        blob.extend_from_slice(&page[CHAIN_HEADER..CHAIN_HEADER + len]);
    }
    Ok(blob)
}

fn encode_catalog<'a, const D: usize>(
    next_id: u32,
    entries: impl Iterator<Item = &'a CatalogEntry<D>>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u16(VERSION);
    w.put_u8(D as u8);
    w.put_u32(next_id);
    let entries: Vec<_> = entries.collect();
    w.put_u16(entries.len() as u16);
    for entry in entries {
        let def = &entry.def;
        w.put_u16(def.name.len() as u16);
        for b in def.name.bytes() {
            w.put_u8(b);
        }
        w.put_u32(def.id);
        w.put_u8(persist::KIND_UTREE);
        w.put_u8(def.base_tag);
        w.put_u16(def.shard_count as u16);
        w.put_f64(def.cfg.min_fill);
        w.put_f64(def.cfg.reinsert_frac);
        w.put_f64(def.cfg.covers_tolerance);
        w.put_u16(def.catalog.len() as u16);
        for &p in &def.catalog {
            w.put_f64(p);
        }
        for tree in entry.index.shards() {
            let m = tree.saved_meta();
            w.put_u64(m.root);
            w.put_u64(m.height as u64);
            w.put_u64(m.len as u64);
            w.put_u64(m.heap_open_page.unwrap_or(u64::MAX));
        }
    }
    w.into_bytes()
}

type DecodedCatalog = (Vec<IndexDef>, Vec<Vec<ShardMeta>>, u32);

fn decode_catalog<const D: usize>(bytes: &[u8], dir: &Path) -> io::Result<DecodedCatalog> {
    let bad = |msg: &str| persist::invalid_data(format!("{}: {msg}", dir.display()));
    if bytes.len() < 4 + 2 + 1 + 4 + 2 || bytes[..4] != MAGIC {
        return Err(bad("not a catalog record"));
    }
    let mut r = ByteReader::new(&bytes[4..]);
    let version = r.get_u16();
    if version != VERSION {
        return Err(bad(&format!("unsupported catalog version {version}")));
    }
    let dims = r.get_u8() as usize;
    if dims != D {
        return Err(bad(&format!("catalog is {dims}-dimensional, expected {D}")));
    }
    let next_id = r.get_u32();
    let n = r.get_u16() as usize;
    let mut defs = Vec::with_capacity(n);
    let mut metas = Vec::with_capacity(n);
    for _ in 0..n {
        if r.remaining() < 2 {
            return Err(bad("truncated catalog record"));
        }
        let name_len = r.get_u16() as usize;
        if r.remaining() < name_len {
            return Err(bad("truncated catalog record"));
        }
        let name_bytes: Vec<u8> = (0..name_len).map(|_| r.get_u8()).collect();
        let name = String::from_utf8(name_bytes).map_err(|_| bad("index name is not UTF-8"))?;
        if r.remaining() < 4 + 1 + 1 + 2 + 3 * 8 + 2 {
            return Err(bad("truncated catalog record"));
        }
        let id = r.get_u32();
        let kind = r.get_u8();
        if kind != persist::KIND_UTREE {
            return Err(bad(&format!("unsupported index kind {kind}")));
        }
        let base_tag = r.get_u8();
        let shard_count = r.get_u16() as usize;
        let cfg = TreeConfig {
            min_fill: r.get_f64(),
            reinsert_frac: r.get_f64(),
            covers_tolerance: r.get_f64(),
        };
        let m = r.get_u16() as usize;
        if r.remaining() < m * 8 + shard_count * 4 * 8 {
            return Err(bad("truncated catalog record"));
        }
        let catalog = (0..m).map(|_| r.get_f64()).collect();
        let shard_metas = (0..shard_count)
            .map(|_| ShardMeta {
                root: r.get_u64(),
                height: r.get_u64() as usize,
                len: r.get_u64() as usize,
                heap_open_page: match r.get_u64() {
                    u64::MAX => None,
                    p => Some(p),
                },
            })
            .collect();
        defs.push(IndexDef {
            name,
            id,
            shard_count,
            base_tag,
            catalog,
            cfg,
        });
        metas.push(shard_metas);
    }
    if r.remaining() != 0 {
        return Err(bad("trailing bytes after catalog record"));
    }
    Ok((defs, metas, next_id))
}

/// Root/open-page bounds checks for one reopened segment, mirroring the
/// single-index `open_parts` validation.
fn check_segment(
    dir: &Path,
    def: &IndexDef,
    shard: usize,
    meta: &persist::SavedMeta,
    index: &DiskStore,
    heap: &DiskStore,
) -> io::Result<()> {
    let label = || format!("{} (index {:?} shard {shard})", dir.display(), def.name);
    if meta.height == 0 {
        return Err(persist::invalid_data(format!("{}: zero height", label())));
    }
    if meta.root as usize >= index.capacity_pages() {
        return Err(persist::invalid_data(format!(
            "{}: root page {} outside the index file",
            label(),
            meta.root
        )));
    }
    if let Some(p) = meta.heap_open_page {
        if p as usize >= heap.capacity_pages() {
            return Err(persist::invalid_data(format!(
                "{}: open heap page {p} outside the heap file",
                label()
            )));
        }
    }
    Ok(())
}
