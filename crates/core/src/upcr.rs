//! U-PCR: the comparison structure of Sec 6 — identical machinery to the
//! U-tree but with all m PCRs stored verbatim in every (leaf and
//! intermediate) entry instead of CFBs.
//!
//! Filtering is *stronger* per entry (exact PCRs, Observation 2) but the
//! fat entries shrink fanout, so the structure reads more pages — the
//! trade-off the paper's experiments quantify.

use crate::api::{
    outcome_from_ctx, IndexBuilder, ProbIndex, Query, QueryError, QueryOutcome, RankOutcome,
    RankQuery,
};
use crate::catalog::UCatalog;
use crate::entry::{UPcrCodec, UPcrLeafEntry};
use crate::filter::FilterOutcome;
use crate::key::{PcrKey, PcrMetrics};
use crate::object_codec::encode_object;
use crate::pcr::PcrSet;
use crate::persist;
use crate::query::{refine_ctx, QueryCtx};
use page_store::{CommitReceipt, ObjectHeap, PageFile, PageStore};
use rstar_base::{str_order_by, LeafRecord, NodeCodec, RStarTreeBase, TreeConfig, TreeStats};
use std::borrow::Borrow;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use uncertain_geom::Rect;
use uncertain_pdf::{ObjectPdf, UncertainObject};

use crate::tree::InsertStats;

/// The U-PCR index, generic over its [`PageStore`] like
/// [`crate::UTree`].
pub struct UPcrTree<const D: usize, S: PageStore = PageFile> {
    tree: RStarTreeBase<D, PcrMetrics<D>, UPcrLeafEntry<D>, UPcrCodec<D>, S>,
    heap: ObjectHeap<S>,
    catalog: Arc<UCatalog>,
}

impl<const D: usize> UPcrTree<D> {
    /// Fluent fallible construction (see [`IndexBuilder`]).
    pub fn builder() -> IndexBuilder<D, Self> {
        IndexBuilder::new()
    }

    /// An empty U-PCR over the given catalog (the paper tunes m = 9 for 2D
    /// and m = 10 for 3D; Sec 6.2).
    pub fn new(catalog: UCatalog) -> Self {
        Self::with_config(catalog, TreeConfig::default())
    }

    /// With explicit R* tuning.
    pub fn with_config(catalog: UCatalog, cfg: TreeConfig) -> Self {
        let catalog = Arc::new(catalog);
        let metrics = PcrMetrics::new(catalog.clone());
        let codec = UPcrCodec::new(catalog.clone());
        Self {
            tree: RStarTreeBase::new(metrics, codec, cfg),
            heap: ObjectHeap::new(),
            catalog,
        }
    }
}

impl<const D: usize> UPcrTree<D, persist::DiskStore> {
    /// Opens a [`UPcrTree::save`]d index directory through LRU buffer
    /// pools of `buffer_pages` frames (see [`crate::UTree::open`]).
    pub fn open<P: AsRef<Path>>(dir: P, buffer_pages: usize) -> io::Result<Self> {
        Self::open_parts(dir, buffer_pages, None)
    }

    /// [`UPcrTree::open`] with an explicit buffer-pool shard count (see
    /// [`crate::UTree::open_with_shards`]).
    pub fn open_with_shards<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        shards: usize,
    ) -> io::Result<Self> {
        Self::open_parts(dir, buffer_pages, Some(shards))
    }

    fn open_parts<P: AsRef<Path>>(
        dir: P,
        buffer_pages: usize,
        shards: Option<usize>,
    ) -> io::Result<Self> {
        let parts = persist::open_parts(dir.as_ref(), persist::KIND_UPCR, D, buffer_pages, shards)?;
        let metrics = PcrMetrics::new(parts.catalog.clone());
        let codec = UPcrCodec::new(parts.catalog.clone());
        Ok(Self {
            tree: RStarTreeBase::from_raw_parts(
                parts.index,
                parts.meta.root,
                parts.meta.height,
                parts.meta.len,
                metrics,
                codec,
                parts.meta.cfg,
            ),
            heap: parts.heap,
            catalog: parts.catalog,
        })
    }

    /// Commits every update since the last commit as one atomic WAL batch
    /// (see [`crate::UTree::commit`]).
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        self.commit_inner(false)
    }

    /// [`Self::commit`] with a forced fsync (see [`crate::UTree::flush`]).
    pub fn flush(&mut self) -> io::Result<()> {
        self.commit_inner(true).map(|_| ())
    }

    fn commit_inner(&mut self, force_sync: bool) -> io::Result<CommitReceipt> {
        let meta = persist::encode_meta(&self.saved_meta());
        self.tree.store_mut().write_back()?;
        self.heap.file_mut().write_back()?;
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        let (receipt, durable) = {
            let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
            self.tree.store_mut().backend_mut().stage(&mut w);
            self.heap.file_mut().backend_mut().stage(&mut w);
            w.append_meta(&meta);
            let receipt = w.commit()?;
            if force_sync && !receipt.durable {
                w.sync()?;
            }
            (receipt, w.durable_lsn())
        };
        let index = self.tree.store_mut().backend_mut();
        index.note_commit(receipt.lsn);
        index.apply_through(durable)?;
        let heap = self.heap.file_mut().backend_mut();
        heap.note_commit(receipt.lsn);
        heap.apply_through(durable)?;
        Ok(CommitReceipt {
            lsn: receipt.lsn,
            durable: durable >= receipt.lsn,
        })
    }

    /// Durably commits, rewrites the snapshot of this tree's own
    /// directory, and truncates the log (see [`crate::UTree::checkpoint`]).
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.flush()?;
        // Write-ahead audit (see [`crate::UTree::checkpoint`]): the
        // snapshot rename must never overtake a deferred group commit.
        if self.tree.store_mut().backend_mut().has_deferred_commits()
            || self.heap.file_mut().backend_mut().has_deferred_commits()
        {
            return Err(io::Error::other(
                "checkpoint: deferred group commits survived the forced sync",
            ));
        }
        let dir = self
            .tree
            .store()
            .backing_path()
            .and_then(|p| p.parent().map(|d| d.to_path_buf()))
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "tree has no backing directory")
            })?;
        persist::save_index(
            &dir,
            &self.saved_meta(),
            self.tree.store(),
            self.heap.file(),
        )?;
        let wal = self.tree.store_mut().backend_mut().wal_handle();
        let mut w = wal.lock().map_err(|_| io::Error::other("wal poisoned"))?;
        w.truncate()
    }
}

impl<const D: usize, S: PageStore> UPcrTree<D, S> {
    /// Saves the index as a directory [`UPcrTree::open`] can reopen cold
    /// (same format as [`crate::UTree::save`], tagged as U-PCR).
    fn saved_meta(&self) -> persist::SavedMeta {
        persist::SavedMeta {
            kind: persist::KIND_UPCR,
            dims: D as u8,
            catalog: self.catalog.values().to_vec(),
            cfg: self.tree.config(),
            root: self.tree.root_page(),
            height: self.tree.height(),
            len: self.tree.len(),
            heap_open_page: self.heap.open_page(),
        }
    }

    /// Snapshots the index (tree pages, heap, catalog, metadata) into
    /// `dir` so it can be reopened cold.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        // Self-saves over the live directory go through `checkpoint()`
        // (see [`crate::UTree::save`]).
        persist::reject_live_dir(self.tree.store(), dir.as_ref())?;
        persist::save_index(
            dir.as_ref(),
            &self.saved_meta(),
            self.tree.store(),
            self.heap.file(),
        )
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &UCatalog {
        &self.catalog
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Index size in bytes (Table 1's metric).
    pub fn index_size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    /// Heap (object detail) size in bytes.
    pub fn heap_size_bytes(&self) -> u64 {
        self.heap.size_bytes()
    }

    /// Structure statistics. Fallible: walking the node pages goes
    /// through the store, whose errors surface typed instead of
    /// panicking.
    pub fn tree_stats(&self) -> io::Result<TreeStats> {
        self.tree.stats()
    }

    /// R-tree invariant check (tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()
    }

    /// PCRs rounded to their on-page f32 values so that probe keys built at
    /// delete time match stored entries byte-for-byte.
    fn storable_pcrs(&self, pdf: &ObjectPdf<D>) -> (PcrSet<D>, u128) {
        let t0 = Instant::now();
        let pcrs = PcrSet::compute(pdf, &self.catalog);
        let nanos = t0.elapsed().as_nanos();
        let rounded = PcrSet::from_rects(
            pcrs.rects()
                .iter()
                .map(|r| {
                    let mut min = [0.0; D];
                    let mut max = [0.0; D];
                    for i in 0..D {
                        min[i] = r.min[i] as f32 as f64;
                        max[i] = r.max[i] as f32 as f64;
                        if min[i] > max[i] {
                            std::mem::swap(&mut min[i], &mut max[i]);
                        }
                    }
                    Rect { min, max }
                })
                .collect(),
        );
        (rounded, nanos)
    }

    fn storable_mbr(&self, pdf: &ObjectPdf<D>) -> Rect<D> {
        let raw = pdf.mbr();
        let mut mbr = raw;
        for i in 0..D {
            mbr.min[i] = page_store::f32_round_down(raw.min[i]);
            mbr.max[i] = page_store::f32_round_up(raw.max[i]);
        }
        mbr
    }

    /// Inserts an object.
    pub fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        let (pcrs, pcr_nanos) = self.storable_pcrs(&obj.pdf);
        let mbr = self.storable_mbr(&obj.pdf);
        let addr = self
            .heap
            .insert(&encode_object(obj))
            // xlint: allow(panic-freedom) -- invariant: heap store failed during insert
            .expect("heap store failed during insert");
        let entry = UPcrLeafEntry {
            pcrs,
            mbr,
            addr,
            id: obj.id,
        };
        let reads0 = self.tree.io_stats().reads();
        let writes0 = self.tree.io_stats().writes();
        self.tree
            .insert(entry)
            // xlint: allow(panic-freedom) -- invariant: index store failed during insert
            .expect("index store failed during insert");
        InsertStats {
            pcr_nanos,
            lp_nanos: 0, // U-PCR skips the CFB fitting entirely
            io_reads: self.tree.io_stats().reads() - reads0,
            io_writes: self.tree.io_stats().writes() - writes0,
        }
    }

    /// Deletes an object (payload recomputed deterministically).
    pub fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        let (pcrs, _) = self.storable_pcrs(&obj.pdf);
        let probe = PcrKey {
            rects: pcrs.rects().to_vec(),
        };
        match self
            .tree
            .delete(&probe, obj.id)
            // xlint: allow(panic-freedom) -- invariant: index store failed during delete
            .expect("index store failed during delete")
        {
            Some(entry) => {
                self.heap
                    .remove(entry.addr)
                    // xlint: allow(panic-freedom) -- invariant: heap store failed during delete
                    .expect("heap store failed during delete");
                true
            }
            None => false,
        }
    }

    /// Bulk-loads an empty tree with STR packing — the exact-PCR analogue
    /// of [`crate::UTree::bulk_load`]: payloads in one timed pass, STR
    /// order by MBR centre, heap records appended in leaf order, bottom-up
    /// packed build. Falls back to the insert loop on a non-empty tree.
    pub fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        if !self.is_empty() {
            let mut acc = InsertStats::default();
            for obj in objs {
                acc += &self.insert(obj.borrow());
            }
            return acc;
        }
        let mut pcr_nanos = 0u128;
        let mut staged: Vec<(PcrSet<D>, Rect<D>, Vec<u8>, u64)> = Vec::new();
        for obj in objs {
            let obj = obj.borrow();
            let (pcrs, nanos) = self.storable_pcrs(&obj.pdf);
            pcr_nanos += nanos;
            staged.push((
                pcrs,
                self.storable_mbr(&obj.pdf),
                encode_object(obj),
                obj.id,
            ));
        }
        if staged.is_empty() {
            return InsertStats {
                pcr_nanos,
                ..InsertStats::default()
            };
        }
        let leaf_cap = self.tree.codec().leaf_capacity();
        str_order_by(&mut staged, leaf_cap, &|t: &(
            PcrSet<D>,
            Rect<D>,
            Vec<u8>,
            u64,
        )| t.1.center().coords);
        let reads0 = self.tree.io_stats().reads();
        let writes0 = self.tree.io_stats().writes();
        let records: Vec<UPcrLeafEntry<D>> = staged
            .into_iter()
            .map(|(pcrs, mbr, bytes, id)| {
                let addr = self
                    .heap
                    .insert(&bytes)
                    // xlint: allow(panic-freedom) -- invariant: heap store failed during bulk load
                    .expect("heap store failed during bulk load");
                UPcrLeafEntry {
                    pcrs,
                    mbr,
                    addr,
                    id,
                }
            })
            .collect();
        self.tree
            .bulk_rebuild_ordered(records)
            // xlint: allow(panic-freedom) -- invariant: index store failed during bulk load
            .expect("index store failed during bulk load");
        InsertStats {
            pcr_nanos,
            lp_nanos: 0, // U-PCR skips the CFB fitting entirely
            io_reads: self.tree.io_stats().reads() - reads0,
            io_writes: self.tree.io_stats().writes() - writes0,
        }
    }

    /// Executes a prob-range query, returning matches with provenance.
    ///
    /// Convenience over [`UPcrTree::execute_with`] with a throwaway
    /// context. Panics on storage failure; see
    /// [`UPcrTree::try_execute_with`].
    pub fn execute(&self, query: &Query<D>) -> QueryOutcome {
        self.execute_with(query, &mut QueryCtx::new())
    }

    /// [`UPcrTree::try_execute_with`], panicking on storage failure.
    pub fn execute_with(&self, query: &Query<D>, ctx: &mut QueryCtx) -> QueryOutcome {
        self.try_execute_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a prob-range query with caller-owned scratch state (see
    /// [`crate::UTree::execute_with`] — the concurrency contract is
    /// identical: the tree is only read, `ctx` holds all per-query
    /// mutation).
    ///
    /// Intermediate pruning tests `r_q` against the stored rectangle at the
    /// largest catalog value `p_j <= p_q` (the exact-PCR analogue of
    /// Observation 4); leaf entries use Observation 2 directly. The
    /// [`QueryOptions`](crate::tree::QueryOptions) ablation switches are
    /// U-tree-specific and ignored here. A storage failure mid-traversal
    /// surfaces as [`QueryError::Io`].
    pub fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        ctx.begin();
        let rq = query.region();
        let pq = query.threshold();
        let mode = query.refine_mode();
        let j = self
            .catalog
            .largest_leq(pq + crate::filter::PROB_EPS)
            .unwrap_or(0);
        // One catalog-lookup plan for the whole traversal; per-entry
        // filtering is pure rectangle arithmetic.
        let plan = crate::filter::PreparedQuery::new(&self.catalog, rq, pq);

        let t0 = Instant::now();
        let nodes_read = {
            let QueryCtx {
                stats,
                validated,
                candidates,
                stack,
                ..
            } = &mut *ctx;
            self.tree.visit_with(
                stack,
                |key, _| rq.intersects(&key.rects[j]),
                |rec| {
                    stats.visited += 1;
                    match crate::filter::filter_object_planned(&rec.pcrs, &rec.mbr, &plan) {
                        FilterOutcome::Pruned => stats.pruned += 1,
                        FilterOutcome::Validated => {
                            stats.validated += 1;
                            validated.push(rec.id);
                        }
                        FilterOutcome::Candidate => candidates.push((rec.addr, rec.id)),
                    }
                },
            )?
        };
        ctx.stats.filter_nanos = t0.elapsed().as_nanos();
        ctx.stats.node_reads = nodes_read;
        ctx.stats.candidates = ctx.candidates.len() as u64;
        ctx.stats.results = ctx.validated.len() as u64;

        let t1 = Instant::now();
        refine_ctx(&self.heap, rq, pq, mode, ctx)?;
        ctx.stats.refine_nanos = t1.elapsed().as_nanos();
        Ok(outcome_from_ctx(ctx))
    }

    /// Executes a probabilistic top-k ranking query with caller-owned
    /// scratch state (see [`ProbIndex::rank_topk`]): the exact-PCR
    /// analogue of [`crate::UTree::rank_topk_with`] — intermediate
    /// entries bound by the smallest catalog value whose stored rectangle
    /// misses `r_q`, leaf entries by [`crate::filter::prob_bounds`] over
    /// the verbatim PCRs.
    pub fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        let rq = *query.region();
        let m = self.catalog.len();
        let plan = crate::filter::PreparedQuery::ranking(&self.catalog, &rq);
        Ok(crate::rank::rank_best_first(
            &self.tree,
            &self.heap,
            query,
            ctx,
            |key: &PcrKey<D>| {
                let mut bound = 1.0f64;
                for j in 0..m {
                    if !rq.intersects(&key.rects[j]) {
                        bound = bound.min(self.catalog.value(j));
                    }
                }
                bound
            },
            |rec: &UPcrLeafEntry<D>| crate::filter::prob_bounds_planned(&rec.pcrs, &rec.mbr, &plan),
        )?)
    }

    /// [`UPcrTree::try_rank_topk_with`], panicking on storage failure.
    pub fn rank_topk_with(&self, query: &RankQuery<D>, ctx: &mut QueryCtx) -> RankOutcome {
        self.try_rank_topk_with(query, ctx)
            // xlint: allow(panic-freedom) -- documented infallible convenience wrapper; the try_ variant carries the fallible contract
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`UPcrTree::rank_topk_with`] with a throwaway context.
    pub fn rank_topk(&self, query: &RankQuery<D>) -> RankOutcome {
        self.rank_topk_with(query, &mut QueryCtx::new())
    }

    /// Visits every leaf entry.
    pub fn for_each_entry<F: FnMut(&UPcrLeafEntry<D>)>(&self, mut f: F) {
        self.tree
            .for_each_record(|r| f(r))
            // xlint: allow(panic-freedom) -- invariant: index store failed during scan
            .expect("index store failed during scan");
    }

    /// Total index-file page accesses (reads + writes) since the last
    /// [`Self::reset_io`].
    pub fn io_counters(&self) -> u64 {
        self.tree.io_stats().total()
    }

    /// Resets the I/O counters (harness use).
    pub fn reset_io(&self) {
        self.tree.io_stats().reset();
        self.heap.file().stats().reset();
    }

    /// Direct read access to the node store (buffer-pool statistics,
    /// backend counters).
    pub fn node_store(&self) -> &S {
        self.tree.store()
    }

    /// Direct read access to the heap.
    pub fn heap(&self) -> &ObjectHeap<S> {
        &self.heap
    }
}

impl<const D: usize, S: PageStore> ProbIndex<D> for UPcrTree<D, S> {
    fn insert(&mut self, obj: &UncertainObject<D>) -> InsertStats {
        UPcrTree::insert(self, obj)
    }

    fn delete(&mut self, obj: &UncertainObject<D>) -> bool {
        UPcrTree::delete(self, obj)
    }

    fn len(&self) -> usize {
        UPcrTree::len(self)
    }

    fn index_size_bytes(&self) -> u64 {
        UPcrTree::index_size_bytes(self)
    }

    fn heap_size_bytes(&self) -> u64 {
        UPcrTree::heap_size_bytes(self)
    }

    fn io_counters(&self) -> u64 {
        UPcrTree::io_counters(self)
    }

    fn reset_io(&self) {
        UPcrTree::reset_io(self)
    }

    fn try_execute_with(
        &self,
        query: &Query<D>,
        ctx: &mut QueryCtx,
    ) -> Result<QueryOutcome, QueryError> {
        UPcrTree::try_execute_with(self, query, ctx)
    }

    fn try_rank_topk_with(
        &self,
        query: &RankQuery<D>,
        ctx: &mut QueryCtx,
    ) -> Result<RankOutcome, QueryError> {
        UPcrTree::try_rank_topk_with(self, query, ctx)
    }

    fn bulk_load<It>(&mut self, objs: It) -> InsertStats
    where
        It: IntoIterator,
        It::Item: Borrow<UncertainObject<D>>,
    {
        UPcrTree::bulk_load(self, objs)
    }
}

// Keep the trait wiring visible here too.
const _: () = {
    fn _assert_leaf_record() {
        fn takes<L: LeafRecord<PcrKey<2>>>() {}
        let _ = takes::<UPcrLeafEntry<2>>;
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ProbRangeQuery, QueryStats, RefineMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uncertain_geom::Point;

    fn run<const D: usize, I: ProbIndex<D>>(
        index: &I,
        q: ProbRangeQuery<D>,
        mode: RefineMode,
    ) -> (Vec<u64>, QueryStats) {
        let out = index.execute(&Query::from_prob_range(q, mode));
        (out.ids(), out.stats)
    }

    fn build_random(n: usize, seed: u64) -> (UPcrTree<2>, Vec<UncertainObject<2>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tree = UPcrTree::new(UCatalog::uniform(9));
        let mut objs = Vec::new();
        for id in 0..n as u64 {
            let o = UncertainObject::new(
                id,
                ObjectPdf::UniformBall {
                    center: Point::new([
                        rng.gen_range(300.0..9700.0),
                        rng.gen_range(300.0..9700.0),
                    ]),
                    radius: rng.gen_range(50.0..250.0),
                },
            );
            tree.insert(&o);
            objs.push(o);
        }
        (tree, objs)
    }

    #[test]
    fn query_matches_brute_force() {
        let (tree, objs) = build_random(350, 13);
        tree.check_invariants().unwrap();
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..20 {
            let rq = Rect::cube(
                &Point::new([rng.gen_range(500.0..9500.0), rng.gen_range(500.0..9500.0)]),
                rng.gen_range(300.0..1500.0),
            );
            let pq = rng.gen_range(0.05..0.95);
            let (mut got, _) = run(
                &tree,
                ProbRangeQuery::new(rq, pq),
                RefineMode::reference(1e-9),
            );
            got.sort_unstable();
            let mut expect = Vec::new();
            let mut boundary = Vec::new();
            for o in &objs {
                let p = uncertain_pdf::appearance_reference(&o.pdf, &rq, 1e-9);
                if (p - pq).abs() < 1e-4 {
                    boundary.push(o.id);
                } else if p >= pq {
                    expect.push(o.id);
                }
            }
            let got_clean: Vec<u64> = got
                .into_iter()
                .filter(|id| !boundary.contains(id))
                .collect();
            assert_eq!(got_clean, expect, "rq={rq:?} pq={pq}");
        }
    }

    #[test]
    fn upcr_agrees_with_utree() {
        // Same data, same queries, identical result sets: the two
        // structures differ in cost, never in answers.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut upcr = UPcrTree::new(UCatalog::uniform(9));
        let mut utree = crate::UTree::new(UCatalog::uniform(15));
        for id in 0..250u64 {
            let o = UncertainObject::new(
                id,
                ObjectPdf::ConGauBall {
                    center: Point::new([
                        rng.gen_range(500.0..9500.0),
                        rng.gen_range(500.0..9500.0),
                    ]),
                    radius: 250.0,
                    sigma: 125.0,
                },
            );
            upcr.insert(&o);
            utree.insert(&o);
        }
        for _ in 0..15 {
            let rq = Rect::cube(
                &Point::new([rng.gen_range(1000.0..9000.0), rng.gen_range(1000.0..9000.0)]),
                rng.gen_range(400.0..2000.0),
            );
            let pq = rng.gen_range(0.1..0.9);
            let q = ProbRangeQuery::new(rq, pq);
            let (mut a, _) = run(&upcr, q, RefineMode::Reference { tol: 1e-9 });
            let (mut b, _) = run(&utree, q, RefineMode::Reference { tol: 1e-9 });
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "structures disagree at rq={rq:?} pq={pq}");
        }
    }

    #[test]
    fn delete_works() {
        let (mut tree, objs) = build_random(200, 17);
        for o in objs.iter().step_by(2) {
            assert!(tree.delete(o));
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 100);
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]), 0.01);
        let (ids, _) = run(&tree, q, RefineMode::Reference { tol: 1e-8 });
        assert_eq!(ids.len(), 100);
        assert!(ids.iter().all(|id| id % 2 == 1));
    }

    #[test]
    fn fatter_entries_mean_fewer_per_page_than_utree() {
        let upcr = UPcrTree::<2>::new(UCatalog::uniform(9));
        let utree = crate::UTree::<2>::new(UCatalog::uniform(15));
        let _ = (upcr, utree);
        let pcodec = crate::entry::UPcrCodec::<2>::new(Arc::new(UCatalog::uniform(9)));
        use rstar_base::NodeCodec;
        let ucodec = crate::entry::UCodec::<2>::new(Arc::new(UCatalog::uniform(15)));
        assert!(
            NodeCodec::leaf_capacity(&ucodec) > NodeCodec::leaf_capacity(&pcodec),
            "U-tree fanout must exceed U-PCR's (the Sec 4.3 rationale)"
        );
    }
}
