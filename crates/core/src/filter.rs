//! The pruning/validation rules (Observations 1–3 of the paper).
//!
//! Given a prob-range query `(r_q, p_q)` and an object's pre-computed
//! PCR information, these rules decide — in O(d·m) time and **without any
//! appearance-probability integration** — whether the object certainly
//! fails the query (`Pruned`), certainly satisfies it (`Validated`), or
//! must go to the refinement step (`Candidate`).
//!
//! The same decision procedure serves both structures through the
//! [`PcrAccess`] abstraction:
//! * exact PCRs (`PcrSet`) give Observation 2 (used by U-PCR);
//! * conservative functional boxes (`CfbPair`) give Observation 3 —
//!   `outer(j) = cfb_out(p_j) ⊇ pcr(p_j) ⊇ cfb_in(p_j) = inner(j)`.

use crate::catalog::UCatalog;
use uncertain_geom::Rect;

/// Slack for catalog-value selection.
///
/// Thresholds like `p_q = 0.8` make `1 − p_q` fall a few ulps *below* the
/// stored catalog value `0.2`, which would silently demote rule 4/5 to a
/// weaker catalog value. The slack restores the mathematically intended
/// selection; it widens the decision boundary by at most 1e-9 in
/// probability, far below both the PCR quantile accuracy and the
/// Monte-Carlo refinement noise.
pub const PROB_EPS: f64 = 1e-9;

/// Result of the filter step for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// The object certainly does not qualify.
    Pruned,
    /// The object certainly qualifies.
    Validated,
    /// Undecided: the appearance probability must be computed.
    Candidate,
}

/// Conservative access to an object's PCR at catalog index `j`.
///
/// Contract: `outer(j) ⊇ pcr(p_j) ⊇ inner(j)` for every `j`.
pub trait PcrAccess<const D: usize> {
    /// A rectangle containing `pcr(p_j)`.
    fn outer(&self, j: usize) -> Rect<D>;
    /// A rectangle contained in `pcr(p_j)`.
    fn inner(&self, j: usize) -> Rect<D>;
}

/// Per-query precomputation for the filter rules and probability bounds.
///
/// Which catalog index each rule consults depends only on `(catalog, p_q)`
/// — never on the entry under test — yet the original per-entry
/// [`filter_object`] re-ran up to four catalog binary searches for every
/// leaf entry of a traversal. A `PreparedQuery` performs that selection
/// (and the rule-1-vs-rule-2 branch decision, with its `PROB_EPS` gate)
/// once; backends build it before the traversal and the per-entry check
/// drops to pure rectangle arithmetic.
///
/// The decision procedure is **identical** to [`filter_object`] — the
/// wrapper delegates through here, so the rule-by-rule unit tests hold for
/// both surfaces.
#[derive(Debug, Clone, Copy)]
pub struct PreparedQuery<'c, const D: usize> {
    /// The search region `r_q`.
    pub rq: Rect<D>,
    /// The probability threshold `p_q` (0 for bounds-only ranking use).
    pub pq: f64,
    /// The catalog values, for the `prob_bounds` sweep.
    values: &'c [f64],
    /// Rule-1 catalog index — `Some` exactly when the high-threshold
    /// branch (`p_q > 1 − p_m − ε`) is taken, in which case rule 2 is not.
    rule1: Option<usize>,
    /// Rule-2 catalog index (low-threshold branch only).
    rule2: Option<usize>,
    /// `p_q > 0.5`: selects rule 4 over rule 5 for `rule45`.
    high: bool,
    /// Rule-4 or rule-5 catalog index, per `high`.
    rule45: Option<usize>,
    /// Rule-3 catalog index.
    rule3: Option<usize>,
}

impl<'c, const D: usize> PreparedQuery<'c, D> {
    /// Prepares a threshold query `(r_q, p_q)` against `catalog`.
    pub fn new(catalog: &'c UCatalog, rq: &Rect<D>, pq: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&pq));
        let pm = catalog.last();
        // The rule-1/rule-2 branch gate carries the same PROB_EPS slack as
        // every catalog lookup: for p_q mathematically equal to 1 − p_m,
        // the float subtraction can land a few ulps to either side, and
        // the ulp-below case would otherwise silently demote the query to
        // rule 2 — much weaker at high thresholds (disjointness from the
        // smallest PCR instead of containment of it).
        let (rule1, rule2) = if pq > 1.0 - pm - PROB_EPS {
            let j = catalog
                .smallest_geq(1.0 - pq - PROB_EPS)
                // xlint: allow(panic-freedom) -- invariant: pq > 1 - pm - eps implies 1 - pq - eps <= pm = catalog.last()
                .expect("pq > 1 - pm - eps implies 1 - pq - eps <= pm = catalog.last()");
            (Some(j), None)
        } else {
            (None, catalog.largest_leq(pq + PROB_EPS))
        };
        let high = pq > 0.5;
        let rule45 = if high {
            catalog.largest_leq(1.0 - pq + PROB_EPS)
        } else {
            catalog.smallest_geq(pq - PROB_EPS)
        };
        let rule3 = catalog.largest_leq((1.0 - pq) / 2.0 + PROB_EPS);
        Self {
            rq: *rq,
            pq,
            values: catalog.values(),
            rule1,
            rule2,
            high,
            rule45,
            rule3,
        }
    }

    /// Prepares a bounds-only query (ranking traversals call
    /// [`prob_bounds_planned`], which never consults the threshold rules).
    pub fn ranking(catalog: &'c UCatalog, rq: &Rect<D>) -> Self {
        Self::new(catalog, rq, 0.0)
    }
}

/// Applies the paper's rules in the prescribed order
/// (Sec 4.1: rules 1→4→3 for `p_q > 0.5`, rules 2→5→3 otherwise, with the
/// catalog-aware value selection of Observation 2).
///
/// Convenience wrapper building a [`PreparedQuery`] per call; traversals
/// that test many entries against one query should build the plan once and
/// call [`filter_object_planned`].
pub fn filter_object<const D: usize, A: PcrAccess<D>>(
    acc: &A,
    mbr: &Rect<D>,
    catalog: &UCatalog,
    rq: &Rect<D>,
    pq: f64,
) -> FilterOutcome {
    filter_object_planned(acc, mbr, &PreparedQuery::new(catalog, rq, pq))
}

/// [`filter_object`] with the per-query catalog selection already done.
pub fn filter_object_planned<const D: usize, A: PcrAccess<D>>(
    acc: &A,
    mbr: &Rect<D>,
    plan: &PreparedQuery<'_, D>,
) -> FilterOutcome {
    let rq = &plan.rq;

    // ---- pruning --------------------------------------------------------
    if let Some(j) = plan.rule1 {
        // Rule 1: p_j = smallest catalog value >= 1 - p_q. Object fails if
        // r_q does not fully contain (the inner approximation of) pcr(p_j):
        // some face of pcr(p_j) sticks out, so at least p_j >= 1 - p_q mass
        // escapes r_q and P_app < p_q.
        if !rq.contains_rect(&acc.inner(j)) {
            return FilterOutcome::Pruned;
        }
    } else if let Some(j) = plan.rule2 {
        // Rule 2: p_j = largest catalog value <= p_q. Disjointness from
        // (the outer approximation of) pcr(p_j) puts r_q strictly beyond
        // one face, where at most p_j <= p_q mass lives.
        if !rq.intersects(&acc.outer(j)) {
            return FilterOutcome::Pruned;
        }
    }

    // ---- validation -----------------------------------------------------
    if plan.high {
        // Rule 4: p_j = largest catalog value <= 1 - p_q. If r_q covers the
        // part of o.MBR on one side of an outer pcr face, it captures at
        // least 1 - p_j >= p_q mass.
        if let Some(j) = plan.rule45 {
            let outer = acc.outer(j);
            for i in 0..D {
                if covers_slab(rq, mbr, i, outer.min[i], mbr.max[i])
                    || covers_slab(rq, mbr, i, mbr.min[i], outer.max[i])
                {
                    return FilterOutcome::Validated;
                }
            }
        }
    } else if let Some(j) = plan.rule45 {
        // Rule 5: p_j = smallest catalog value >= p_q. Covering the part of
        // o.MBR *outside* an inner pcr face captures at least p_j >= p_q.
        let inner = acc.inner(j);
        for i in 0..D {
            if covers_slab(rq, mbr, i, mbr.min[i], inner.min[i])
                || covers_slab(rq, mbr, i, inner.max[i], mbr.max[i])
            {
                return FilterOutcome::Validated;
            }
        }
    }

    // Rule 3: p_j = largest catalog value <= (1 - p_q)/2. Covering the slab
    // of o.MBR between both outer faces captures >= 1 - 2·p_j >= p_q.
    if let Some(j) = plan.rule3 {
        let outer = acc.outer(j);
        for i in 0..D {
            if covers_slab(rq, mbr, i, outer.min[i], outer.max[i]) {
                return FilterOutcome::Validated;
            }
        }
    }

    FilterOutcome::Candidate
}

/// Does `rq` cover the part of `mbr` whose `dim`-projection lies in
/// `[lo, hi]`? (The paper's O(d) check below Observation 1: full
/// containment on every other dimension plus interval coverage on `dim`.)
fn covers_slab<const D: usize>(rq: &Rect<D>, mbr: &Rect<D>, dim: usize, lo: f64, hi: f64) -> bool {
    for k in 0..D {
        if k != dim && (rq.min[k] > mbr.min[k] || rq.max[k] < mbr.max[k]) {
            return false;
        }
    }
    let lo = lo.max(mbr.min[dim]);
    let hi = hi.min(mbr.max[dim]);
    rq.min[dim] <= lo && rq.max[dim] >= hi
}

/// Conservative bounds `(lo, hi)` on an object's appearance probability
/// `P(o ∈ r_q)`, derived from the same PCR information the filter rules
/// consume — no integration.
///
/// Contract: `lo <= P <= hi`, up to the `PROB_EPS` boundary widening every
/// catalog-driven rule accepts. The bounds are the graded form of the
/// prune/validate rules and power probabilistic *ranking*: a top-k
/// traversal only refines an object while `hi` still beats the current
/// k-th lower bound.
///
/// How each side is obtained (faces of `pcr(p_j)` carry exactly `p_j`
/// mass on their outside):
///
/// * **upper** — mass provably *escaping* `r_q`: per dimension, the lower
///   and upper tails cut off by inner-approximation faces outside `r_q`
///   are disjoint, so their `p_j`s add (`hi = 1 − p_lo − p_hi`); and when
///   `r_q` lies entirely beyond an outer face, the mass inside `r_q` is at
///   most that face's `p_j` (rule-2 logic). Disjoint from the MBR ⇒ 0.
/// * **lower** — mass provably *captured*: in a dimension whose
///   complement `r_q` fully covers (the paper's O(d) slab precondition),
///   either both cut-off tails are bounded by outer faces inside `r_q`
///   (`lo = 1 − p_j − p_j'`, generalising rules 3/4), or `r_q` covers one
///   side of the MBR up to an inner face (`lo = p_j`, rule-5 logic).
///
/// `lo == hi == 1` exactly when `r_q ⊇ mbr` — the only case a ranking
/// backend may report without refinement, because it is decided by the
/// (backend-identical) MBR alone rather than by the tightness of the PCR
/// approximation at hand.
pub fn prob_bounds<const D: usize, A: PcrAccess<D>>(
    acc: &A,
    mbr: &Rect<D>,
    catalog: &UCatalog,
    rq: &Rect<D>,
) -> (f64, f64) {
    prob_bounds_planned(acc, mbr, &PreparedQuery::ranking(catalog, rq))
}

/// [`prob_bounds`] against a pre-built [`PreparedQuery`] — the form
/// ranking traversals use, amortising the per-query setup over every
/// entry whose bounds the frontier requests.
pub fn prob_bounds_planned<const D: usize, A: PcrAccess<D>>(
    acc: &A,
    mbr: &Rect<D>,
    plan: &PreparedQuery<'_, D>,
) -> (f64, f64) {
    let rq = &plan.rq;
    if !rq.intersects(mbr) {
        return (0.0, 0.0);
    }
    let m = plan.values.len();

    // ---- upper bound ----------------------------------------------------
    let mut hi = 1.0f64;
    for i in 0..D {
        // Tails guaranteed to escape r_q in dimension i: pcr_lo(p_j) <=
        // inner(j).min < rq.min puts p_j mass strictly below r_q (and
        // symmetrically above). The two tails of one dimension are
        // disjoint, so their masses add.
        let mut escape_lo = 0.0f64;
        let mut escape_hi = 0.0f64;
        // Mass *inside* r_q when it sits entirely beyond an outer face:
        // everything in r_q lies outside pcr(p_j), where at most p_j mass
        // lives (rule-2 logic, per face).
        let mut beyond = 1.0f64;
        for j in 0..m {
            let pj = plan.values[j];
            let inner = acc.inner(j);
            if inner.min[i] < rq.min[i] {
                escape_lo = escape_lo.max(pj);
            }
            if inner.max[i] > rq.max[i] {
                escape_hi = escape_hi.max(pj);
            }
            let outer = acc.outer(j);
            if rq.max[i] < outer.min[i] || rq.min[i] > outer.max[i] {
                beyond = beyond.min(pj);
            }
        }
        hi = hi.min(1.0 - escape_lo - escape_hi).min(beyond);
    }
    hi = hi.clamp(0.0, 1.0);

    // ---- lower bound ----------------------------------------------------
    let mut lo = 0.0f64;
    for i in 0..D {
        // The slab precondition: every other dimension fully covered.
        let others_covered = (0..D)
            .filter(|&k| k != i)
            .all(|k| rq.min[k] <= mbr.min[k] && rq.max[k] >= mbr.max[k]);
        if !others_covered {
            continue;
        }
        let covers_lo = rq.min[i] <= mbr.min[i];
        let covers_hi = rq.max[i] >= mbr.max[i];
        // Two-sided: mass cut off below r_q is at most p_j once
        // rq.min <= outer(j).min <= pcr_lo(p_j) (and symmetrically above).
        let mut cut_lo = if covers_lo { Some(0.0f64) } else { None };
        let mut cut_hi = if covers_hi { Some(0.0f64) } else { None };
        // One-sided strips (rule-5 logic): covering the MBR side up to an
        // inner face captures at least that face's p_j.
        let mut strip = 0.0f64;
        for j in 0..m {
            let pj = plan.values[j];
            let outer = acc.outer(j);
            if outer.min[i] >= rq.min[i] {
                cut_lo = Some(cut_lo.map_or(pj, |c: f64| c.min(pj)));
            }
            if outer.max[i] <= rq.max[i] {
                cut_hi = Some(cut_hi.map_or(pj, |c: f64| c.min(pj)));
            }
            let inner = acc.inner(j);
            if covers_lo && inner.min[i] <= rq.max[i] {
                strip = strip.max(pj);
            }
            if covers_hi && inner.max[i] >= rq.min[i] {
                strip = strip.max(pj);
            }
        }
        if let (Some(cl), Some(ch)) = (cut_lo, cut_hi) {
            lo = lo.max(1.0 - cl - ch);
        }
        lo = lo.max(strip);
    }
    lo = lo.clamp(0.0, 1.0).min(hi);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcr::PcrSet;
    use uncertain_pdf::ObjectPdf;

    /// Uniform square object on [0,10]²: PCR faces are analytic
    /// (quantile p at coordinate 10·p), so every rule is hand-checkable.
    fn square() -> (ObjectPdf<2>, PcrSet<2>, UCatalog, Rect<2>) {
        let pdf = ObjectPdf::UniformBox {
            rect: Rect::new([0.0, 0.0], [10.0, 10.0]),
        };
        let cat = UCatalog::new(vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        let pcrs = PcrSet::compute(&pdf, &cat);
        let mbr = pdf.mbr();
        (pdf, pcrs, cat, mbr)
    }

    #[test]
    fn rule1_prunes_high_threshold() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.8 > 1 - 0.5: rule 1 with pj = smallest >= 0.2 → 0.2.
        // pcr(0.2) = [2,8]². A query that misses part of it prunes.
        let rq = Rect::new([2.5, 0.0], [10.0, 10.0]); // cuts off left strip of pcr(0.2)
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.8),
            FilterOutcome::Pruned
        );
        // Containing pcr(0.2) fully but not the MBR: candidate (0.8 can't
        // validate because rq misses 0.2 mass on the left... check rules).
        let rq2 = Rect::new([1.0, -1.0], [11.0, 11.0]);
        // rq2 covers the part of MBR right of pcr_1-(0.2)=2 ⇒ P >= 0.8:
        // rule 4 validates.
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.8),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn rule2_prunes_low_threshold_disjoint_pcr() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.3 <= 0.5: rule 2 with pj = 0.3, pcr(0.3) = [3,7]².
        // rq strictly right of it ⇒ at most 0.3 mass ⇒ pruned.
        let rq = Rect::new([7.5, 0.0], [12.0, 10.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.3),
            FilterOutcome::Pruned
        );
        // rq reaching into pcr(0.3): not prunable by rule 2 — and since it
        // covers the whole right side beyond pcr faces, validation rules
        // get their chance (rule 5: covers part of MBR right of
        // pcr_1+(0.3)=7 needs rq ⊇ [7,10]×[0,10]: yes!).
        let rq2 = Rect::new([6.5, -0.5], [12.0, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.3),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn rule3_validates_middle_slab() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.6: (1-pq)/2 = 0.2 ⇒ pj = 0.2, slab [2,8] on x (full y).
        let rq = Rect::new([1.9, -1.0], [8.1, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.6),
            FilterOutcome::Validated
        );
        // Same query but y not fully covered: no validation possible; the
        // true probability is 0.6·1.0 boundary-ish ⇒ candidate.
        let rq2 = Rect::new([1.9, 0.5], [8.1, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.6),
            FilterOutcome::Candidate
        );
    }

    #[test]
    fn rule5_validates_side_strip() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.1: pj = smallest >= 0.1 = 0.1; pcr(0.1) faces at 1 and 9.
        // Covering MBR left of pcr_1-(0.1)=1 guarantees P >= 0.1.
        let rq = Rect::new([-2.0, -2.0], [1.0, 12.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.1),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn thin_interior_query_is_candidate() {
        let (_, pcrs, cat, mbr) = square();
        // A strip through the middle: P = 0.2; pq = 0.15 can neither be
        // pruned (intersects pcr(0.1)) nor validated (no slab coverage in
        // y, no side strip).
        let rq = Rect::new([4.0, 4.0], [6.0, 6.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.15),
            FilterOutcome::Candidate
        );
    }

    #[test]
    fn fully_containing_query_validates_for_pq_one() {
        let (_, pcrs, cat, mbr) = square();
        let rq = Rect::new([-1.0, -1.0], [11.0, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 1.0),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn disjoint_query_pruned_at_any_threshold() {
        let (_, pcrs, cat, mbr) = square();
        let rq = Rect::new([20.0, 20.0], [30.0, 30.0]);
        for pq in [0.05, 0.3, 0.5, 0.7, 0.95] {
            assert_eq!(
                filter_object(&pcrs, &mbr, &cat, &rq, pq),
                FilterOutcome::Pruned,
                "pq={pq}"
            );
        }
    }

    #[test]
    fn gate_carries_prob_eps_slack_at_one_minus_pm() {
        // Catalog with p_m = 0.4: the rule-1/rule-2 gate sits at
        // p_q = 1 − p_m = 0.6. A query that intersects pcr(0.4) without
        // containing it is prunable by rule 1 only — rule 2 (disjointness)
        // cannot fire. Before the gate carried the PROB_EPS slack,
        // p_q at or one ulp below the float value of `1.0 - 0.4` silently
        // fell into the weaker rule-2 branch and leaked a candidate.
        let pdf = ObjectPdf::UniformBox {
            rect: Rect::new([0.0, 0.0], [10.0, 10.0]),
        };
        let cat = UCatalog::new(vec![0.0, 0.2, 0.4]);
        let pcrs = PcrSet::compute(&pdf, &cat);
        let mbr = pdf.mbr();
        // pcr(0.4) = [4,6]²; rq cuts into it from the right but leaves its
        // left strip uncovered ⇒ at least 0.4 mass escapes ⇒ P <= 0.6 - ε'
        // (true P = 0.55 here).
        let rq = Rect::new([4.5, -1.0], [12.0, 11.0]);
        let gate = 1.0 - cat.last();
        for pq in [
            f64::from_bits(gate.to_bits() - 1), // one ulp below
            gate,
            f64::from_bits(gate.to_bits() + 1), // one ulp above
        ] {
            assert_eq!(
                filter_object(&pcrs, &mbr, &cat, &rq, pq),
                FilterOutcome::Pruned,
                "pq = {pq:.17} around 1 - p_m must take rule 1 and prune"
            );
        }
        // Well below the gate the query is a legitimate candidate for the
        // rule-2 branch (P = 0.55 >= pq is plausible): the slack must not
        // drag far-away thresholds into rule 1.
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.5),
            FilterOutcome::Candidate
        );
    }

    #[test]
    fn prob_bounds_analytic_square() {
        let (_, pcrs, cat, mbr) = square();
        // Fully containing: pinned to 1 on both sides.
        let all = Rect::new([-1.0, -1.0], [11.0, 11.0]);
        assert_eq!(prob_bounds(&pcrs, &mbr, &cat, &all), (1.0, 1.0));
        // Disjoint: pinned to 0.
        let none = Rect::new([20.0, 20.0], [30.0, 30.0]);
        assert_eq!(prob_bounds(&pcrs, &mbr, &cat, &none), (0.0, 0.0));
        // Left half (true P = 0.5): catalog resolution brackets it.
        let half = Rect::new([-1.0, -1.0], [5.0, 11.0]);
        let (lo, hi) = prob_bounds(&pcrs, &mbr, &cat, &half);
        assert!(lo <= 0.5 + 1e-9 && 0.5 <= hi + 1e-9, "({lo}, {hi})");
        assert!((lo - 0.5).abs() < 1e-6, "exact PCR face at 5 ⇒ tight lower");
        // Interior slab [4,6] × full (true P = 0.2): the two-sided cut
        // bound is exact at catalog faces.
        let slab = Rect::new([4.0, -1.0], [6.0, 11.0]);
        let (lo, hi) = prob_bounds(&pcrs, &mbr, &cat, &slab);
        assert!((lo - 0.2).abs() < 1e-6, "lo = {lo}");
        assert!(lo <= 0.2 + 1e-9 && 0.2 <= hi + 1e-9);
        // Small corner box (true P = 0.01): the beyond-a-face rule caps
        // the upper bound at a small catalog value.
        let corner = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let (lo, hi) = prob_bounds(&pcrs, &mbr, &cat, &corner);
        assert_eq!(lo, 0.0);
        assert!(hi <= 0.2 + 1e-9, "hi = {hi}");
    }

    #[test]
    fn prob_bounds_bracket_reference_probability() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use uncertain_geom::Point;

        let mut rng = SmallRng::seed_from_u64(2024);
        let cat = UCatalog::uniform(8);
        for case in 0..60 {
            let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
                center: Point::new([rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]),
                radius: rng.gen_range(5.0..40.0),
            };
            let pcrs = PcrSet::compute(&pdf, &cat);
            let mbr = pdf.mbr();
            let min = [rng.gen_range(-90.0..50.0), rng.gen_range(-90.0..50.0)];
            let rq = Rect::new(
                min,
                [
                    min[0] + rng.gen_range(5.0..120.0),
                    min[1] + rng.gen_range(5.0..120.0),
                ],
            );
            let (lo, hi) = prob_bounds(&pcrs, &mbr, &cat, &rq);
            assert!(lo <= hi + 1e-12, "case {case}: inverted bounds");
            let p = uncertain_pdf::appearance_reference(&pdf, &rq, 1e-9);
            assert!(
                lo - 1e-6 <= p && p <= hi + 1e-6,
                "case {case}: P = {p} outside [{lo}, {hi}] (rq = {rq:?})"
            );
            // The bounds must cohere with the threshold filter: a pruned
            // object can never have lo >= pq, a validated one never hi < pq.
            for pq in [0.15, 0.5, 0.85] {
                match filter_object(&pcrs, &mbr, &cat, &rq, pq) {
                    FilterOutcome::Pruned => {
                        assert!(lo < pq + 1e-9, "case {case}: pruned but lo = {lo} >= {pq}")
                    }
                    FilterOutcome::Validated => {
                        assert!(
                            hi >= pq - 1e-9,
                            "case {case}: validated but hi = {hi} < {pq}"
                        )
                    }
                    FilterOutcome::Candidate => {}
                }
            }
        }
    }

    #[test]
    fn prob_bounds_through_cfb_view_stay_sound() {
        use crate::cfb::{fit_cfb_pair, CfbView};
        use uncertain_geom::Point;

        let cat = UCatalog::uniform(8);
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([50.0, 50.0]),
            radius: 20.0,
        };
        let pcrs = PcrSet::compute(&pdf, &cat);
        let pair = fit_cfb_pair(&pcrs, &cat);
        let view = CfbView {
            pair: &pair,
            catalog: &cat,
        };
        let mbr = pdf.mbr();
        for rq in [
            Rect::new([20.0, 20.0], [80.0, 80.0]),
            Rect::new([20.0, 20.0], [50.0, 80.0]),
            Rect::new([45.0, 20.0], [55.0, 80.0]),
            Rect::new([62.0, 40.0], [90.0, 60.0]),
        ] {
            let p = uncertain_pdf::appearance_reference(&pdf, &rq, 1e-9);
            let (lo_cfb, hi_cfb) = prob_bounds(&view, &mbr, &cat, &rq);
            let (lo_pcr, hi_pcr) = prob_bounds(&pcrs, &mbr, &cat, &rq);
            assert!(lo_cfb - 1e-6 <= p && p <= hi_cfb + 1e-6, "{rq:?}");
            // CFBs are the lossy compression of the PCRs: their bounds can
            // only be (weakly) looser.
            assert!(lo_cfb <= lo_pcr + 1e-9, "{rq:?}");
            assert!(hi_cfb >= hi_pcr - 1e-9, "{rq:?}");
        }
    }

    #[test]
    fn figure3_walkthrough() {
        // Reconstructs the paper's Figure 3 scenarios with a square object
        // (the paper's polygon replaced by an equivalent-marginal box).
        let (_, pcrs, cat, mbr) = square();
        // q1: pq=0.8, rq misses part of pcr(0.2) ⇒ pruned (Rule 1).
        let rq1 = Rect::new([3.0, 1.0], [12.0, 9.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq1, 0.8),
            FilterOutcome::Pruned
        );
        // q2: pq=0.2, rq beyond the right pcr(0.2) face ⇒ pruned (Rule 2).
        let rq2 = Rect::new([8.5, 2.0], [12.0, 8.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.2),
            FilterOutcome::Pruned
        );
        // q3: pq=0.6, rq covers the [2,8] x-slab ⇒ validated (Rule 3).
        let rq3 = Rect::new([1.5, -0.5], [8.5, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq3, 0.6),
            FilterOutcome::Validated
        );
        // q4: pq=0.8, rq covers MBR right of the left pcr(0.2) face
        // ⇒ validated (Rule 4).
        let rq4 = Rect::new([1.5, -0.5], [10.5, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq4, 0.8),
            FilterOutcome::Validated
        );
        // q5: pq=0.2, rq covers MBR left of the left pcr(0.2) face
        // ⇒ validated (Rule 5).
        let rq5 = Rect::new([-0.5, -0.5], [2.0, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq5, 0.2),
            FilterOutcome::Validated
        );
    }
}
