//! The pruning/validation rules (Observations 1–3 of the paper).
//!
//! Given a prob-range query `(r_q, p_q)` and an object's pre-computed
//! PCR information, these rules decide — in O(d·m) time and **without any
//! appearance-probability integration** — whether the object certainly
//! fails the query (`Pruned`), certainly satisfies it (`Validated`), or
//! must go to the refinement step (`Candidate`).
//!
//! The same decision procedure serves both structures through the
//! [`PcrAccess`] abstraction:
//! * exact PCRs (`PcrSet`) give Observation 2 (used by U-PCR);
//! * conservative functional boxes (`CfbPair`) give Observation 3 —
//!   `outer(j) = cfb_out(p_j) ⊇ pcr(p_j) ⊇ cfb_in(p_j) = inner(j)`.

use crate::catalog::UCatalog;
use uncertain_geom::Rect;

/// Slack for catalog-value selection.
///
/// Thresholds like `p_q = 0.8` make `1 − p_q` fall a few ulps *below* the
/// stored catalog value `0.2`, which would silently demote rule 4/5 to a
/// weaker catalog value. The slack restores the mathematically intended
/// selection; it widens the decision boundary by at most 1e-9 in
/// probability, far below both the PCR quantile accuracy and the
/// Monte-Carlo refinement noise.
pub const PROB_EPS: f64 = 1e-9;

/// Result of the filter step for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// The object certainly does not qualify.
    Pruned,
    /// The object certainly qualifies.
    Validated,
    /// Undecided: the appearance probability must be computed.
    Candidate,
}

/// Conservative access to an object's PCR at catalog index `j`.
///
/// Contract: `outer(j) ⊇ pcr(p_j) ⊇ inner(j)` for every `j`.
pub trait PcrAccess<const D: usize> {
    /// A rectangle containing `pcr(p_j)`.
    fn outer(&self, j: usize) -> Rect<D>;
    /// A rectangle contained in `pcr(p_j)`.
    fn inner(&self, j: usize) -> Rect<D>;
}

/// Applies the paper's rules in the prescribed order
/// (Sec 4.1: rules 1→4→3 for `p_q > 0.5`, rules 2→5→3 otherwise, with the
/// catalog-aware value selection of Observation 2).
pub fn filter_object<const D: usize, A: PcrAccess<D>>(
    acc: &A,
    mbr: &Rect<D>,
    catalog: &UCatalog,
    rq: &Rect<D>,
    pq: f64,
) -> FilterOutcome {
    debug_assert!((0.0..=1.0).contains(&pq));
    let pm = catalog.last();

    // ---- pruning --------------------------------------------------------
    if pq > 1.0 - pm {
        // Rule 1: p_j = smallest catalog value >= 1 - p_q. Object fails if
        // r_q does not fully contain (the inner approximation of) pcr(p_j):
        // some face of pcr(p_j) sticks out, so at least p_j >= 1 - p_q mass
        // escapes r_q and P_app < p_q.
        let j = catalog
            .smallest_geq(1.0 - pq - PROB_EPS)
            .expect("pq > 1 - pm implies 1 - pq < pm <= catalog.last()");
        if !rq.contains_rect(&acc.inner(j)) {
            return FilterOutcome::Pruned;
        }
    } else {
        // Rule 2: p_j = largest catalog value <= p_q. Disjointness from
        // (the outer approximation of) pcr(p_j) puts r_q strictly beyond
        // one face, where at most p_j <= p_q mass lives.
        if let Some(j) = catalog.largest_leq(pq + PROB_EPS) {
            if !rq.intersects(&acc.outer(j)) {
                return FilterOutcome::Pruned;
            }
        }
    }

    // ---- validation -----------------------------------------------------
    if pq > 0.5 {
        // Rule 4: p_j = largest catalog value <= 1 - p_q. If r_q covers the
        // part of o.MBR on one side of an outer pcr face, it captures at
        // least 1 - p_j >= p_q mass.
        if let Some(j) = catalog.largest_leq(1.0 - pq + PROB_EPS) {
            let outer = acc.outer(j);
            for i in 0..D {
                if covers_slab(rq, mbr, i, outer.min[i], mbr.max[i])
                    || covers_slab(rq, mbr, i, mbr.min[i], outer.max[i])
                {
                    return FilterOutcome::Validated;
                }
            }
        }
    } else {
        // Rule 5: p_j = smallest catalog value >= p_q. Covering the part of
        // o.MBR *outside* an inner pcr face captures at least p_j >= p_q.
        if let Some(j) = catalog.smallest_geq(pq - PROB_EPS) {
            let inner = acc.inner(j);
            for i in 0..D {
                if covers_slab(rq, mbr, i, mbr.min[i], inner.min[i])
                    || covers_slab(rq, mbr, i, inner.max[i], mbr.max[i])
                {
                    return FilterOutcome::Validated;
                }
            }
        }
    }

    // Rule 3: p_j = largest catalog value <= (1 - p_q)/2. Covering the slab
    // of o.MBR between both outer faces captures >= 1 - 2·p_j >= p_q.
    if let Some(j) = catalog.largest_leq((1.0 - pq) / 2.0 + PROB_EPS) {
        let outer = acc.outer(j);
        for i in 0..D {
            if covers_slab(rq, mbr, i, outer.min[i], outer.max[i]) {
                return FilterOutcome::Validated;
            }
        }
    }

    FilterOutcome::Candidate
}

/// Does `rq` cover the part of `mbr` whose `dim`-projection lies in
/// `[lo, hi]`? (The paper's O(d) check below Observation 1: full
/// containment on every other dimension plus interval coverage on `dim`.)
fn covers_slab<const D: usize>(rq: &Rect<D>, mbr: &Rect<D>, dim: usize, lo: f64, hi: f64) -> bool {
    for k in 0..D {
        if k != dim && (rq.min[k] > mbr.min[k] || rq.max[k] < mbr.max[k]) {
            return false;
        }
    }
    let lo = lo.max(mbr.min[dim]);
    let hi = hi.min(mbr.max[dim]);
    rq.min[dim] <= lo && rq.max[dim] >= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcr::PcrSet;
    use uncertain_pdf::ObjectPdf;

    /// Uniform square object on [0,10]²: PCR faces are analytic
    /// (quantile p at coordinate 10·p), so every rule is hand-checkable.
    fn square() -> (ObjectPdf<2>, PcrSet<2>, UCatalog, Rect<2>) {
        let pdf = ObjectPdf::UniformBox {
            rect: Rect::new([0.0, 0.0], [10.0, 10.0]),
        };
        let cat = UCatalog::new(vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        let pcrs = PcrSet::compute(&pdf, &cat);
        let mbr = pdf.mbr();
        (pdf, pcrs, cat, mbr)
    }

    #[test]
    fn rule1_prunes_high_threshold() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.8 > 1 - 0.5: rule 1 with pj = smallest >= 0.2 → 0.2.
        // pcr(0.2) = [2,8]². A query that misses part of it prunes.
        let rq = Rect::new([2.5, 0.0], [10.0, 10.0]); // cuts off left strip of pcr(0.2)
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.8),
            FilterOutcome::Pruned
        );
        // Containing pcr(0.2) fully but not the MBR: candidate (0.8 can't
        // validate because rq misses 0.2 mass on the left... check rules).
        let rq2 = Rect::new([1.0, -1.0], [11.0, 11.0]);
        // rq2 covers the part of MBR right of pcr_1-(0.2)=2 ⇒ P >= 0.8:
        // rule 4 validates.
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.8),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn rule2_prunes_low_threshold_disjoint_pcr() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.3 <= 0.5: rule 2 with pj = 0.3, pcr(0.3) = [3,7]².
        // rq strictly right of it ⇒ at most 0.3 mass ⇒ pruned.
        let rq = Rect::new([7.5, 0.0], [12.0, 10.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.3),
            FilterOutcome::Pruned
        );
        // rq reaching into pcr(0.3): not prunable by rule 2 — and since it
        // covers the whole right side beyond pcr faces, validation rules
        // get their chance (rule 5: covers part of MBR right of
        // pcr_1+(0.3)=7 needs rq ⊇ [7,10]×[0,10]: yes!).
        let rq2 = Rect::new([6.5, -0.5], [12.0, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.3),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn rule3_validates_middle_slab() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.6: (1-pq)/2 = 0.2 ⇒ pj = 0.2, slab [2,8] on x (full y).
        let rq = Rect::new([1.9, -1.0], [8.1, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.6),
            FilterOutcome::Validated
        );
        // Same query but y not fully covered: no validation possible; the
        // true probability is 0.6·1.0 boundary-ish ⇒ candidate.
        let rq2 = Rect::new([1.9, 0.5], [8.1, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.6),
            FilterOutcome::Candidate
        );
    }

    #[test]
    fn rule5_validates_side_strip() {
        let (_, pcrs, cat, mbr) = square();
        // pq = 0.1: pj = smallest >= 0.1 = 0.1; pcr(0.1) faces at 1 and 9.
        // Covering MBR left of pcr_1-(0.1)=1 guarantees P >= 0.1.
        let rq = Rect::new([-2.0, -2.0], [1.0, 12.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.1),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn thin_interior_query_is_candidate() {
        let (_, pcrs, cat, mbr) = square();
        // A strip through the middle: P = 0.2; pq = 0.15 can neither be
        // pruned (intersects pcr(0.1)) nor validated (no slab coverage in
        // y, no side strip).
        let rq = Rect::new([4.0, 4.0], [6.0, 6.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 0.15),
            FilterOutcome::Candidate
        );
    }

    #[test]
    fn fully_containing_query_validates_for_pq_one() {
        let (_, pcrs, cat, mbr) = square();
        let rq = Rect::new([-1.0, -1.0], [11.0, 11.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq, 1.0),
            FilterOutcome::Validated
        );
    }

    #[test]
    fn disjoint_query_pruned_at_any_threshold() {
        let (_, pcrs, cat, mbr) = square();
        let rq = Rect::new([20.0, 20.0], [30.0, 30.0]);
        for pq in [0.05, 0.3, 0.5, 0.7, 0.95] {
            assert_eq!(
                filter_object(&pcrs, &mbr, &cat, &rq, pq),
                FilterOutcome::Pruned,
                "pq={pq}"
            );
        }
    }

    #[test]
    fn figure3_walkthrough() {
        // Reconstructs the paper's Figure 3 scenarios with a square object
        // (the paper's polygon replaced by an equivalent-marginal box).
        let (_, pcrs, cat, mbr) = square();
        // q1: pq=0.8, rq misses part of pcr(0.2) ⇒ pruned (Rule 1).
        let rq1 = Rect::new([3.0, 1.0], [12.0, 9.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq1, 0.8),
            FilterOutcome::Pruned
        );
        // q2: pq=0.2, rq beyond the right pcr(0.2) face ⇒ pruned (Rule 2).
        let rq2 = Rect::new([8.5, 2.0], [12.0, 8.0]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq2, 0.2),
            FilterOutcome::Pruned
        );
        // q3: pq=0.6, rq covers the [2,8] x-slab ⇒ validated (Rule 3).
        let rq3 = Rect::new([1.5, -0.5], [8.5, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq3, 0.6),
            FilterOutcome::Validated
        );
        // q4: pq=0.8, rq covers MBR right of the left pcr(0.2) face
        // ⇒ validated (Rule 4).
        let rq4 = Rect::new([1.5, -0.5], [10.5, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq4, 0.8),
            FilterOutcome::Validated
        );
        // q5: pq=0.2, rq covers MBR left of the left pcr(0.2) face
        // ⇒ validated (Rule 5).
        let rq5 = Rect::new([-0.5, -0.5], [2.0, 10.5]);
        assert_eq!(
            filter_object(&pcrs, &mbr, &cat, &rq5, 0.2),
            FilterOutcome::Validated
        );
    }
}
