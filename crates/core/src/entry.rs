//! Leaf entries and node codecs for the U-tree and U-PCR.
//!
//! Sec 5.1: "A leaf entry contains the `o.cfb_out` and `o.cfb_in` of an
//! object `o`, the MBR of its uncertainty region `o.ur`, together with a
//! disk address where the details of `o.ur` and the parameters of `o.pdf`
//! are stored." U-PCR replaces the two CFBs with all m PCRs — that size
//! difference (8d vs 2d·m values) is the paper's Table 1 story.

use crate::catalog::UCatalog;
use crate::cfb::CfbPair;
use crate::key::{PcrKey, UKey};
use crate::pcr::PcrSet;
use page_store::{ByteReader, ByteWriter, PageId, RecordAddr, PAGE_SIZE};
use rstar_base::{InnerEntry, LeafRecord, NodeCodec};
use std::sync::Arc;
use uncertain_geom::Rect;

/// A U-tree leaf entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ULeafEntry<const D: usize> {
    /// The object's conservative functional boxes (f32-exact values).
    pub cfbs: CfbPair<D>,
    /// MBR of the uncertainty region (f32-exact, outward-rounded).
    pub mbr: Rect<D>,
    /// Heap address of the object's pdf record.
    pub addr: RecordAddr,
    /// Object identifier.
    pub id: u64,
    /// Derived bounding key (`cfb_out` evaluated at `p₁` and `p_m`);
    /// not serialised.
    key: UKey<D>,
}

impl<const D: usize> ULeafEntry<D> {
    /// Builds an entry; `cfbs` and `mbr` must already be conservatively
    /// f32-rounded (see [`crate::cfb::Cfb::round_outward`]) so that the key
    /// derived here is byte-identical after an encode/decode round trip.
    pub fn new(
        cfbs: CfbPair<D>,
        mbr: Rect<D>,
        addr: RecordAddr,
        id: u64,
        catalog: &UCatalog,
    ) -> Self {
        let key = UKey {
            lo: cfbs.outer.eval(catalog.first()),
            hi: cfbs.outer.eval(catalog.last()),
        };
        Self {
            cfbs,
            mbr,
            addr,
            id,
            key,
        }
    }
}

impl<const D: usize> LeafRecord<UKey<D>> for ULeafEntry<D> {
    fn key(&self) -> UKey<D> {
        self.key
    }

    fn id(&self) -> u64 {
        self.id
    }
}

fn put_rect<const D: usize>(w: &mut ByteWriter, r: &Rect<D>) {
    for i in 0..D {
        w.put_f32(r.min[i]);
    }
    for i in 0..D {
        w.put_f32(r.max[i]);
    }
}

/// Writes a bounding rectangle with outward f32 rounding.
///
/// U-tree inner keys hold CFB evaluations at `p_m`, which are f64 products
/// not generally f32-representable; nearest rounding could shrink a bound
/// below a child's box and break the bounding invariant by an ulp.
fn put_rect_outward<const D: usize>(w: &mut ByteWriter, r: &Rect<D>) {
    for i in 0..D {
        w.put_f32(page_store::f32_round_down(r.min[i]));
    }
    for i in 0..D {
        w.put_f32(page_store::f32_round_up(r.max[i]));
    }
}

fn get_rect<const D: usize>(r: &mut ByteReader<'_>) -> Rect<D> {
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for m in min.iter_mut() {
        *m = r.get_f32();
    }
    for m in max.iter_mut() {
        *m = r.get_f32();
    }
    for i in 0..D {
        if min[i] > max[i] {
            std::mem::swap(&mut min[i], &mut max[i]);
        }
    }
    Rect { min, max }
}

fn put_addr(w: &mut ByteWriter, a: &RecordAddr) {
    w.put_u64(a.page);
    w.put_u16(a.slot);
}

fn get_addr(r: &mut ByteReader<'_>) -> RecordAddr {
    RecordAddr {
        page: r.get_u64() as PageId,
        slot: r.get_u16(),
    }
}

/// On-page codec for U-tree nodes.
///
/// Leaf entry: 8·D f32 (both CFBs) + 2·D f32 (MBR) + 10 B addr + 8 B id.
/// Inner entry: 4·D f32 (`MBR⊥`, `MBR̄`) + 8 B child pointer.
#[derive(Debug, Clone)]
pub struct UCodec<const D: usize> {
    catalog: Arc<UCatalog>,
}

impl<const D: usize> UCodec<D> {
    /// Codec bound to a catalog (needed to re-derive leaf keys on decode).
    pub fn new(catalog: Arc<UCatalog>) -> Self {
        Self { catalog }
    }

    /// Encoded leaf-entry size in bytes.
    pub const fn leaf_entry_size() -> usize {
        8 * D * 4 + 2 * D * 4 + 10 + 8
    }

    /// Encoded inner-entry size in bytes.
    pub const fn inner_entry_size() -> usize {
        4 * D * 4 + 8
    }

    fn put_cfb(w: &mut ByteWriter, c: &crate::cfb::Cfb<D>) {
        put_rect(w, &c.alpha);
        for i in 0..D {
            w.put_f32(c.beta_lo[i]);
        }
        for i in 0..D {
            w.put_f32(c.beta_hi[i]);
        }
    }

    fn get_cfb(r: &mut ByteReader<'_>) -> crate::cfb::Cfb<D> {
        // Alpha needs raw reads: a CFB alpha is a valid Rect, but the
        // generic get_rect's inversion repair must not kick in here.
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for m in min.iter_mut() {
            *m = r.get_f32();
        }
        for m in max.iter_mut() {
            *m = r.get_f32();
        }
        let mut beta_lo = [0.0; D];
        let mut beta_hi = [0.0; D];
        for b in beta_lo.iter_mut() {
            *b = r.get_f32();
        }
        for b in beta_hi.iter_mut() {
            *b = r.get_f32();
        }
        crate::cfb::Cfb {
            alpha: Rect { min, max },
            beta_lo,
            beta_hi,
        }
    }
}

impl<const D: usize> NodeCodec<UKey<D>, ULeafEntry<D>> for UCodec<D> {
    fn leaf_capacity(&self) -> usize {
        (PAGE_SIZE - 3) / Self::leaf_entry_size()
    }

    fn inner_capacity(&self) -> usize {
        (PAGE_SIZE - 3) / Self::inner_entry_size()
    }

    fn encode_leaf(&self, entries: &[ULeafEntry<D>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * Self::leaf_entry_size());
        w.put_u16(entries.len() as u16);
        for e in entries {
            Self::put_cfb(&mut w, &e.cfbs.outer);
            Self::put_cfb(&mut w, &e.cfbs.inner);
            put_rect(&mut w, &e.mbr);
            put_addr(&mut w, &e.addr);
            w.put_u64(e.id);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_leaf(&self, bytes: &[u8]) -> Vec<ULeafEntry<D>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        (0..n)
            .map(|_| {
                let outer = Self::get_cfb(&mut r);
                let inner = Self::get_cfb(&mut r);
                let mbr = get_rect(&mut r);
                let addr = get_addr(&mut r);
                let id = r.get_u64();
                ULeafEntry::new(CfbPair { outer, inner }, mbr, addr, id, &self.catalog)
            })
            .collect()
    }

    fn encode_inner(&self, entries: &[InnerEntry<UKey<D>>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * Self::inner_entry_size());
        w.put_u16(entries.len() as u16);
        for e in entries {
            put_rect_outward(&mut w, &e.key.lo);
            put_rect_outward(&mut w, &e.key.hi);
            w.put_u64(e.child);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_inner(&self, bytes: &[u8]) -> Vec<InnerEntry<UKey<D>>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        (0..n)
            .map(|_| {
                let lo = get_rect(&mut r);
                let hi = get_rect(&mut r);
                InnerEntry {
                    key: UKey { lo, hi },
                    child: r.get_u64(),
                }
            })
            .collect()
    }
}

/// A U-PCR leaf entry: the m PCRs stored verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct UPcrLeafEntry<const D: usize> {
    /// The object's PCRs at every catalog value (f32-exact).
    pub pcrs: PcrSet<D>,
    /// MBR of the uncertainty region.
    pub mbr: Rect<D>,
    /// Heap address of the object's pdf record.
    pub addr: RecordAddr,
    /// Object identifier.
    pub id: u64,
}

impl<const D: usize> LeafRecord<PcrKey<D>> for UPcrLeafEntry<D> {
    fn key(&self) -> PcrKey<D> {
        PcrKey {
            rects: self.pcrs.rects().to_vec(),
        }
    }

    fn id(&self) -> u64 {
        self.id
    }
}

/// On-page codec for U-PCR nodes.
///
/// Leaf entry: 2·D·m f32 (PCRs) + 2·D f32 (MBR) + 10 B addr + 8 B id.
/// Inner entry: 2·D·m f32 + 8 B child — the fanout penalty of Sec 4.3.
#[derive(Debug, Clone)]
pub struct UPcrCodec<const D: usize> {
    catalog: Arc<UCatalog>,
}

impl<const D: usize> UPcrCodec<D> {
    /// Codec bound to a catalog (supplies m).
    pub fn new(catalog: Arc<UCatalog>) -> Self {
        Self { catalog }
    }

    /// Encoded leaf-entry size in bytes.
    pub fn leaf_entry_size(&self) -> usize {
        2 * D * 4 * self.catalog.len() + 2 * D * 4 + 10 + 8
    }

    /// Encoded inner-entry size in bytes.
    pub fn inner_entry_size(&self) -> usize {
        2 * D * 4 * self.catalog.len() + 8
    }
}

impl<const D: usize> NodeCodec<PcrKey<D>, UPcrLeafEntry<D>> for UPcrCodec<D> {
    fn leaf_capacity(&self) -> usize {
        (PAGE_SIZE - 3) / self.leaf_entry_size()
    }

    fn inner_capacity(&self) -> usize {
        (PAGE_SIZE - 3) / self.inner_entry_size()
    }

    fn encode_leaf(&self, entries: &[UPcrLeafEntry<D>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * self.leaf_entry_size());
        w.put_u16(entries.len() as u16);
        for e in entries {
            debug_assert_eq!(e.pcrs.len(), self.catalog.len());
            for r in e.pcrs.rects() {
                put_rect(&mut w, r);
            }
            put_rect(&mut w, &e.mbr);
            put_addr(&mut w, &e.addr);
            w.put_u64(e.id);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_leaf(&self, bytes: &[u8]) -> Vec<UPcrLeafEntry<D>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        let m = self.catalog.len();
        (0..n)
            .map(|_| {
                let rects: Vec<Rect<D>> = (0..m).map(|_| get_rect(&mut r)).collect();
                UPcrLeafEntry {
                    pcrs: PcrSet::from_rects(rects),
                    mbr: get_rect(&mut r),
                    addr: get_addr(&mut r),
                    id: r.get_u64(),
                }
            })
            .collect()
    }

    fn encode_inner(&self, entries: &[InnerEntry<PcrKey<D>>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * self.inner_entry_size());
        w.put_u16(entries.len() as u16);
        for e in entries {
            debug_assert_eq!(e.key.rects.len(), self.catalog.len());
            for r in &e.key.rects {
                put_rect(&mut w, r);
            }
            w.put_u64(e.child);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_inner(&self, bytes: &[u8]) -> Vec<InnerEntry<PcrKey<D>>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        let m = self.catalog.len();
        (0..n)
            .map(|_| {
                let rects: Vec<Rect<D>> = (0..m).map(|_| get_rect(&mut r)).collect();
                InnerEntry {
                    key: PcrKey { rects },
                    child: r.get_u64(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfb::fit_cfb_pair;
    use uncertain_geom::Point;
    use uncertain_pdf::ObjectPdf;

    fn sample_entry(cat: &Arc<UCatalog>) -> ULeafEntry<2> {
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([5000.0, 5000.0]),
            radius: 250.0,
        };
        let pcrs = PcrSet::compute(&pdf, cat);
        let cfbs = fit_cfb_pair(&pcrs, cat);
        let mbr = Rect {
            min: [
                page_store::f32_round_down(pdf.mbr().min[0]),
                page_store::f32_round_down(pdf.mbr().min[1]),
            ],
            max: [
                page_store::f32_round_up(pdf.mbr().max[0]),
                page_store::f32_round_up(pdf.mbr().max[1]),
            ],
        };
        ULeafEntry::new(cfbs, mbr, RecordAddr { page: 7, slot: 3 }, 42, cat)
    }

    #[test]
    fn utree_leaf_roundtrip_is_exact() {
        let cat = Arc::new(UCatalog::paper_utree_default());
        let codec = UCodec::<2>::new(cat.clone());
        let e = sample_entry(&cat);
        let mut bytes = Vec::new();
        codec.encode_leaf(std::slice::from_ref(&e), &mut bytes);
        let back = codec.decode_leaf(&bytes);
        assert_eq!(back.len(), 1);
        // Pre-rounded values survive the f32 narrowing byte-exactly, so the
        // whole entry (including the derived key) must be identical.
        assert_eq!(back[0], e);
        assert_eq!(back[0].key(), e.key());
    }

    #[test]
    fn utree_inner_roundtrip() {
        let cat = Arc::new(UCatalog::paper_utree_default());
        let codec = UCodec::<2>::new(cat.clone());
        let e = sample_entry(&cat);
        let inner = vec![
            InnerEntry {
                key: e.key(),
                child: 11,
            },
            InnerEntry {
                key: e.key(),
                child: 12,
            },
        ];
        let mut bytes = Vec::new();
        codec.encode_inner(&inner, &mut bytes);
        let back = codec.decode_inner(&bytes);
        assert_eq!(back.len(), 2);
        // Inner keys round outward: the decoded key must cover the
        // original (bounding invariant) and stay within an f32 ulp of it.
        for i in 0..2 {
            assert!(back[0].key.lo.min[i] <= inner[0].key.lo.min[i]);
            assert!(back[0].key.lo.max[i] >= inner[0].key.lo.max[i]);
            assert!(back[0].key.hi.min[i] <= inner[0].key.hi.min[i]);
            assert!(back[0].key.hi.max[i] >= inner[0].key.hi.max[i]);
            assert!((back[0].key.hi.min[i] - inner[0].key.hi.min[i]).abs() < 1e-2);
        }
        assert_eq!(back[1].child, 12);
    }

    #[test]
    fn capacities_match_paper_arithmetic() {
        // 2D U-tree: leaf entry = 16 CFB values + 4 MBR values (f32) + 18B
        // = 98B ⇒ 41 per page; inner = 8 values + 8B = 40B ⇒ 102.
        let cat = Arc::new(UCatalog::paper_utree_default());
        let codec = UCodec::<2>::new(cat.clone());
        assert_eq!(UCodec::<2>::leaf_entry_size(), 98);
        assert_eq!(codec.leaf_capacity(), 41);
        assert_eq!(UCodec::<2>::inner_entry_size(), 40);
        assert_eq!(codec.inner_capacity(), 102);
        // 2D U-PCR with the paper's m = 9: leaf entry = 36 PCR values + 4
        // MBR values + 18B = 178B ⇒ 22 per page; inner = 152B ⇒ 26. The
        // U-tree's fanout advantage is the whole point of CFBs.
        let cat9 = Arc::new(UCatalog::uniform(9));
        let pcodec = UPcrCodec::<2>::new(cat9);
        assert_eq!(pcodec.leaf_entry_size(), 178);
        assert_eq!(pcodec.leaf_capacity(), 22);
        assert_eq!(pcodec.inner_capacity(), 26);
    }

    #[test]
    fn upcr_leaf_roundtrip() {
        let cat = Arc::new(UCatalog::uniform(5));
        let codec = UPcrCodec::<2>::new(cat.clone());
        let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
            center: Point::new([100.0, 100.0]),
            radius: 50.0,
        };
        let pcrs = PcrSet::compute(&pdf, &cat);
        // Round PCRs to their stored f32 values first so equality is exact.
        let rounded = PcrSet::from_rects(
            pcrs.rects()
                .iter()
                .map(|r| Rect {
                    min: [r.min[0] as f32 as f64, r.min[1] as f32 as f64],
                    max: [r.max[0] as f32 as f64, r.max[1] as f32 as f64],
                })
                .collect(),
        );
        let e = UPcrLeafEntry {
            pcrs: rounded,
            mbr: Rect::new([50.0, 50.0], [150.0, 150.0]),
            addr: RecordAddr { page: 1, slot: 0 },
            id: 5,
        };
        let mut bytes = Vec::new();
        codec.encode_leaf(std::slice::from_ref(&e), &mut bytes);
        let back = codec.decode_leaf(&bytes);
        assert_eq!(back[0], e);
    }
}
