//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *exact* `rand 0.8` API surface it uses — nothing more:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable generator
//!   (xoshiro256++, seeded via SplitMix64, like upstream's `SmallRng` on
//!   64-bit targets);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] (for `f64`/`f32`), [`Rng::gen_range`] over half-open and
//!   inclusive ranges of floats and integers, and [`Rng::gen_bool`].
//!
//! All generators are deterministic for a given seed, which is what the
//! reproduction's seeded datasets, workloads and Monte-Carlo refinement
//! rely on. If the real `rand` ever becomes available, deleting this crate
//! and pointing the workspace dependency at crates.io is a drop-in swap.

use core::ops::{Range, RangeInclusive};

/// Types that can be created from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing random-value interface (the subset of `rand::Rng` this
/// workspace calls).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Standard-distribution sampling (the `gen()` entry point).
pub trait SampleStandard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (matching upstream `SmallRng`'s algorithm family on
    /// 64-bit platforms). Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_respect_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 must occur");
    }

    #[test]
    fn gen_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "P(true) {frac} far from 0.25");
    }
}
