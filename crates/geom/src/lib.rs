//! d-dimensional geometry substrate for the U-tree reproduction.
//!
//! Provides [`Point`] and [`Rect`] with the exact penalty metrics the
//! R*-tree construction algorithm minimises (Beckmann et al., SIGMOD 1990,
//! reviewed in Sec 2.2 of the U-tree paper): area, margin (perimeter),
//! overlap between two rectangles, and the distance between centroids.
//!
//! Everything is generic over the compile-time dimensionality `D`; the paper
//! evaluates `D = 2` (LB, CA) and `D = 3` (Aircraft).

mod point;
mod rect;

pub use point::Point;
pub use rect::Rect;

/// Serde support for `[T; D]` with const-generic `D` (serde's built-in
/// array impls stop at fixed sizes).
pub mod array_serde {
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    /// Serializes the array as a sequence.
    pub fn serialize<S: Serializer, T: Serialize, const D: usize>(
        arr: &[T; D],
        s: S,
    ) -> Result<S::Ok, S::Error> {
        s.collect_seq(arr.iter())
    }

    /// Deserializes a sequence of exactly `D` elements.
    pub fn deserialize<'de, De: Deserializer<'de>, T: Deserialize<'de>, const D: usize>(
        d: De,
    ) -> Result<[T; D], De::Error> {
        let v = Vec::<T>::deserialize(d)?;
        v.try_into()
            .map_err(|v: Vec<T>| De::Error::invalid_length(v.len(), &"array of dimension D"))
    }
}

/// Relative tolerance used by the geometry tests.
pub const EPS: f64 = 1e-9;
