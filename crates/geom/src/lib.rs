//! d-dimensional geometry substrate for the U-tree reproduction.
//!
//! Provides [`Point`] and [`Rect`] with the exact penalty metrics the
//! R*-tree construction algorithm minimises (Beckmann et al., SIGMOD 1990,
//! reviewed in Sec 2.2 of the U-tree paper): area, margin (perimeter),
//! overlap between two rectangles, and the distance between centroids.
//!
//! Everything is generic over the compile-time dimensionality `D`; the paper
//! evaluates `D = 2` (LB, CA) and `D = 3` (Aircraft).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod point;
mod rect;

pub use point::Point;
pub use rect::Rect;

/// Relative tolerance used by the geometry tests.
pub const EPS: f64 = 1e-9;
