use crate::Point;

/// An axis-aligned (hyper-)rectangle in `D` dimensions, `min[i] <= max[i]`.
///
/// This is the common currency of the whole stack: MBRs of uncertainty
/// regions, PCRs, CFB evaluations, query regions and tree-entry bounds are
/// all `Rect`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Lower corner.
    pub min: [f64; D],
    /// Upper corner.
    pub max: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from corners. Debug-asserts `min <= max`.
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        for i in 0..D {
            debug_assert!(
                min[i] <= max[i],
                "Rect min {:?} must be <= max {:?} on dim {i}",
                min,
                max
            );
        }
        Self { min, max }
    }

    /// The degenerate rectangle containing exactly one point.
    pub fn from_point(p: &Point<D>) -> Self {
        Self {
            min: p.coords,
            max: p.coords,
        }
    }

    /// A cube with the given `center` and side length `side`.
    pub fn cube(center: &Point<D>, side: f64) -> Self {
        let h = side * 0.5;
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = center.coords[i] - h;
            max[i] = center.coords[i] + h;
        }
        Self::new(min, max)
    }

    /// The "empty" rectangle: identity element of [`Rect::union`].
    ///
    /// It contains no point and unions as a no-op.
    pub fn empty() -> Self {
        Self {
            min: [f64::INFINITY; D],
            max: [f64::NEG_INFINITY; D],
        }
    }

    /// True for the identity produced by [`Rect::empty`] (never for a rect
    /// holding at least one point).
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.min[i] > self.max[i])
    }

    /// Extent on dimension `i` (`0` for empty rectangles).
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        (self.max[i] - self.min[i]).max(0.0)
    }

    /// d-dimensional volume (the paper calls this AREA).
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            a *= self.extent(i);
        }
        a
    }

    /// Margin: the sum of extents over all dimensions (the R*-tree's
    /// perimeter surrogate — MARGIN in the paper's Formula 7).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut m = 0.0;
        for i in 0..D {
            m += self.extent(i);
        }
        m
    }

    /// Center point.
    pub fn center(&self) -> Point<D> {
        let mut coords = self.min;
        for (c, hi) in coords.iter_mut().zip(self.max) {
            *c = 0.5 * (*c + hi);
        }
        Point::new(coords)
    }

    /// Distance between the centroids of two rectangles (CDIST in Sec 5.3).
    pub fn centroid_distance(&self, other: &Self) -> f64 {
        self.center().distance(&other.center())
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &Self) -> Self {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.min[i].min(other.min[i]);
            max[i] = self.max[i].max(other.max[i]);
        }
        Self { min, max }
    }

    /// Intersection; `None` when disjoint (touching edges still intersect).
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.min[i].max(other.min[i]);
            max[i] = self.max[i].min(other.max[i]);
            if min[i] > max[i] {
                return None;
            }
        }
        Some(Self { min, max })
    }

    /// Volume of the intersection (OVERLAP in Sec 5.3); `0` when disjoint.
    pub fn overlap(&self, other: &Self) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            let lo = self.min[i].max(other.min[i]);
            let hi = self.max[i].min(other.max[i]);
            if lo >= hi {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &Self) -> bool {
        for i in 0..D {
            if self.min[i] > other.max[i] || self.max[i] < other.min[i] {
                return false;
            }
        }
        true
    }

    /// True when `other` lies entirely inside `self` (boundaries allowed).
    pub fn contains_rect(&self, other: &Self) -> bool {
        for i in 0..D {
            if other.min[i] < self.min[i] || other.max[i] > self.max[i] {
                return false;
            }
        }
        true
    }

    /// True when `p` lies inside `self` (boundaries allowed).
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p.coords[i] < self.min[i] || p.coords[i] > self.max[i] {
                return false;
            }
        }
        true
    }

    /// Area increase caused by enlarging `self` to also cover `other`.
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Clamps `self` to lie within `bounds` (used by the data generators to
    /// keep uncertainty regions inside the domain).
    pub fn clamp_to(&self, bounds: &Self) -> Self {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.min[i].max(bounds.min[i]).min(bounds.max[i]);
            max[i] = self.max[i].min(bounds.max[i]).max(bounds.min[i]);
        }
        Self { min, max }
    }

    /// True if all corners are finite numbers.
    pub fn is_finite(&self) -> bool {
        self.min
            .iter()
            .chain(self.max.iter())
            .all(|c| c.is_finite())
    }

    /// Projection on dimension `i` as `(lo, hi)`.
    #[inline]
    pub fn projection(&self, i: usize) -> (f64, f64) {
        (self.min[i], self.max[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(min: [f64; 2], max: [f64; 2]) -> Rect<2> {
        Rect::new(min, max)
    }

    #[test]
    fn area_and_margin() {
        let r = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
    }

    #[test]
    fn empty_behaves_as_union_identity() {
        let e = Rect::<2>::empty();
        let r = r2([1.0, 1.0], [2.0, 2.0]);
        assert!(e.is_empty());
        assert_eq!(e.union(&r), r);
        assert_eq!(r.union(&e), r);
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
    }

    #[test]
    fn union_contains_both() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r2([0.0, -1.0], [3.0, 1.0]));
    }

    #[test]
    fn overlap_of_disjoint_rects_is_zero() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([2.0, 2.0], [3.0, 3.0]);
        assert_eq!(a.overlap(&b), 0.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn overlap_of_touching_rects_is_zero_but_they_intersect() {
        let a = r2([0.0, 0.0], [1.0, 1.0]);
        let b = r2([1.0, 0.0], [2.0, 1.0]);
        assert_eq!(a.overlap(&b), 0.0);
        assert!(a.intersects(&b));
        assert!(a.intersection(&b).is_some());
    }

    #[test]
    fn overlap_matches_intersection_area() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 4.0]);
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.intersection(&b).unwrap().area(), a.overlap(&b));
    }

    #[test]
    fn containment() {
        let outer = r2([0.0, 0.0], [10.0, 10.0]);
        let inner = r2([1.0, 1.0], [2.0, 2.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&Point::new([0.0, 10.0])));
        assert!(!outer.contains_point(&Point::new([-0.1, 5.0])));
    }

    #[test]
    fn cube_centered() {
        let c = Rect::cube(&Point::new([5.0, 5.0]), 2.0);
        assert_eq!(c, r2([4.0, 4.0], [6.0, 6.0]));
        assert_eq!(c.center(), Point::new([5.0, 5.0]));
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let outer = r2([0.0, 0.0], [10.0, 10.0]);
        let inner = r2([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(outer.enlargement(&inner), 0.0);
        assert!(inner.enlargement(&outer) > 0.0);
    }

    #[test]
    fn centroid_distance_3d() {
        let a = Rect::new([0.0, 0.0, 0.0], [2.0, 2.0, 2.0]);
        let b = Rect::new([3.0, 4.0, 1.0], [5.0, 6.0, 3.0]);
        // centers (1,1,1) and (4,5,2): distance sqrt(9+16+1)
        assert!((a.centroid_distance(&b) - 26.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_domain() {
        let domain = r2([0.0, 0.0], [100.0, 100.0]);
        let r = r2([-5.0, 90.0], [5.0, 110.0]);
        let c = r.clamp_to(&domain);
        assert_eq!(c, r2([0.0, 90.0], [5.0, 100.0]));
    }
}
