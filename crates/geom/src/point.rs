/// A point in `D`-dimensional space.
///
/// Coordinates are `f64`; the paper normalises every dimension to the domain
/// `[0, 10000]`, but nothing here assumes that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    /// Coordinate per dimension.
    pub coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    pub const fn origin() -> Self {
        Self::new([0.0; D])
    }

    /// Coordinate on dimension `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparing).
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(other.coords) {
            *c += o;
        }
        Self::new(coords)
    }

    /// Component-wise subtraction `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(other.coords) {
            *c -= o;
        }
        Self::new(coords)
    }

    /// Scales every coordinate by `s`.
    pub fn scale(&self, s: f64) -> Self {
        let mut coords = self.coords;
        for c in coords.iter_mut() {
            *c *= s;
        }
        Self::new(coords)
    }

    /// True if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_hand_computation() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new([1.5, -2.0, 7.0]);
        let b = Point::new([-3.0, 0.25, 2.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn origin_is_all_zero() {
        let o = Point::<3>::origin();
        assert_eq!(o.coords, [0.0; 3]);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Point::new([1.0, 2.0]);
        let b = Point::new([0.5, -1.0]);
        let c = a.add(&b).sub(&b);
        assert_eq!(c, a);
        assert_eq!(a.scale(2.0).coords, [2.0, 4.0]);
    }

    #[test]
    fn from_array() {
        let p: Point<2> = [1.0, 2.0].into();
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(1), 2.0);
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 2.0]).is_finite());
        assert!(!Point::new([f64::INFINITY, 2.0]).is_finite());
    }
}
