//! File model shared by every lint: lexed lines plus brace depth,
//! test-region marking and parsed waivers.

use crate::lex::{lex, LineView};

/// A parsed waiver comment: `// xlint: allow(lint-a, lint-b) -- reason`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub comment_line: usize,
    /// 1-based line the waiver applies to (same line, or the next line
    /// holding code when the comment stands alone).
    pub target_line: usize,
    /// Lint names inside `allow(...)`.
    pub lints: Vec<String>,
    /// The text after ` -- ` (empty means malformed).
    pub reason: String,
    /// Whether `allow(...)` parsed at all.
    pub well_formed: bool,
}

/// One analyzed line.
#[derive(Debug)]
pub struct Line {
    /// Code channel (literals masked, comments stripped).
    pub code: String,
    /// Comment channel.
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth_before: usize,
    /// Inside a `#[cfg(test)]` module/function or `#[test]` function.
    pub in_test: bool,
}

/// A lexed and annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
    /// Waivers found in the file.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lexes and annotates `source`.
    pub fn parse(path: &str, source: &str) -> Self {
        let views = lex(source);
        let lines = annotate(&views);
        let waivers = collect_waivers(&lines);
        Self {
            path: path.to_string(),
            lines,
            waivers,
        }
    }

    /// 1-based iteration helper.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

fn annotate(views: &[LineView]) -> Vec<Line> {
    let mut out = Vec::with_capacity(views.len());
    let mut depth = 0usize;
    // Depth below which we are back out of the innermost test region.
    let mut test_stack: Vec<usize> = Vec::new();
    // A test attribute was seen and its item's opening brace is pending.
    let mut pending_test = false;
    for view in views {
        let code = view.code.as_str();
        let trimmed = code.trim();
        let depth_before = depth;

        if trimmed.contains("#[cfg(test)]")
            || trimmed.contains("#[test]")
            || trimmed.contains("#[cfg(all(test")
            || trimmed.contains("#[bench]")
        {
            pending_test = true;
        }

        let opens = code.matches('{').count();
        let closes = code.matches('}').count();

        if pending_test && opens > 0 {
            test_stack.push(depth_before);
            pending_test = false;
        } else if pending_test && trimmed.ends_with(';') && !trimmed.contains("#[") {
            // `#[cfg(test)] use …;` — attribute consumed without a body.
            pending_test = false;
        }

        let in_test = !test_stack.is_empty();
        depth = (depth + opens).saturating_sub(closes);
        while let Some(&d) = test_stack.last() {
            if depth <= d {
                test_stack.pop();
            } else {
                break;
            }
        }

        out.push(Line {
            code: view.code.clone(),
            comment: view.comment.clone(),
            depth_before,
            in_test,
        });
    }
    out
}

fn collect_waivers(lines: &[Line]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // The directive must be the whole comment: `// xlint: allow(…) --
        // reason`. Comments merely *mentioning* the syntax (docs) never
        // match because stripping `/`, `!` and whitespace must land
        // exactly on the marker.
        let stripped = line
            .comment
            .trim_start_matches(['/', '!', ' ', '\t'])
            .trim_end();
        let Some(rest) = stripped.strip_prefix("xlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (lints, reason, well_formed) = parse_allow(rest);
        let comment_line = idx + 1;
        let target_line = if line.code.trim().is_empty() {
            // Standalone comment: applies to the next code-bearing line.
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .take(5)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map_or(comment_line, |(j, _)| j + 1)
        } else {
            comment_line
        };
        out.push(Waiver {
            comment_line,
            target_line,
            lints,
            reason,
            well_formed,
        });
    }
    out
}

/// Parses `allow(a, b) -- reason`. Returns `(lints, reason, well_formed)`.
fn parse_allow(rest: &str) -> (Vec<String>, String, bool) {
    let Some(open) = rest.strip_prefix("allow(") else {
        return (Vec::new(), String::new(), false);
    };
    let Some(close) = open.find(')') else {
        return (Vec::new(), String::new(), false);
    };
    let lints: Vec<String> = open[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let after = &open[close + 1..];
    let reason = after
        .split_once("--")
        .map(|(_, r)| r.trim().to_string())
        .unwrap_or_default();
    (lints.clone(), reason, !lints.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_marked() {
        let src =
            "fn lib() { x(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside cfg(test) mod");
        assert!(!f.lines[5].in_test, "after the test mod closes");
    }

    #[test]
    fn test_fn_attribute_marks_only_the_fn() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn lib() {}\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn cfg_test_use_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { z(); }\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn waiver_on_same_line_and_standalone() {
        let src = "a.unwrap(); // xlint: allow(panic-freedom) -- invariant\n// xlint: allow(lock-order) -- checked manually\nlock(self.shard(id));\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].target_line, 1);
        assert_eq!(f.waivers[0].lints, vec!["panic-freedom"]);
        assert_eq!(f.waivers[0].reason, "invariant");
        assert_eq!(f.waivers[1].target_line, 3);
    }

    #[test]
    fn malformed_waiver_is_flagged() {
        let src = "b.unwrap(); // xlint: allow(panic-freedom)\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.waivers[0].well_formed);
        assert!(f.waivers[0].reason.is_empty(), "missing -- reason");
    }
}
