//! The `xlint` command-line entry point.
//!
//! ```text
//! cargo run -p xlint                              # human-readable report
//! cargo run -p xlint -- --format json             # machine-readable report
//! cargo run -p xlint -- --baseline LINT_BASELINE.json        # CI ratchet gate
//! cargo run -p xlint -- --write-baseline LINT_BASELINE.json  # (re)freeze waivers
//! ```
//!
//! Exit codes: `0` clean, `1` violations, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{analyze, find_workspace_root, Baseline, ScanConfig};

struct Args {
    root: Option<PathBuf>,
    format_json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format_json: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(next(&mut it, "--root")?)),
            "--format" => {
                let v = next(&mut it, "--format")?;
                match v.as_str() {
                    "json" => args.format_json = true,
                    "text" => args.format_json = false,
                    other => return Err(format!("unknown format `{other}` (json|text)")),
                }
            }
            "--baseline" => args.baseline = Some(PathBuf::from(next(&mut it, "--baseline")?)),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(next(&mut it, "--write-baseline")?));
            }
            "--help" | "-h" => {
                return Err("usage: xlint [--root DIR] [--format json|text] \
                     [--baseline FILE] [--write-baseline FILE]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("xlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match analyze(&root, &ScanConfig::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xlint: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = args.write_baseline {
        let baseline = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&path, baseline.to_json()) {
            eprintln!("xlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let active = report.active().count();
        println!(
            "xlint: froze {} waived finding(s) into {}",
            report.waived().count(),
            path.display()
        );
        if active > 0 {
            eprintln!("xlint: {active} ACTIVE finding(s) remain — a baseline never absorbs them:");
            for f in report.active() {
                eprintln!("  {}:{}: [{}] {}", f.file, f.line, f.lint.name(), f.snippet);
            }
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if args.format_json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            let mark = if f.waived { "waived" } else { "ACTIVE" };
            println!(
                "{}:{}: [{}] ({mark}) {}",
                f.file,
                f.line,
                f.lint.name(),
                f.snippet
            );
        }
        println!(
            "xlint: {} file(s), {} active, {} waived",
            report.files_scanned,
            report.active().count(),
            report.waived().count()
        );
    }

    if let Some(path) = args.baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xlint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xlint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let outcome = baseline.check(&report);
        for note in &outcome.shrinkable {
            eprintln!("xlint: note: {note}");
        }
        if !outcome.violations.is_empty() {
            eprintln!(
                "xlint: ratchet FAILED — {} violation(s):",
                outcome.violations.len()
            );
            for v in &outcome.violations {
                eprintln!("  {v}");
            }
            return ExitCode::from(1);
        }
        eprintln!("xlint: ratchet clean against {}", path.display());
        return ExitCode::SUCCESS;
    }

    if report.active().count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
