//! `xlint` — the repo's offline, dependency-free static analysis suite.
//!
//! Enforces the invariants this codebase otherwise keeps by convention:
//!
//! | lint | invariant |
//! |---|---|
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`-family in non-test library code |
//! | `io-fallibility` | no `unwrap`/`expect` on fallible `PageStore`/`Wal` I/O |
//! | `lock-order` | never take a pool shard latch while a backend guard is live |
//! | `atomics-justification` | every atomic `Ordering::…` carries a `// ordering:` comment |
//! | `doc-coverage` | public items in the API crates carry rustdoc |
//!
//! A justified exception is *waived* in place with a comment that must be
//! the entire comment text: `// xlint: allow(<lint>[, <lint>]) -- <reason>`.
//! Waived findings still appear in the report and are frozen by the
//! committed [`baseline`] (`LINT_BASELINE.json`): the waiver set can
//! shrink but never silently grow, and unwaived findings always fail.
//!
//! The analyzer is token/line-level on a two-channel lexed view (code vs
//! comments, string literals masked) — deliberately no `syn`, no serde,
//! no registry dependency. See `docs/ANALYSIS.md` for the lint
//! catalogue, waiver grammar and ratchet workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lex;
pub mod lints;
pub mod report;
pub mod scan;
pub mod workspace;

pub use baseline::{Baseline, RatchetOutcome};
pub use lints::{Finding, Lint, LintSet};
pub use report::Report;
pub use workspace::{analyze, find_workspace_root, ScanConfig};
