//! Waiver application, deterministic ordering and report serialization.

use crate::lints::{Finding, Lint};
use crate::scan::SourceFile;

/// A finished analysis run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived ones included, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that are violations (not waived).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings suppressed by a waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// Serializes the report as stable, sorted JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!(
                "\"lint\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"waived\": {}",
                json_str(f.lint.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.snippet),
                f.waived
            ));
            if f.waived {
                s.push_str(&format!(", \"reason\": {}", json_str(&f.reason)));
            }
            s.push('}');
            if i + 1 < self.findings.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"summary\": {{\"active\": {}, \"waived\": {}, \"files_scanned\": {}}}\n}}\n",
            self.active().count(),
            self.waived().count(),
            self.files_scanned
        ));
        s
    }
}

/// JSON string literal with escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Applies `file`'s waivers to `findings` (which must all belong to
/// `file`), marks used waivers, and appends waiver-hygiene findings for
/// malformed or unused waivers.
pub fn apply_waivers(file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut used = vec![false; file.waivers.len()];
    for f in findings.iter_mut() {
        for (wi, w) in file.waivers.iter().enumerate() {
            if w.target_line == f.line
                && w.well_formed
                && !w.reason.is_empty()
                && w.lints.iter().any(|l| l == f.lint.name())
            {
                f.waived = true;
                f.reason = w.reason.clone();
                used[wi] = true;
            }
        }
    }
    for (wi, w) in file.waivers.iter().enumerate() {
        if !w.well_formed || w.reason.is_empty() {
            findings.push(Finding {
                lint: Lint::MalformedWaiver,
                file: file.path.clone(),
                line: w.comment_line,
                snippet: "waiver must be `xlint: allow(<lint>) -- <reason>`".to_string(),
                waived: false,
                reason: String::new(),
            });
        } else if !used[wi] {
            findings.push(Finding {
                lint: Lint::UnusedWaiver,
                file: file.path.clone(),
                line: w.comment_line,
                snippet: format!("waiver for {} suppressed nothing", w.lints.join(", ")),
                waived: false,
                reason: String::new(),
            });
        }
    }
}

/// Sorts findings into the canonical (file, line, lint) order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (&a.file, a.line, a.lint.name()).cmp(&(&b.file, b.line, b.lint.name())));
}
