//! The repo-specific lints. Each pass walks a [`SourceFile`]'s code
//! channel and emits [`Finding`]s; waiver application happens afterwards
//! in [`crate::report`].

use crate::scan::SourceFile;

/// The lints the analyzer knows, by stable kebab-case name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test library code.
    PanicFreedom,
    /// `unwrap`/`expect` directly on a fallible `PageStore`/`Wal`-style
    /// I/O call.
    IoFallibility,
    /// Taking a pool shard latch while a backend `RwLock` guard is live
    /// (inverts the strict shard → backend order).
    LockOrder,
    /// An atomic `Ordering::…` use without a nearby `// ordering:`
    /// justification comment.
    AtomicsJustification,
    /// Public item without rustdoc.
    DocCoverage,
    /// A waiver comment that suppressed nothing.
    UnusedWaiver,
    /// A waiver comment missing its `-- reason` or unparsable.
    MalformedWaiver,
}

impl Lint {
    /// Stable name used in waivers, reports and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Lint::PanicFreedom => "panic-freedom",
            Lint::IoFallibility => "io-fallibility",
            Lint::LockOrder => "lock-order",
            Lint::AtomicsJustification => "atomics-justification",
            Lint::DocCoverage => "doc-coverage",
            Lint::UnusedWaiver => "unused-waiver",
            Lint::MalformedWaiver => "malformed-waiver",
        }
    }

    /// Every waivable lint (the waiver-hygiene lints cannot be waived).
    pub fn waivable() -> &'static [Lint] {
        &[
            Lint::PanicFreedom,
            Lint::IoFallibility,
            Lint::LockOrder,
            Lint::AtomicsJustification,
            Lint::DocCoverage,
        ]
    }
}

/// Which lints run on a scanned directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintSet {
    /// Run `panic-freedom`.
    pub panic_freedom: bool,
    /// Run `io-fallibility`.
    pub io_fallibility: bool,
    /// Run `lock-order`.
    pub lock_order: bool,
    /// Run `atomics-justification`.
    pub atomics: bool,
    /// Run `doc-coverage`.
    pub doc_coverage: bool,
}

impl LintSet {
    /// Every lint enabled.
    pub fn all() -> Self {
        Self {
            panic_freedom: true,
            io_fallibility: true,
            lock_order: true,
            atomics: true,
            doc_coverage: true,
        }
    }
}

/// One raw finding (waiver state filled in later).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint that fired.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source excerpt.
    pub snippet: String,
    /// Set during waiver application.
    pub waived: bool,
    /// Waiver reason when waived.
    pub reason: String,
}

fn finding(lint: Lint, file: &SourceFile, line: usize, detail: &str) -> Finding {
    let raw = file
        .lines
        .get(line - 1)
        .map(|l| l.code.trim())
        .unwrap_or_default();
    let snippet = if detail.is_empty() {
        truncate(raw)
    } else {
        format!("{detail}: {}", truncate(raw))
    };
    Finding {
        lint,
        file: file.path.clone(),
        line,
        snippet,
        waived: false,
        reason: String::new(),
    }
}

fn truncate(s: &str) -> String {
    if s.len() > 90 {
        let mut end = 90;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    } else {
        s.to_string()
    }
}

/// Runs the enabled lints over one file.
pub fn run_all(file: &SourceFile, set: LintSet, out: &mut Vec<Finding>) {
    if set.panic_freedom {
        panic_freedom(file, out);
    }
    if set.io_fallibility {
        io_fallibility(file, out);
    }
    if set.lock_order {
        lock_order(file, out);
    }
    if set.atomics {
        atomics_justification(file, out);
    }
    if set.doc_coverage {
        doc_coverage(file, out);
    }
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn panic_freedom(file: &SourceFile, out: &mut Vec<Finding>) {
    for (n, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if line.code.contains(tok) {
                out.push(finding(Lint::PanicFreedom, file, n, tok));
                break; // one finding per line
            }
        }
    }
}

/// Calls whose `io::Result` must not be unwrapped: the `PageStore`
/// surface, the WAL, and the commit protocol built on them.
const IO_TOKENS: &[&str] = &[
    "read_into(",
    "peek_into(",
    "read_page(",
    "peek_page(",
    ".allocate()",
    ".flush()",
    ".sync()",
    ".commit(",
    ".checkpoint(",
    ".append_image(",
    ".append_alloc(",
    ".append_release(",
    ".append_meta(",
    ".apply_through(",
    ".write_back(",
    ".recover(",
    ".truncate_log(",
    ".try_stats()",
];

fn has_io_call(code: &str) -> bool {
    if IO_TOKENS.iter().any(|t| code.contains(t)) {
        return true;
    }
    // `.write(` with arguments is a page write; `.write()` is an RwLock
    // acquisition and not I/O.
    code.match_indices(".write(")
        .any(|(i, _)| code.as_bytes().get(i + 7) != Some(&b')'))
}

fn io_fallibility(file: &SourceFile, out: &mut Vec<Finding>) {
    for (n, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if !(code.contains(".unwrap()") || code.contains(".expect(")) {
            continue;
        }
        // The unwrapped receiver may sit on this line or, for chained
        // calls broken across lines, a couple of lines above.
        let mut is_io = has_io_call(code);
        if !is_io && code.trim_start().starts_with('.') {
            for back in 1..=3usize {
                let Some(prev) = n.checked_sub(back + 1).and_then(|i| file.lines.get(i)) else {
                    break;
                };
                if has_io_call(&prev.code) {
                    is_io = true;
                    break;
                }
                if prev.code.trim_end().ends_with(';') {
                    break; // previous statement — stop the walk
                }
            }
        }
        if is_io {
            out.push(finding(
                Lint::IoFallibility,
                file,
                n,
                "unwrap on io::Result",
            ));
        }
    }
}

/// Backend RwLock acquisition (the *second* lock in the shard → backend
/// protocol).
fn backend_acquisition(code: &str) -> Option<usize> {
    for tok in [
        "read_lock(",
        "write_lock(",
        "backend.read()",
        "backend.write()",
    ] {
        if let Some(i) = code.find(tok) {
            // `read_lock(` must not match inside `spread_lock(` etc.
            let ok = i == 0 || {
                let prev = code.as_bytes()[i - 1];
                !prev.is_ascii_alphanumeric() && prev != b'_'
            };
            if ok {
                return Some(i);
            }
        }
    }
    None
}

/// Shard latch acquisition: `lock(…shard…)` or `…shard….lock()`.
fn shard_acquisition(code: &str) -> Option<usize> {
    for (i, _) in code.match_indices("lock(") {
        let standalone = i == 0 || {
            let prev = code.as_bytes()[i - 1];
            !prev.is_ascii_alphanumeric() && prev != b'_' && prev != b'.'
        };
        let arg = &code[i + 5..];
        if standalone && arg.contains("shard") {
            return Some(i);
        }
    }
    for (i, _) in code.match_indices(".lock()") {
        if code[..i].contains("shard") {
            return Some(i);
        }
    }
    None
}

fn lock_order(file: &SourceFile, out: &mut Vec<Finding>) {
    // (variable name, depth the binding lives at)
    let mut live_backend: Vec<(String, usize)> = Vec::new();
    for (n, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        // Scope exits kill bindings from deeper blocks.
        live_backend.retain(|(_, d)| *d <= line.depth_before);
        // Explicit drops.
        if let Some(i) = code.find("drop(") {
            let arg: String = code[i + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            live_backend.retain(|(v, _)| *v != arg);
        }

        let backend_at = backend_acquisition(code);
        if let Some(shard_at) = shard_acquisition(code) {
            let inline_inversion = backend_at.is_some_and(|b| b < shard_at);
            if !live_backend.is_empty() || inline_inversion {
                out.push(finding(
                    Lint::LockOrder,
                    file,
                    n,
                    "shard latch taken while a backend guard is live",
                ));
            }
        }

        // A `let`-bound backend guard stays live to the end of its block.
        if backend_at.is_some() {
            let trimmed = code.trim_start();
            if let Some(rest) = trimmed.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let var: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !var.is_empty() && var != "_" {
                    live_backend.push((var, line.depth_before));
                }
            }
        }
    }
}

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn atomics_justification(file: &SourceFile, out: &mut Vec<Finding>) {
    for (n, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        if !ATOMIC_ORDERINGS.iter().any(|t| line.code.contains(t)) {
            continue;
        }
        if line.comment.contains("ordering:") {
            continue;
        }
        // Walk upward over the contiguous run of atomic uses, comments
        // and attributes that a single justification comment covers.
        let mut justified = false;
        let mut idx = n - 1; // 0-based index of current line
        while idx > 0 {
            idx -= 1;
            let prev = &file.lines[idx];
            if prev.comment.contains("ordering:") {
                justified = true;
                break;
            }
            let code = prev.code.trim();
            let continues = code.is_empty()
                || code.starts_with("#[")
                || ATOMIC_ORDERINGS.iter().any(|t| code.contains(t))
                || !prev.comment.trim().is_empty();
            if !continues {
                break;
            }
        }
        if !justified {
            out.push(finding(
                Lint::AtomicsJustification,
                file,
                n,
                "atomic Ordering without `// ordering:` justification",
            ));
        }
    }
}

const DOC_ITEM_PREFIXES: &[&str] = &[
    "pub fn ",
    "pub const fn ",
    "pub async fn ",
    "pub unsafe fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub mod ",
    "pub union ",
];

fn doc_item(code: &str) -> bool {
    let t = code.trim_start();
    // `pub mod x;` re-exports a file module that carries its own `//!`
    // docs (rustdoc agrees: missing_docs does not fire on it); only the
    // inline `pub mod x { … }` form needs docs at the declaration.
    if t.starts_with("pub mod ") && t.trim_end().ends_with(';') {
        return false;
    }
    DOC_ITEM_PREFIXES.iter().any(|p| t.starts_with(p))
}

fn doc_coverage(file: &SourceFile, out: &mut Vec<Finding>) {
    // Depth-0 block context: does depth 1 belong to an inherent impl?
    let mut inherent_impl = false;
    for (n, line) in file.numbered() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if line.depth_before == 0 && code.starts_with("impl") {
            inherent_impl = !code.contains(" for ");
        }
        let at_module_level = line.depth_before == 0;
        let at_inherent_method = line.depth_before == 1 && inherent_impl;
        if !(at_module_level || at_inherent_method) || !doc_item(code) {
            continue;
        }
        // Walk up over attributes to the first meaningful line; it must
        // be a doc comment.
        let mut documented = false;
        let mut idx = n - 1;
        while idx > 0 {
            idx -= 1;
            let prev = &file.lines[idx];
            let pc = prev.code.trim();
            let comment = prev.comment.trim();
            // `//!` is deliberately absent: an inner doc comment documents
            // the enclosing module, not the item that happens to follow it.
            if comment.starts_with("///") || pc.starts_with("#[doc") {
                documented = true;
                break;
            }
            // Attributes (possibly multi-line) and blank lines between the
            // docs and the item are fine; plain `//` comments count as
            // documentation intent — rustdoc coverage proper is enforced
            // by `#![warn(missing_docs)]`.
            let continues = pc.is_empty() && comment.is_empty()
                || pc.starts_with("#[")
                || pc.ends_with(")]")
                || !comment.is_empty();
            if !continues {
                break;
            }
        }
        if !documented {
            out.push(finding(
                Lint::DocCoverage,
                file,
                n,
                "public item without rustdoc",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("t.rs", src);
        let mut out = Vec::new();
        run_all(&f, LintSet::all(), &mut out);
        out
    }

    fn count(findings: &[Finding], lint: Lint) -> usize {
        findings.iter().filter(|f| f.lint == lint).count()
    }

    #[test]
    fn panic_tokens_fire_outside_tests_only() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let f = run(src);
        assert_eq!(count(&f, Lint::PanicFreedom), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let f = run("fn a() { x.unwrap_or(1); y.unwrap_or_else(|| 2); z.unwrap_or_default(); }\n");
        assert_eq!(count(&f, Lint::PanicFreedom), 0);
    }

    #[test]
    fn io_unwrap_fires_including_chained_next_line() {
        let src = "fn a(s: &S) {\n    s.read_into(id, &mut buf).unwrap();\n    s.write(id, data)\n        .expect(\"boom\");\n    lk.write().unwrap();\n}\n";
        let f = run(src);
        assert_eq!(count(&f, Lint::IoFallibility), 2, "{f:?}");
    }

    #[test]
    fn lock_order_inversion_is_flagged() {
        let src = "fn bad(&self) {\n    let g = read_lock(&self.backend);\n    let s = lock(self.shard(id));\n}\nfn good(&self) {\n    let s = lock(self.shard(id));\n    let g = read_lock(&self.backend);\n}\n";
        let f = run(src);
        assert_eq!(count(&f, Lint::LockOrder), 1);
        assert_eq!(
            f.iter().find(|x| x.lint == Lint::LockOrder).map(|x| x.line),
            Some(3)
        );
    }

    #[test]
    fn lock_order_respects_scope_exit_and_drop() {
        let src = "fn ok(&self) {\n    {\n        let g = write_lock(&self.backend);\n    }\n    let s = lock(self.shard(id));\n}\nfn ok2(&self) {\n    let g = write_lock(&self.backend);\n    drop(g);\n    let s = lock(self.shard(id));\n}\n";
        let f = run(src);
        assert_eq!(count(&f, Lint::LockOrder), 0, "{f:?}");
    }

    #[test]
    fn atomics_need_ordering_comment() {
        let src = "fn a(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    // ordering: Relaxed — independent counter.\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Relaxed);\n}\n";
        let f = run(src);
        // Line 2 is unjustified; lines 4–5 share the comment above them.
        assert_eq!(count(&f, Lint::AtomicsJustification), 1);
        assert_eq!(
            f.iter()
                .find(|x| x.lint == Lint::AtomicsJustification)
                .map(|x| x.line),
            Some(2)
        );
    }

    #[test]
    fn doc_coverage_flags_undocumented_public_items() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\nimpl Foo {\n    pub fn m(&self) {}\n}\nimpl Bar for Foo {\n    pub fn t(&self) {}\n}\n";
        let f = run(src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.lint == Lint::DocCoverage)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![3, 5], "{f:?}");
    }
}
