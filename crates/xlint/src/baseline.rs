//! The ratchet baseline: the committed, frozen set of *waived* findings.
//!
//! The contract, enforced in CI:
//!
//! * **Active** (unwaived) findings are always violations — the baseline
//!   cannot absorb them.
//! * Waived findings are compared per `(lint, file)` against the
//!   baseline counts. More waivers than the baseline records means the
//!   waiver set grew — a violation until `LINT_BASELINE.json` is
//!   regenerated *deliberately* (and reviewed). Fewer means the baseline
//!   can shrink; the checker points it out but stays green.
//!
//! The file format is a tiny, fully-sorted JSON document; this module
//! also carries the minimal JSON reader for it (the crate is
//! dependency-free by design — no serde in the build environment).

use crate::report::{json_str, Report};
use std::collections::BTreeMap;

/// Parsed `LINT_BASELINE.json`: waived-finding counts per (lint, file).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(lint name, file) → frozen waiver count`.
    pub waived: BTreeMap<(String, String), u64>,
}

/// Outcome of a ratchet check.
#[derive(Debug)]
pub struct RatchetOutcome {
    /// Violations: active findings and waiver-set growth. Non-empty ⇒ CI fails.
    pub violations: Vec<String>,
    /// Entries where the live tree has fewer waivers than the baseline.
    pub shrinkable: Vec<String>,
}

impl Baseline {
    /// Collects the waived counts of `report` into baseline form.
    pub fn from_report(report: &Report) -> Self {
        let mut waived: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in report.waived() {
            *waived
                .entry((f.lint.name().to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Self { waived }
    }

    /// Serializes to the committed JSON format (sorted, stable).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"waived\": [\n");
        let n = self.waived.len();
        for (i, ((lint, file), count)) in self.waived.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"count\": {}}}{}\n",
                json_str(lint),
                json_str(file),
                count,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the committed JSON format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let entries = obj
            .get("waived")
            .and_then(Json::as_array)
            .ok_or("baseline must have a \"waived\" array")?;
        let mut waived = BTreeMap::new();
        for e in entries {
            let eo = e.as_object().ok_or("waived entries must be objects")?;
            let lint = eo
                .get("lint")
                .and_then(Json::as_str)
                .ok_or("entry missing \"lint\"")?;
            let file = eo
                .get("file")
                .and_then(Json::as_str)
                .ok_or("entry missing \"file\"")?;
            let count = eo
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("entry missing \"count\"")?;
            waived.insert((lint.to_string(), file.to_string()), count);
        }
        Ok(Self { waived })
    }

    /// The ratchet: compares a live report against this baseline.
    pub fn check(&self, report: &Report) -> RatchetOutcome {
        let mut violations = Vec::new();
        for f in report.active() {
            violations.push(format!(
                "{}:{}: [{}] {}",
                f.file,
                f.line,
                f.lint.name(),
                f.snippet
            ));
        }
        let live = Baseline::from_report(report);
        let mut shrinkable = Vec::new();
        for (key, &count) in &live.waived {
            let frozen = self.waived.get(key).copied().unwrap_or(0);
            if count > frozen {
                violations.push(format!(
                    "{}: waiver set grew for [{}]: {count} waived, baseline froze {frozen} — \
                     fix the new site or regenerate LINT_BASELINE.json deliberately",
                    key.1, key.0
                ));
            } else if count < frozen {
                shrinkable.push(format!(
                    "{}: [{}] {frozen} → {count} — baseline can shrink",
                    key.1, key.0
                ));
            }
        }
        for (key, &frozen) in &self.waived {
            if !live.waived.contains_key(key) {
                shrinkable.push(format!(
                    "{}: [{}] {frozen} → 0 — baseline can shrink",
                    key.1, key.0
                ));
            }
        }
        RatchetOutcome {
            violations,
            shrinkable,
        }
    }
}

/// The minimal JSON value model the baseline reader needs.
#[derive(Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numbers (unsigned integers only — all the format uses).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => {
            expect_lit(b, pos, "true")?;
            Ok(Json::Bool(true))
        }
        Some(b'f') => {
            expect_lit(b, pos, "false")?;
            Ok(Json::Bool(false))
        }
        Some(b'n') => {
            expect_lit(b, pos, "null")?;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "bad utf-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        let ch = char::from_u32(hex).ok_or("bad \\u codepoint")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            _ => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::default();
        b.waived
            .insert(("panic-freedom".into(), "crates/core/src/a.rs".into()), 3);
        b.waived
            .insert(("lock-order".into(), "crates/store/src/b.rs".into()), 1);
        let text = b.to_json();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, "x\"y", {"b": true}], "c": null}"#).unwrap();
        let o = v.as_object().unwrap();
        let arr = o.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_str(), Some("x\"y"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
    }
}
