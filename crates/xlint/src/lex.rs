//! A minimal line lexer: splits Rust source into a *code* channel and a
//! *comment* channel per line, with string/char literal contents masked
//! out of the code channel.
//!
//! The analyzer never parses Rust properly (no `syn` — the build
//! environment is offline); every lint works on these two channels, so a
//! `".unwrap()"` inside a string literal or a `panic!` inside a comment
//! can never produce a finding. The lexer understands line comments
//! (`//`, `///`, `//!`), nested block comments, plain/byte strings with
//! escapes, raw strings with any `#` count, char/byte literals, and
//! keeps lifetimes (`'a`) in the code channel.

/// One source line split into channels. Masked literal contents are
/// replaced by spaces so byte offsets keep lining up with the original.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// Code with string/char contents blanked and comments removed.
    pub code: String,
    /// Concatenated comment text of the line, comment markers included.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Lexes a whole file into per-line channel views.
pub fn lex(source: &str) -> Vec<LineView> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    for line in source.split('\n') {
        let (view, next) = lex_line(line, state);
        state = match next {
            // Line comments never cross lines.
            State::LineComment => State::Normal,
            s => s,
        };
        out.push(view);
    }
    out
}

fn lex_line(line: &str, mut state: State) -> (LineView, State) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        match state {
            State::LineComment => {
                comment.push_str(&line[i..]);
                i = bytes.len();
            }
            State::BlockComment(depth) => {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 {
                        code.push(' ');
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else {
                    comment.push(line[i..].chars().next().map_or(' ', |c| c));
                    i += utf8_len(bytes[i]);
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if bytes[i] == b'\\' {
                        code.push_str("  ");
                        i += 2.min(bytes.len() - i);
                    } else if bytes[i] == b'"' {
                        code.push('"');
                        i += 1;
                        state = State::Normal;
                    } else {
                        code.push(' ');
                        i += utf8_len(bytes[i]);
                    }
                }
                Some(h) => {
                    if bytes[i] == b'"' && closes_raw(&bytes[i + 1..], h) {
                        code.push('"');
                        for _ in 0..h {
                            code.push('#');
                        }
                        i += 1 + h as usize;
                        state = State::Normal;
                    } else {
                        code.push(' ');
                        i += utf8_len(bytes[i]);
                    }
                }
            },
            State::Char => {
                if bytes[i] == b'\\' {
                    code.push_str("  ");
                    i += 2.min(bytes.len() - i);
                } else if bytes[i] == b'\'' {
                    code.push('\'');
                    i += 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += utf8_len(bytes[i]);
                }
            }
            State::Normal => {
                let c = bytes[i];
                if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    state = State::LineComment;
                } else if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == b'"' {
                    code.push('"');
                    i += 1;
                    state = State::Str { raw_hashes: None };
                } else if let Some((h, opener_len)) = raw_string_open(bytes, i) {
                    for _ in 0..opener_len {
                        code.push(' ');
                    }
                    code.push('"');
                    i += opener_len + 1; // prefix + opening quote
                    state = State::Str {
                        raw_hashes: Some(h),
                    };
                } else if c == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                    code.push_str("b\"");
                    i += 2;
                    state = State::Str { raw_hashes: None };
                } else if c == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                    code.push_str("b'");
                    i += 2;
                    state = State::Char;
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote one (possibly escaped) character later.
                    if is_char_literal(bytes, i) {
                        code.push('\'');
                        i += 1;
                        state = State::Char;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(line[i..].chars().next().map_or(' ', |ch| ch));
                    i += utf8_len(c);
                }
            }
        }
    }
    (LineView { code, comment }, state)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b & 0b1110_0000 == 0b1100_0000 => 2,
        b if b & 0b1111_0000 == 0b1110_0000 => 3,
        b if b & 0b1111_1000 == 0b1111_0000 => 4,
        _ => 1,
    }
}

/// `r"` / `r#"` / `br#"` opener at `i`? Returns `(hash_count,
/// prefix_len)` where the prefix is everything before the opening quote.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(u32, usize)> {
    let start = if bytes[i] == b'b' { i + 1 } else { i };
    if bytes.get(start) != Some(&b'r') {
        return None;
    }
    // Reject identifiers ending in r/br ("for r" vs "var(" etc.): the
    // char before must not be alphanumeric or '_'.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut h = 0u32;
    let mut j = start + 1;
    while bytes.get(j) == Some(&b'#') {
        h += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((h, j - i))
    } else {
        None
    }
}

fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    rest.len() >= h && rest[..h].iter().all(|&b| b == b'#')
}

fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // 'x' or '\n' or '\u{..}' — find a closing quote within a short
    // window; lifetimes ('a, 'static) have no closing quote nearby
    // followed by non-identifier context.
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_masked() {
        let c = code_of(r#"let x = foo(".unwrap()");"#);
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("let x = foo("));
    }

    #[test]
    fn comments_go_to_the_comment_channel() {
        let v = lex("a(); // xlint: allow(panic-freedom) -- fine");
        assert_eq!(v[0].code.trim(), "a();");
        assert!(v[0].comment.contains("xlint: allow(panic-freedom)"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let v = lex("a /* c /* d */ still */ b\nx /* open\nclose */ y");
        assert!(v[0].code.contains('a') && v[0].code.contains('b'));
        assert!(!v[0].code.contains("still"));
        assert!(v[1].code.contains('x') && !v[1].code.contains("open"));
        assert!(v[2].code.contains('y') && !v[2].code.contains("close"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = code_of("let s = r#\"panic!(\"inner\")\"#; t()");
        assert!(!c[0].contains("panic!"));
        assert!(c[0].contains("t()"));
        let c = code_of(r#"let s = "a\"b.unwrap()"; u()"#);
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("u()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let c = code_of("fn f<'a>(x: &'a str, c: char) { if c == '}' { } }");
        assert!(c[0].contains("<'a>"));
        assert!(!c[0].contains("'}'"));
        // The masked brace must not skew depth counting.
        let opens = c[0].matches('{').count();
        let closes = c[0].matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn multiline_strings_mask_across_lines() {
        let c = code_of("let s = \"line one\ntodo!() two\";\nafter()");
        assert!(!c[1].contains("todo!"));
        assert!(c[2].contains("after()"));
    }
}
