//! Workspace scanning: which directories are analyzed and with which
//! lints enabled.

use crate::lints::{run_all, LintSet};
use crate::report::{apply_waivers, sort_findings, Report};
use crate::scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned directory tree and the lints that apply to it.
#[derive(Debug, Clone)]
pub struct Target {
    /// Workspace-relative directory, `/`-separated (e.g. `crates/core/src`).
    pub dir: String,
    /// Enabled lints.
    pub lints: LintSet,
}

/// What to scan.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Scanned directory trees.
    pub targets: Vec<Target>,
}

impl ScanConfig {
    /// The repo's committed configuration.
    ///
    /// * `panic-freedom`, `lock-order` and `atomics-justification` run on
    ///   every library crate (the bench harness, examples and the offline
    ///   shim crates are exempt: they are not serving-path code).
    /// * `io-fallibility` runs where `PageStore`/`Wal` calls live:
    ///   `store`, `rstar` and `core`.
    /// * `doc-coverage` runs on the crates whose rustdoc is the public
    ///   API surface: `core`, `store`, `pdf`.
    pub fn workspace() -> Self {
        let lib = |dir: &str, io: bool, doc: bool| Target {
            dir: dir.to_string(),
            lints: LintSet {
                panic_freedom: true,
                io_fallibility: io,
                lock_order: true,
                atomics: true,
                doc_coverage: doc,
            },
        };
        Self {
            targets: vec![
                lib("crates/geom/src", false, false),
                lib("crates/pdf/src", false, true),
                lib("crates/lp/src", false, false),
                lib("crates/store/src", true, true),
                lib("crates/rstar/src", true, false),
                lib("crates/core/src", true, true),
                lib("crates/datagen/src", false, false),
                lib("crates/xlint/src", false, false),
                lib("src", false, false),
            ],
        }
    }

    /// Every lint on a single directory — what the fixture tests use.
    pub fn all_lints_in(dir: &str) -> Self {
        Self {
            targets: vec![Target {
                dir: dir.to_string(),
                lints: LintSet::all(),
            }],
        }
    }
}

/// Runs the analyzer over `root` with `config`.
pub fn analyze(root: &Path, config: &ScanConfig) -> io::Result<Report> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for target in &config.targets {
        let dir = root.join(&target.dir);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("scan target `{}` is not a directory", target.dir),
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let source = fs::read_to_string(&path)?;
            let rel = relative(root, &path);
            let parsed = SourceFile::parse(&rel, &source);
            let mut file_findings = Vec::new();
            run_all(&parsed, target.lints, &mut file_findings);
            apply_waivers(&parsed, &mut file_findings);
            findings.extend(file_findings);
            files_scanned += 1;
        }
    }
    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files_scanned,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
