//! Fixture-driven integration tests: every lint fires on its seeded
//! violations with exact counts, waivers suppress exactly what they name,
//! the JSON report is stable, and the live workspace matches the
//! committed `LINT_BASELINE.json` ratchet.

use std::path::{Path, PathBuf};
use xlint::{analyze, Baseline, Finding, Lint, Report, ScanConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn count(report: &Report, file: &str, lint: Lint, waived: bool) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.file == file && f.lint == lint && f.waived == waived)
        .count()
}

#[test]
fn panic_freedom_fires_on_each_macro_and_skips_tests_and_strings() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("violations")).unwrap();
    let file = "violations/panics.rs";
    assert_eq!(
        count(&r, file, Lint::PanicFreedom, false),
        5,
        "unwrap, expect, panic!, unreachable!, todo! — one each:\n{}",
        r.to_json()
    );
    // Nothing from the #[cfg(test)] module or the masked string literal:
    // the five findings all sit before the test module starts.
    let last = r
        .findings
        .iter()
        .filter(|f| f.file == file && f.lint == Lint::PanicFreedom)
        .map(|f| f.line)
        .max()
        .unwrap();
    assert!(last < 32, "a finding leaked past the library code: {last}");
}

#[test]
fn io_fallibility_flags_store_calls_including_chains() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("violations")).unwrap();
    let file = "violations/io.rs";
    // read_into same-line, write( chained across lines, allocate():
    assert_eq!(
        count(&r, file, Lint::IoFallibility, false),
        3,
        "{}",
        r.to_json()
    );
    // All four unwrap/expect sites are also panic-freedom findings
    // (including the RwLock `.write()` one, which is NOT I/O).
    assert_eq!(count(&r, file, Lint::PanicFreedom, false), 4);
}

#[test]
fn lock_order_flags_shard_after_backend_only() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("violations")).unwrap();
    let file = "violations/locks.rs";
    let findings: Vec<&Finding> = r
        .findings
        .iter()
        .filter(|f| f.file == file && f.lint == Lint::LockOrder)
        .collect();
    assert_eq!(
        findings.len(),
        2,
        "wrong_order and wrong_order_via_read only:\n{}",
        r.to_json()
    );
    assert!(findings.iter().all(|f| !f.waived));
    // The legal shard→backend order and the dropped-guard case are clean:
    // both violations sit in the first two functions.
    assert!(findings.iter().all(|f| f.line < 15), "{findings:?}");
}

#[test]
fn atomics_need_an_ordering_comment_nearby() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("violations")).unwrap();
    let file = "violations/atomics.rs";
    let lines: Vec<usize> = r
        .findings
        .iter()
        .filter(|f| f.file == file && f.lint == Lint::AtomicsJustification)
        .map(|f| f.line)
        .collect();
    // `unjustified` and `second_unjustified`; the same-line, above-line
    // and shared-contiguous-block comments all satisfy the lint.
    assert_eq!(lines.len(), 2, "{}", r.to_json());
}

#[test]
fn doc_coverage_flags_undocumented_public_items() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("violations")).unwrap();
    let file = "violations/docs.rs";
    // Undocumented struct, undocumented free fn, undocumented inherent
    // method; private and pub(crate) items are exempt.
    assert_eq!(
        count(&r, file, Lint::DocCoverage, false),
        3,
        "{}",
        r.to_json()
    );
}

#[test]
fn waivers_suppress_exactly_what_they_name() {
    let r = analyze(&fixture_root(), &ScanConfig::all_lints_in("waivers")).unwrap();
    let file = "waivers/waived.rs";
    // Standalone, trailing, and the two-lint waiver; the two-lint line
    // yields one panic-freedom and one io-fallibility finding, both waived.
    assert_eq!(count(&r, file, Lint::PanicFreedom, true), 3);
    assert_eq!(count(&r, file, Lint::IoFallibility, true), 1);
    // The malformed waiver suppresses nothing and is itself reported;
    // `not_waived` stays active.
    assert_eq!(count(&r, file, Lint::PanicFreedom, false), 2);
    assert_eq!(count(&r, file, Lint::MalformedWaiver, false), 1);
    assert_eq!(count(&r, file, Lint::UnusedWaiver, false), 1);
    // Every waived finding carries its reason.
    assert!(r.waived().all(|f| !f.reason.is_empty()));
}

#[test]
fn json_report_is_stable_and_sorted() {
    let root = fixture_root();
    let a = analyze(&root, &ScanConfig::all_lints_in("violations")).unwrap();
    let b = analyze(&root, &ScanConfig::all_lints_in("violations")).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "repeat runs must be byte-identical"
    );
    let keys: Vec<(String, usize, &str)> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint.name()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out in canonical order");
    assert!(a.to_json().contains("\"summary\""));
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xlint lives two levels under the workspace root")
        .to_path_buf()
}

/// The tree as committed carries zero active findings and matches the
/// frozen baseline — the same gate CI runs.
#[test]
fn live_workspace_matches_committed_baseline() {
    let root = workspace_root();
    let report = analyze(&root, &ScanConfig::workspace()).unwrap();
    let active: Vec<String> = report
        .active()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.lint.name(), f.snippet))
        .collect();
    assert!(active.is_empty(), "active findings:\n{}", active.join("\n"));

    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json")).unwrap();
    let baseline = Baseline::parse(&text).unwrap();
    let outcome = baseline.check(&report);
    assert!(
        outcome.violations.is_empty(),
        "ratchet violations:\n{}",
        outcome.violations.join("\n")
    );
}

/// A fresh unwrap in a store file fails the ratchet even though the file
/// already has baselined waivers — active findings are never absorbed.
#[test]
fn ratchet_fails_on_a_fresh_unwrap() {
    let root = workspace_root();
    let mut report = analyze(&root, &ScanConfig::workspace()).unwrap();
    report.findings.push(Finding {
        lint: Lint::PanicFreedom,
        file: "crates/store/src/disk.rs".to_string(),
        line: 1,
        snippet: ".unwrap(): simulated fresh violation".to_string(),
        waived: false,
        reason: String::new(),
    });
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json")).unwrap();
    let baseline = Baseline::parse(&text).unwrap();
    let outcome = baseline.check(&report);
    assert_eq!(outcome.violations.len(), 1);
    assert!(outcome.violations[0].contains("disk.rs"));
}

/// Growing the waiver set (one more waived finding than frozen) also
/// fails until the baseline is regenerated deliberately.
#[test]
fn ratchet_fails_on_waiver_growth() {
    let root = workspace_root();
    let mut report = analyze(&root, &ScanConfig::workspace()).unwrap();
    report.findings.push(Finding {
        lint: Lint::PanicFreedom,
        file: "crates/store/src/disk.rs".to_string(),
        line: 1,
        snippet: ".unwrap(): simulated new waived site".to_string(),
        waived: true,
        reason: "simulated".to_string(),
    });
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json")).unwrap();
    let baseline = Baseline::parse(&text).unwrap();
    let outcome = baseline.check(&report);
    assert_eq!(outcome.violations.len(), 1, "{:?}", outcome.violations);
    assert!(outcome.violations[0].contains("waiver set grew"));
}

/// Removing a waiver only produces a (non-fatal) shrink note.
#[test]
fn ratchet_notes_shrinkage_without_failing() {
    let root = workspace_root();
    let report = analyze(&root, &ScanConfig::workspace()).unwrap();
    let mut baseline =
        Baseline::parse(&std::fs::read_to_string(root.join("LINT_BASELINE.json")).unwrap())
            .unwrap();
    // Pretend the baseline froze one more waiver than the tree has.
    let key = (
        "panic-freedom".to_string(),
        "crates/store/src/disk.rs".to_string(),
    );
    *baseline.waived.entry(key).or_insert(0) += 1;
    let outcome = baseline.check(&report);
    assert!(outcome.violations.is_empty());
    assert!(!outcome.shrinkable.is_empty());
}
