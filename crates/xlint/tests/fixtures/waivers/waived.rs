//! Fixture: waiver syntax — well-formed, malformed, multi-lint, unused.

pub fn waived_standalone() -> u32 {
    let v: Option<u32> = Some(1);
    // xlint: allow(panic-freedom) -- fixture: value constructed above
    v.unwrap()
}

pub fn waived_trailing(v: Option<u32>) -> u32 {
    v.expect("fixture") // xlint: allow(panic-freedom) -- fixture: caller contract
}

pub fn waived_two_lints(store: &mut S, page: u64, buf: &mut [u8; 4096]) {
    // xlint: allow(panic-freedom, io-fallibility) -- fixture: in-memory store
    store.read_into(page, buf).unwrap();
}

pub fn malformed_missing_reason() -> u32 {
    let v: Option<u32> = Some(1);
    // xlint: allow(panic-freedom)
    v.unwrap()
}

pub fn unused_waiver_spot() -> u32 {
    // xlint: allow(panic-freedom) -- fixture: nothing to waive here
    1 + 1
}

pub fn not_waived() -> u32 {
    let v: Option<u32> = Some(2);
    v.unwrap()
}
