//! Fixture: panic-freedom violations in library code, none in test code.

pub fn one() -> u32 {
    let v: Option<u32> = Some(1);
    v.unwrap()
}

pub fn two() -> u32 {
    let v: Option<u32> = Some(2);
    v.expect("always some")
}

pub fn three() {
    panic!("boom");
}

pub fn four(x: u8) -> u8 {
    match x {
        0 => 0,
        _ => unreachable!(),
    }
}

pub fn five() {
    todo!("later")
}

pub fn strings_do_not_count() -> &'static str {
    // Tokens inside string literals are masked by the lexer:
    "call .unwrap() and panic!(now)"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
