//! Fixture: atomic Ordering uses with and without justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn justified(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — standalone counter, no cross-thread edges needed.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn justified_same_line(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire) // ordering: Acquire pairs with the Release store below
}

pub fn contiguous_block_shares_one_comment(c: &AtomicU64) {
    // ordering: Relaxed — both stores reset independent counters.
    c.store(0, Ordering::Relaxed);
    c.store(0, Ordering::Relaxed);
}

pub fn second_unjustified(c: &AtomicU64) {
    c.store(7, Ordering::SeqCst);
}
