//! Fixture: public items with and without rustdoc.

pub struct Undocumented;

/// Documented: no finding.
pub struct Documented;

pub fn undocumented_fn() {}

/// Documented: no finding.
pub fn documented_fn() {}

/// Documented container.
pub struct Widget {
    size: u64,
}

impl Widget {
    pub fn undocumented_method(&self) -> u64 {
        self.size
    }

    /// Documented: no finding.
    pub fn documented_method(&self) -> u64 {
        self.size
    }

    fn private_method(&self) {}
}

pub(crate) fn crate_visible_is_exempt() {}
