//! Fixture: unwrap/expect on fallible PageStore/Wal-style I/O calls.

pub fn same_line(store: &mut S, page: u64, buf: &mut [u8; 4096]) {
    store.read_into(page, buf).unwrap();
}

pub fn chained_multiline(store: &mut S, page: u64, bytes: &[u8]) {
    store
        .write(page, bytes)
        .expect("short write");
}

pub fn allocation(store: &mut S) -> u64 {
    store.allocate().unwrap()
}

pub fn rwlock_write_is_not_io(l: &std::sync::RwLock<u32>) -> u32 {
    // `.write()` with no arguments is the RwLock guard, not PageStore I/O;
    // only panic-freedom fires here.
    *l.write().unwrap()
}
