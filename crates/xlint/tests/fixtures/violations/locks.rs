//! Fixture: shard latch taken while a backend guard is live (the
//! buffer-pool deadlock direction), plus the legal order.

pub fn wrong_order(&self) {
    let backend = self.backend.write_lock();
    let shard = lock(&self.shards[0].latch); // shard latch under a live backend guard
    drop(shard);
    drop(backend);
}

pub fn wrong_order_via_read(&self) {
    let guard = read_lock(&self.backend);
    let s = self.shard_for(7).lock();
    let _ = (guard, s);
}

pub fn legal_order(&self) {
    // Shard first, backend second is the documented invariant.
    let shard = lock(&self.shards[0].latch);
    let backend = self.backend.write_lock();
    drop(backend);
    drop(shard);
}

pub fn backend_guard_dropped_first(&self) {
    let backend = read_lock(&self.backend);
    drop(backend);
    let _shard = lock(&self.shards[1].latch); // fine: guard already dead
}
