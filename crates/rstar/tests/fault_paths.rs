//! Regression tests for the fallible-store (`try_*`) paths: every I/O
//! call site converted away from `unwrap()` must surface an injected
//! [`FaultStore`] error as `Err` instead of panicking.

use page_store::{FaultMode, FaultStore, PageFile};
use rstar_base::{RectLeaf, RectRStarTree};
use uncertain_geom::Rect;

type FaultTree = RectRStarTree<2, FaultStore<PageFile>>;

fn leaf(i: u64) -> RectLeaf<2> {
    let x = (i % 100) as f64 * 10.0;
    let y = (i / 100) as f64 * 10.0;
    RectLeaf {
        rect: Rect::new([x, y], [x + 5.0, y + 5.0]),
        id: i,
    }
}

/// A tree on a disarmed FaultStore behaves exactly like one on PageFile.
#[test]
fn disarmed_fault_store_is_a_clean_passthrough() {
    let store = FaultStore::new(PageFile::new(), 0, FaultMode::Fail);
    let mut tree = FaultTree::try_new_on(store).expect("disarmed store");
    for i in 0..500 {
        let l = leaf(i);
        tree.try_insert(l.rect, l.id).expect("disarmed insert");
    }
    assert_eq!(tree.len(), 500);
    let hits = tree
        .try_range(&Rect::new([0.0, 0.0], [49.0, 49.0]))
        .expect("disarmed range");
    assert!(!hits.is_empty());
    tree.inner().check_invariants().unwrap();
}

/// A write fault mid-insert surfaces as `Err` from `try_insert`, not a
/// panic — the exact regression the xlint io-fallibility conversions fix.
#[test]
fn write_fault_surfaces_from_try_insert() {
    let store = FaultStore::new(PageFile::new(), 40, FaultMode::Fail);
    let mut tree = FaultTree::try_new_on(store).expect("store healthy at build");
    let mut saw_err = false;
    for i in 0..5_000 {
        let l = leaf(i);
        if tree.try_insert(l.rect, l.id).is_err() {
            saw_err = true;
            break;
        }
    }
    assert!(saw_err, "the injected write fault must reach the caller");
    assert!(tree.inner().store().tripped());
}

/// A write fault during STR bulk construction surfaces from
/// `try_bulk_load_on` (the split.rs/bulk path).
#[test]
fn write_fault_surfaces_from_bulk_load() {
    let store = FaultStore::new(PageFile::new(), 5, FaultMode::Fail);
    let data: Vec<RectLeaf<2>> = (0..10_000).map(leaf).collect();
    let err = FaultTree::try_bulk_load_on(store, data);
    assert!(err.is_err(), "bulk build over a dying store must fail");
}

/// A torn (short) write also surfaces as an error rather than silently
/// persisting a corrupt page.
#[test]
fn short_write_surfaces_from_try_insert() {
    let store = FaultStore::new(PageFile::new(), 25, FaultMode::ShortWrite(64));
    let mut tree = FaultTree::try_new_on(store).expect("store healthy at build");
    let mut saw_err = false;
    for i in 0..5_000 {
        let l = leaf(i);
        if tree.try_insert(l.rect, l.id).is_err() {
            saw_err = true;
            break;
        }
    }
    assert!(saw_err, "the torn write must reach the caller");
}

/// `stats()` walks pages via the uncounted peek path; a read fault there
/// must come back as `Err` (this used to be an `unwrap()` inside the
/// walk).
#[test]
fn read_fault_surfaces_from_stats_walk() {
    let store = FaultStore::new(PageFile::new(), 0, FaultMode::Fail);
    let mut tree = FaultTree::try_new_on(store).expect("disarmed store");
    for i in 0..2_000 {
        let l = leaf(i);
        tree.try_insert(l.rect, l.id).expect("disarmed insert");
    }
    // Healthy store: the walk succeeds.
    let stats = tree.inner().stats().expect("healthy stats walk");
    assert!(stats.total_nodes() > 1, "tree must have split");

    // Arm the read path: the walk must propagate the error.
    tree.inner().store().arm_read_fault(1);
    assert!(
        tree.inner().stats().is_err(),
        "stats() must surface the injected read fault"
    );
    assert!(tree.inner().store().read_tripped());
}

/// A read fault during query descent surfaces from `try_range`.
#[test]
fn read_fault_surfaces_from_try_range() {
    let store = FaultStore::new(PageFile::new(), 0, FaultMode::Fail);
    let mut tree = FaultTree::try_new_on(store).expect("disarmed store");
    for i in 0..2_000 {
        let l = leaf(i);
        tree.try_insert(l.rect, l.id).expect("disarmed insert");
    }
    tree.inner().store().arm_read_fault(1);
    assert!(
        tree.try_range(&Rect::new([0.0, 0.0], [990.0, 200.0]))
            .is_err(),
        "try_range must surface the injected read fault"
    );
}
