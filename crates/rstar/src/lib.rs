//! Generic, disk-based R*-tree machinery.
//!
//! The U-tree (paper Sec 5.3) "is performed in exactly the same way as the
//! R*-tree, except that each metric is replaced with its summed
//! counterpart", and its split "is decided using the R*-split, passing all
//! the rectangles obtained in the previous step" (the entry rectangles at
//! the median U-catalog value). This crate therefore implements the R*-tree
//! (Beckmann et al., SIGMOD 1990) **once**, parameterised over:
//!
//! * a key type `K` (plain MBRs for the baseline R*-tree; `(MBR⊥, MBR̄)`
//!   pairs for the U-tree; arrays of PCRs for U-PCR), and
//! * a [`KeyMetrics`] strategy supplying area / margin / overlap / centroid
//!   distance (the summed counterparts) and the *split rectangle* proxy.
//!
//! Nodes live on 4096-byte pages of any [`page_store::PageStore`] (the
//! in-memory [`page_store::PageFile`] by default, or a disk file / buffer
//! pool); every counted node access lands in the store's
//! [`page_store::IoStats`], which is the paper's I/O metric.
//!
//! The concrete rectangle R*-tree ([`RectRStarTree`]) doubles as the
//! conventional "precise data" baseline and as the substrate's test rig.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod bulk;
mod codec;
mod metrics;
mod rect_tree;
mod split;
mod tree;

pub use bulk::str_order_by;
pub use codec::{InnerEntry, NodeCodec};
pub use metrics::{rect_covers_eps, KeyMetrics, LeafRecord};
pub use rect_tree::{RectCodec, RectLeaf, RectMetrics, RectRStarTree};
pub use split::rstar_split;
pub use tree::{RStarTreeBase, TreeConfig, TreeStats};
