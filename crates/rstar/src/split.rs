//! The R*-tree split algorithm (Beckmann et al., Sec 4.2) over plain
//! rectangles.
//!
//! The U-tree reuses this verbatim: it first materialises every entry's
//! rectangle at the median catalog value and "the entry distribution after
//! splitting is decided using the R*-split, passing all the rectangles
//! obtained in the previous step" (paper Sec 5.3).

use uncertain_geom::Rect;

/// Splits the index set `0..rects.len()` into two groups.
///
/// `min_fill` is the R* parameter m (usually 40% of capacity); both groups
/// receive at least `min_fill` entries. Returns the indices of each group.
///
/// Axis choice: minimise the sum of margins over all candidate
/// distributions of both sorts (by lower and by upper boundary).
/// Distribution choice on that axis: minimise overlap, ties by total area.
pub fn rstar_split<const D: usize>(rects: &[Rect<D>], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    assert!(n >= 2, "cannot split fewer than two entries");
    let min_fill = min_fill.max(1).min(n / 2);

    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_orders: Option<[Vec<usize>; 2]> = None;

    for axis in 0..D {
        let mut by_lower: Vec<usize> = (0..n).collect();
        by_lower.sort_by(|&a, &b| {
            rects[a].min[axis]
                .total_cmp(&rects[b].min[axis])
                .then(rects[a].max[axis].total_cmp(&rects[b].max[axis]))
        });
        let mut by_upper: Vec<usize> = (0..n).collect();
        by_upper.sort_by(|&a, &b| {
            rects[a].max[axis]
                .total_cmp(&rects[b].max[axis])
                .then(rects[a].min[axis].total_cmp(&rects[b].min[axis]))
        });
        let mut margin_sum = 0.0;
        for order in [&by_lower, &by_upper] {
            let (prefix, suffix) = prefix_suffix_bounds(rects, order);
            for k in min_fill..=(n - min_fill) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
            best_axis_orders = Some([by_lower, by_upper]);
        }
    }
    let _ = best_axis; // axis choice is realised through the retained orders
                       // xlint: allow(panic-freedom) -- invariant: D >= 1
    let orders = best_axis_orders.expect("D >= 1");

    // Pick the distribution with minimal overlap (ties: minimal area sum).
    let mut best: Option<(f64, f64, Vec<usize>, Vec<usize>)> = None;
    for order in &orders {
        let (prefix, suffix) = prefix_suffix_bounds(rects, order);
        for k in min_fill..=(n - min_fill) {
            let bb1 = &prefix[k - 1];
            let bb2 = &suffix[k];
            let ov = bb1.overlap(bb2);
            let area = bb1.area() + bb2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => ov < *bo || (ov == *bo && area < *ba),
            };
            if better {
                best = Some((ov, area, order[..k].to_vec(), order[k..].to_vec()));
            }
        }
    }
    // xlint: allow(panic-freedom) -- invariant: at least one distribution exists
    let (_, _, g1, g2) = best.expect("at least one distribution exists");
    (g1, g2)
}

/// `prefix[i]` = bound of `order[..=i]`, `suffix[i]` = bound of `order[i..]`.
fn prefix_suffix_bounds<const D: usize>(
    rects: &[Rect<D>],
    order: &[usize],
) -> (Vec<Rect<D>>, Vec<Rect<D>>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = rects[order[0]];
    prefix.push(acc);
    for &i in &order[1..] {
        acc = acc.union(&rects[i]);
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::empty(); n];
    let mut acc = rects[order[n - 1]];
    suffix[n - 1] = acc;
    for j in (0..n - 1).rev() {
        acc = acc.union(&rects[order[j]]);
        suffix[j] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_separates_two_clusters() {
        // Two clear clusters along x: the split must not mix them.
        let mut rects = Vec::new();
        for i in 0..4 {
            let x = i as f64;
            rects.push(Rect::new([x, 0.0], [x + 0.5, 1.0]));
        }
        for i in 0..4 {
            let x = 100.0 + i as f64;
            rects.push(Rect::new([x, 0.0], [x + 0.5, 1.0]));
        }
        let (g1, g2) = rstar_split(&rects, 3);
        let left: Vec<usize> = (0..4).collect();
        let mut a = g1.clone();
        a.sort_unstable();
        let mut b = g2.clone();
        b.sort_unstable();
        assert!(a == left || b == left, "clusters were mixed: {a:?} | {b:?}");
    }

    #[test]
    fn split_respects_min_fill() {
        let rects: Vec<Rect<2>> = (0..10)
            .map(|i| {
                let x = i as f64 * i as f64; // skewed spacing
                Rect::new([x, 0.0], [x + 1.0, 1.0])
            })
            .collect();
        let (g1, g2) = rstar_split(&rects, 4);
        assert!(g1.len() >= 4 && g2.len() >= 4);
        assert_eq!(g1.len() + g2.len(), 10);
        let mut all: Vec<usize> = g1.iter().chain(g2.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_chooses_the_separating_axis() {
        // Clusters separated along y; margin criterion must pick axis 1.
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(Rect::new([0.0, i as f64], [10.0, i as f64 + 0.5]));
        }
        for i in 0..5 {
            rects.push(Rect::new(
                [0.0, 1000.0 + i as f64],
                [10.0, 1000.5 + i as f64],
            ));
        }
        let (g1, g2) = rstar_split(&rects, 4);
        let bb = |g: &[usize]| {
            g.iter()
                .map(|&i| rects[i])
                .fold(Rect::empty(), |a, r| a.union(&r))
        };
        assert_eq!(bb(&g1).overlap(&bb(&g2)), 0.0, "groups must not overlap");
    }

    #[test]
    fn split_of_identical_rects_still_balances() {
        let rects: Vec<Rect<2>> = (0..6).map(|_| Rect::new([0.0, 0.0], [1.0, 1.0])).collect();
        let (g1, g2) = rstar_split(&rects, 2);
        assert!(g1.len() >= 2 && g2.len() >= 2);
        assert_eq!(g1.len() + g2.len(), 6);
    }

    #[test]
    fn three_dimensional_split() {
        let rects: Vec<Rect<3>> = (0..8)
            .map(|i| {
                let z = if i < 4 { 0.0 } else { 500.0 };
                Rect::new([i as f64, 0.0, z], [i as f64 + 1.0, 1.0, z + 1.0])
            })
            .collect();
        let (g1, g2) = rstar_split(&rects, 3);
        // z separates cleanly
        let zs: Vec<f64> = g1.iter().map(|&i| rects[i].min[2]).collect();
        assert!(
            zs.iter().all(|&z| z == zs[0]),
            "z-cluster split leaked: {zs:?}"
        );
        assert_eq!(g1.len() + g2.len(), 8);
    }
}
