//! Node serialisation.

use page_store::PageId;

/// An intermediate entry: bounding key + child page pointer.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerEntry<K> {
    /// Bounding key covering everything in the child's subtree.
    pub key: K,
    /// Page of the child node.
    pub child: PageId,
}

/// Encodes/decodes node payloads (everything after the 1-byte level tag the
/// tree writes itself) and reports the resulting fanouts.
///
/// Capacities must be derived from the *encoded entry size* against the
/// 4096-byte page — node fanout is the quantity the whole paper's
/// size/performance story hinges on (CFBs exist to keep entries small,
/// Sec 4.3).
pub trait NodeCodec<K, L> {
    /// Maximum number of leaf records per page.
    fn leaf_capacity(&self) -> usize;

    /// Maximum number of inner entries per page.
    fn inner_capacity(&self) -> usize;

    /// Serialises a leaf payload.
    fn encode_leaf(&self, entries: &[L], out: &mut Vec<u8>);

    /// Deserialises a leaf payload.
    fn decode_leaf(&self, bytes: &[u8]) -> Vec<L>;

    /// Serialises an inner payload.
    fn encode_inner(&self, entries: &[InnerEntry<K>], out: &mut Vec<u8>);

    /// Deserialises an inner payload.
    fn decode_inner(&self, bytes: &[u8]) -> Vec<InnerEntry<K>>;
}
