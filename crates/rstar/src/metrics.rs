//! The traits that make the R* machinery generic.

use uncertain_geom::Rect;

/// A bounding key stored in intermediate entries.
///
/// Implementations: `Rect<D>` (baseline R*-tree), the U-tree's
/// `(MBR⊥, MBR̄)` pair, and U-PCR's per-catalog-value rectangle array.
/// `union_with` must be associative, commutative and produce a key covering
/// both inputs (the R-tree family's bounding invariant).
pub trait KeyMetrics<const D: usize> {
    /// The bounding key type.
    type Key: Clone + std::fmt::Debug;

    /// Precomputed form of a key that makes repeated overlap evaluations
    /// cheap (ChooseSubtree computes O(fanout²) overlaps; the U-tree's
    /// summed overlap would otherwise re-interpolate `e.MBR(p_j)` for every
    /// pair).
    type OverlapProfile;

    /// Builds the overlap profile of a key.
    fn overlap_profile(&self, k: &Self::Key) -> Self::OverlapProfile;

    /// (Summed) overlap of two profiled keys; must equal
    /// [`KeyMetrics::overlap`] on the original keys.
    fn profile_overlap(&self, a: &Self::OverlapProfile, b: &Self::OverlapProfile) -> f64;

    /// In-place union: enlarge `a` to also cover `b`.
    fn union_with(&self, a: &mut Self::Key, b: &Self::Key);

    /// Convenience out-of-place union.
    fn union(&self, a: &Self::Key, b: &Self::Key) -> Self::Key {
        let mut out = a.clone();
        self.union_with(&mut out, b);
        out
    }

    /// Union over a non-empty sequence of keys.
    fn union_all<'a, I: IntoIterator<Item = &'a Self::Key>>(&self, keys: I) -> Self::Key
    where
        Self::Key: 'a,
    {
        let mut it = keys.into_iter();
        // xlint: allow(panic-freedom) -- invariant: union_all of empty sequence
        let first = it.next().expect("union_all of empty sequence");
        let mut acc = first.clone();
        for k in it {
            self.union_with(&mut acc, k);
        }
        acc
    }

    /// (Summed) area — the U-tree's `Σ_j AREA(e.MBR(p_j))`.
    fn area(&self, k: &Self::Key) -> f64;

    /// (Summed) margin — `Σ_j MARGIN(e.MBR(p_j))`.
    fn margin(&self, k: &Self::Key) -> f64;

    /// (Summed) overlap between two keys.
    fn overlap(&self, a: &Self::Key, b: &Self::Key) -> f64;

    /// (Summed) centroid distance between two keys.
    fn centroid_distance(&self, a: &Self::Key, b: &Self::Key) -> f64;

    /// The rectangle the **split** algorithm sorts and evaluates on.
    ///
    /// Sec 5.3: instead of sorting once per catalog value, the U-tree
    /// "examines only the median value p_{m/2}": the split runs the plain
    /// R*-split over `e.MBR(p_{m/2})` rectangles. The baseline R*-tree
    /// returns the key itself.
    fn split_rect(&self, k: &Self::Key) -> Rect<D>;

    /// Conservative containment test used to locate entries during
    /// deletion: must return `true` whenever `inner` (a key that was
    /// unioned into `outer` at some point) lies inside `outer`, with
    /// `tolerance` absorbing the f32 on-page rounding. False positives only
    /// cost extra node reads; false negatives would lose entries.
    fn covers(&self, outer: &Self::Key, inner: &Self::Key, tolerance: f64) -> bool;
}

/// A leaf-level record.
pub trait LeafRecord<K>: Clone + std::fmt::Debug {
    /// The bounding key this record contributes to its node.
    fn key(&self) -> K;

    /// Stable identifier (unique per tree in all our workloads).
    fn id(&self) -> u64;
}

/// Epsilon-tolerant rectangle containment shared by `covers`
/// implementations.
pub fn rect_covers_eps<const D: usize>(outer: &Rect<D>, inner: &Rect<D>, eps: f64) -> bool {
    for i in 0..D {
        if inner.min[i] < outer.min[i] - eps || inner.max[i] > outer.max[i] + eps {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_containment_absorbs_rounding() {
        let outer = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let nudged = Rect::new([-0.0005, 0.0], [10.0004, 10.0]);
        assert!(rect_covers_eps(&outer, &nudged, 1e-2));
        assert!(!rect_covers_eps(&outer, &nudged, 1e-5));
        let way_out = Rect::new([0.0, 0.0], [11.0, 10.0]);
        assert!(!rect_covers_eps(&outer, &way_out, 1e-2));
    }
}
