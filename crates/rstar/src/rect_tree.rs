//! The concrete rectangle R*-tree: the conventional "precise data"
//! baseline (paper Sec 2.2) and the substrate's primary test rig.

use crate::codec::{InnerEntry, NodeCodec};
use crate::metrics::{rect_covers_eps, KeyMetrics, LeafRecord};
use crate::tree::{RStarTreeBase, TreeConfig};
use page_store::{ByteReader, ByteWriter, PageStore, PAGE_SIZE};
use std::io;
use uncertain_geom::Rect;

/// Plain-rectangle metrics: the R*-tree penalty metrics verbatim.
#[derive(Debug, Clone, Copy, Default)]
pub struct RectMetrics<const D: usize>;

impl<const D: usize> KeyMetrics<D> for RectMetrics<D> {
    type Key = Rect<D>;
    type OverlapProfile = Rect<D>;

    fn overlap_profile(&self, k: &Rect<D>) -> Rect<D> {
        *k
    }

    fn profile_overlap(&self, a: &Rect<D>, b: &Rect<D>) -> f64 {
        a.overlap(b)
    }

    fn union_with(&self, a: &mut Rect<D>, b: &Rect<D>) {
        *a = a.union(b);
    }

    fn area(&self, k: &Rect<D>) -> f64 {
        k.area()
    }

    fn margin(&self, k: &Rect<D>) -> f64 {
        k.margin()
    }

    fn overlap(&self, a: &Rect<D>, b: &Rect<D>) -> f64 {
        a.overlap(b)
    }

    fn centroid_distance(&self, a: &Rect<D>, b: &Rect<D>) -> f64 {
        a.centroid_distance(b)
    }

    fn split_rect(&self, k: &Rect<D>) -> Rect<D> {
        *k
    }

    fn covers(&self, outer: &Rect<D>, inner: &Rect<D>, tolerance: f64) -> bool {
        rect_covers_eps(outer, inner, tolerance)
    }
}

/// A leaf record: rectangle + identifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectLeaf<const D: usize> {
    /// The data rectangle (a point's degenerate rect or an extended object).
    pub rect: Rect<D>,
    /// Stable identifier.
    pub id: u64,
}

impl<const D: usize> LeafRecord<Rect<D>> for RectLeaf<D> {
    fn key(&self) -> Rect<D> {
        self.rect
    }

    fn id(&self) -> u64 {
        self.id
    }
}

/// On-page layout: `count: u16` then fixed-size entries
/// (leaf: 2·D f32 + u64 id; inner: 2·D f32 + u64 child).
#[derive(Debug, Clone, Copy, Default)]
pub struct RectCodec<const D: usize>;

impl<const D: usize> RectCodec<D> {
    const ENTRY: usize = 2 * D * 4 + 8;

    fn capacity() -> usize {
        (PAGE_SIZE - 1 - 2) / Self::ENTRY
    }

    fn put_rect(w: &mut ByteWriter, r: &Rect<D>) {
        for i in 0..D {
            w.put_f32(r.min[i]);
        }
        for i in 0..D {
            w.put_f32(r.max[i]);
        }
    }

    fn get_rect(r: &mut ByteReader<'_>) -> Rect<D> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for m in min.iter_mut() {
            *m = r.get_f32();
        }
        for m in max.iter_mut() {
            *m = r.get_f32();
        }
        // f32 rounding can flip degenerate bounds; repair conservatively.
        for i in 0..D {
            if min[i] > max[i] {
                std::mem::swap(&mut min[i], &mut max[i]);
            }
        }
        Rect { min, max }
    }
}

impl<const D: usize> NodeCodec<Rect<D>, RectLeaf<D>> for RectCodec<D> {
    fn leaf_capacity(&self) -> usize {
        Self::capacity()
    }

    fn inner_capacity(&self) -> usize {
        Self::capacity()
    }

    fn encode_leaf(&self, entries: &[RectLeaf<D>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * Self::ENTRY);
        w.put_u16(entries.len() as u16);
        for e in entries {
            Self::put_rect(&mut w, &e.rect);
            w.put_u64(e.id);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_leaf(&self, bytes: &[u8]) -> Vec<RectLeaf<D>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        (0..n)
            .map(|_| RectLeaf {
                rect: Self::get_rect(&mut r),
                id: r.get_u64(),
            })
            .collect()
    }

    fn encode_inner(&self, entries: &[InnerEntry<Rect<D>>], out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_capacity(2 + entries.len() * Self::ENTRY);
        w.put_u16(entries.len() as u16);
        for e in entries {
            Self::put_rect(&mut w, &e.key);
            w.put_u64(e.child);
        }
        out.extend_from_slice(w.as_slice());
    }

    fn decode_inner(&self, bytes: &[u8]) -> Vec<InnerEntry<Rect<D>>> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u16() as usize;
        (0..n)
            .map(|_| InnerEntry {
                key: Self::get_rect(&mut r),
                child: r.get_u64(),
            })
            .collect()
    }
}

/// The baseline disk-based R*-tree over rectangles, generic over the
/// backing [`PageStore`] (defaults to the infallible in-memory
/// [`page_store::PageFile`]).
///
/// Every operation exists in two forms: a `try_*` method that surfaces
/// store failures as `io::Result` (the PR-6 fallible-store contract —
/// exercised under `FaultStore` in the tests), and, for the in-memory
/// default store only, an infallible convenience wrapper.
pub struct RectRStarTree<const D: usize, S: PageStore = page_store::PageFile> {
    tree: RStarTreeBase<D, RectMetrics<D>, RectLeaf<D>, RectCodec<D>, S>,
}

impl<const D: usize> Default for RectRStarTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, S: PageStore> RectRStarTree<D, S> {
    /// An empty tree with R* defaults on the given store.
    pub fn try_new_on(store: S) -> io::Result<Self> {
        Ok(Self {
            tree: RStarTreeBase::with_store(store, RectMetrics, RectCodec, TreeConfig::default())?,
        })
    }

    /// Builds a tree on `store` from a flat record set by STR packing
    /// ([`crate::str_order_by`] + bottom-up level construction) instead
    /// of repeated insertion.
    pub fn try_bulk_load_on(store: S, mut data: Vec<RectLeaf<D>>) -> io::Result<Self> {
        let codec = RectCodec::<D>;
        let cap = NodeCodec::<Rect<D>, RectLeaf<D>>::leaf_capacity(&codec);
        crate::str_order_by(&mut data, cap, &|e: &RectLeaf<D>| e.rect.center().coords);
        Ok(Self {
            tree: RStarTreeBase::bulk_build_ordered(
                store,
                data,
                RectMetrics,
                codec,
                TreeConfig::default(),
            )?,
        })
    }

    /// Inserts a rectangle with an identifier; a failing store surfaces
    /// its `io::Error` and leaves the already-stored pages untouched.
    pub fn try_insert(&mut self, rect: Rect<D>, id: u64) -> io::Result<()> {
        self.tree.insert(RectLeaf { rect, id })
    }

    /// Deletes by (rect, id); `Ok(true)` when found.
    pub fn try_delete(&mut self, rect: Rect<D>, id: u64) -> io::Result<bool> {
        Ok(self.tree.delete(&rect, id)?.is_some())
    }

    /// Conventional range query: ids of rectangles intersecting `query`.
    pub fn try_range(&self, query: &Rect<D>) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        self.tree.visit(
            |key, _| key.intersects(query),
            |rec| {
                if rec.rect.intersects(query) {
                    out.push(rec.id);
                }
            },
        )?;
        Ok(out)
    }

    /// Access to the generic machinery (stats, invariants, I/O counters).
    pub fn inner(&self) -> &RStarTreeBase<D, RectMetrics<D>, RectLeaf<D>, RectCodec<D>, S> {
        &self.tree
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

impl<const D: usize> RectRStarTree<D> {
    /// An empty tree with R* defaults.
    pub fn new() -> Self {
        Self {
            tree: RStarTreeBase::new(RectMetrics, RectCodec, TreeConfig::default()),
        }
    }

    /// Builds a tree from a flat record set by STR packing; see
    /// [`Self::try_bulk_load_on`].
    pub fn bulk_load(data: Vec<RectLeaf<D>>) -> Self {
        Self::try_bulk_load_on(page_store::PageFile::new(), data)
            // xlint: allow(panic-freedom, io-fallibility) -- the default store is in-memory and cannot fail
            .expect("in-memory page store cannot fail")
    }

    /// Inserts a rectangle with an identifier.
    pub fn insert(&mut self, rect: Rect<D>, id: u64) {
        self.try_insert(rect, id)
            // xlint: allow(panic-freedom, io-fallibility) -- the default store is in-memory and cannot fail
            .expect("in-memory page store cannot fail");
    }

    /// Deletes by (rect, id); returns `true` when found.
    pub fn delete(&mut self, rect: Rect<D>, id: u64) -> bool {
        self.try_delete(rect, id)
            // xlint: allow(panic-freedom, io-fallibility) -- the default store is in-memory and cannot fail
            .expect("in-memory page store cannot fail")
    }

    /// Conventional range query: ids of rectangles intersecting `query`.
    pub fn range(&self, query: &Rect<D>) -> Vec<u64> {
        self.try_range(query)
            // xlint: allow(panic-freedom, io-fallibility) -- the default store is in-memory and cannot fail
            .expect("in-memory page store cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_rect(rng: &mut SmallRng, span: f64) -> Rect<2> {
        let x = rng.gen_range(0.0..10_000.0);
        let y = rng.gen_range(0.0..10_000.0);
        let w = rng.gen_range(0.0..span);
        let h = rng.gen_range(0.0..span);
        Rect::new([x, y], [x + w, y + h])
    }

    /// f32-rounded copy of a rect — what the tree's pages store.
    fn f32_round(r: &Rect<2>) -> Rect<2> {
        Rect {
            min: [r.min[0] as f32 as f64, r.min[1] as f32 as f64],
            max: [r.max[0] as f32 as f64, r.max[1] as f32 as f64],
        }
    }

    #[test]
    fn capacities_are_sane() {
        // 2D: entry = 16 + 8 = 24 bytes; (4096-3)/24 = 170
        assert_eq!(RectCodec::<2>::capacity(), 170);
        // 3D: entry = 24 + 8 = 32 bytes
        assert_eq!(RectCodec::<3>::capacity(), 127);
    }

    #[test]
    fn empty_tree_range_is_empty() {
        let t = RectRStarTree::<2>::new();
        assert!(t.range(&Rect::new([0.0, 0.0], [1.0, 1.0])).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn range_query_matches_naive_scan() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut tree = RectRStarTree::<2>::new();
        let mut data = Vec::new();
        for id in 0..3000u64 {
            let r = random_rect(&mut rng, 80.0);
            tree.insert(r, id);
            data.push((f32_round(&r), id));
        }
        tree.inner().check_invariants().unwrap();
        for _ in 0..50 {
            let q = random_rect(&mut rng, 700.0);
            let mut got = tree.range(&q);
            got.sort_unstable();
            let mut expect: Vec<u64> = data
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|&(_, id)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn queries_prune_subtrees() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut tree = RectRStarTree::<2>::new();
        for id in 0..5000u64 {
            tree.insert(random_rect(&mut rng, 10.0), id);
        }
        tree.inner().io_stats().reset();
        let _ = tree.range(&Rect::new([0.0, 0.0], [300.0, 300.0]));
        let accessed = tree.inner().io_stats().reads();
        let total = tree.inner().node_count() as u64;
        assert!(
            accessed < total / 3,
            "query touched {accessed} of {total} nodes — no pruning?"
        );
    }

    #[test]
    fn delete_removes_exactly_one() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut tree = RectRStarTree::<2>::new();
        let mut data = Vec::new();
        for id in 0..1200u64 {
            let r = random_rect(&mut rng, 50.0);
            tree.insert(r, id);
            data.push((r, id));
        }
        // Delete every third element.
        for (r, id) in data.iter().step_by(3) {
            assert!(tree.delete(*r, *id), "id {id} must be deletable");
        }
        tree.inner().check_invariants().unwrap();
        assert_eq!(tree.len(), 800);
        let everything = Rect::new([-1.0, -1.0], [10_001.0, 10_001.0]);
        let mut got = tree.range(&everything);
        got.sort_unstable();
        let mut expect: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, &(_, id))| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn delete_to_empty_and_reuse() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut tree = RectRStarTree::<2>::new();
        let mut data = Vec::new();
        for id in 0..600u64 {
            let r = random_rect(&mut rng, 30.0);
            tree.insert(r, id);
            data.push((r, id));
        }
        for (r, id) in &data {
            assert!(tree.delete(*r, *id));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.inner().height(), 1);
        // The tree must remain fully usable.
        tree.insert(Rect::new([1.0, 1.0], [2.0, 2.0]), 9999);
        assert_eq!(tree.range(&Rect::new([0.0, 0.0], [3.0, 3.0])), vec![9999]);
    }

    #[test]
    fn delete_of_absent_id_returns_false() {
        let mut tree = RectRStarTree::<2>::new();
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        tree.insert(r, 1);
        assert!(!tree.delete(r, 2));
        assert!(tree.delete(r, 1));
        assert!(!tree.delete(r, 1));
    }

    #[test]
    fn three_dimensional_tree() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut tree = RectRStarTree::<3>::new();
        let mut data = Vec::new();
        for id in 0..2000u64 {
            let c = [
                rng.gen_range(0.0..10_000.0),
                rng.gen_range(0.0..10_000.0),
                rng.gen_range(0.0..10_000.0),
            ];
            let r = Rect::new(c, [c[0] + 20.0, c[1] + 20.0, c[2] + 20.0]);
            tree.insert(r, id);
            let rr = Rect {
                min: [
                    r.min[0] as f32 as f64,
                    r.min[1] as f32 as f64,
                    r.min[2] as f32 as f64,
                ],
                max: [
                    r.max[0] as f32 as f64,
                    r.max[1] as f32 as f64,
                    r.max[2] as f32 as f64,
                ],
            };
            data.push((rr, id));
        }
        tree.inner().check_invariants().unwrap();
        let q = Rect::new([2000.0, 2000.0, 2000.0], [4000.0, 4000.0, 4000.0]);
        let mut got = tree.range(&q);
        got.sort_unstable();
        let mut expect: Vec<u64> = data
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, id)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_matches_insert_build_and_packs_tight() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut incremental = RectRStarTree::<2>::new();
        let mut records = Vec::new();
        for id in 0..5000u64 {
            let r = random_rect(&mut rng, 60.0);
            incremental.insert(r, id);
            records.push(RectLeaf { rect: r, id });
        }
        let probe = f32_round(&records[123].rect);
        let bulk = RectRStarTree::bulk_load(records);
        bulk.inner().check_invariants().unwrap();
        assert_eq!(bulk.len(), 5000);

        // Same answers on every query.
        for _ in 0..40 {
            let q = random_rect(&mut rng, 900.0);
            let mut a = bulk.range(&q);
            let mut b = incremental.range(&q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }

        // Zero-waste packing: the bulk tree uses no more nodes than the
        // theoretical minimum plus the per-level remainder node.
        let cap = RectCodec::<2>::capacity();
        let min_leaves = 5000usize.div_ceil(cap);
        let stats = bulk.inner().stats().unwrap();
        assert!(
            stats.nodes_per_level[0] <= min_leaves + 1,
            "bulk leaves not packed: {} vs {min_leaves}",
            stats.nodes_per_level[0]
        );
        assert!(
            stats.total_nodes() < incremental.inner().stats().unwrap().total_nodes(),
            "bulk tree must be denser than the insert-built tree"
        );

        // Deletes and further inserts keep working on a bulk-built tree.
        let mut bulk = bulk;
        assert!(bulk.delete(probe, 123), "bulk-built record must delete");
        bulk.insert(Rect::new([1.0, 1.0], [2.0, 2.0]), 999_999);
        bulk.inner().check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_empty_and_tiny_inputs() {
        let empty = RectRStarTree::<2>::bulk_load(Vec::new());
        assert!(empty.is_empty());
        empty.inner().check_invariants().unwrap();

        let one = RectRStarTree::<2>::bulk_load(vec![RectLeaf {
            rect: Rect::new([0.0, 0.0], [1.0, 1.0]),
            id: 7,
        }]);
        assert_eq!(one.len(), 1);
        one.inner().check_invariants().unwrap();
        assert_eq!(one.range(&Rect::new([0.0, 0.0], [2.0, 2.0])), vec![7]);
    }

    #[test]
    fn duplicate_rects_with_distinct_ids() {
        let mut tree = RectRStarTree::<2>::new();
        let r = Rect::new([5.0, 5.0], [6.0, 6.0]);
        for id in 0..700u64 {
            tree.insert(r, id);
        }
        tree.inner().check_invariants().unwrap();
        assert_eq!(tree.range(&r).len(), 700);
        for id in 0..700u64 {
            assert!(tree.delete(r, id));
        }
        assert!(tree.is_empty());
    }
}
