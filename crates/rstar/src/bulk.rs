//! Sort-Tile-Recursive ordering for bulk loading (Leutenegger et al.,
//! ICDE 1997).
//!
//! STR turns a flat record set into the linear order in which a bottom-up
//! packer should chunk it: sort everything by the first coordinate of its
//! center point, cut the sequence into vertical slabs sized so each slab
//! holds a whole number of leaves, then recurse on the remaining
//! dimensions inside every slab. Records that end up adjacent in the
//! final order are spatially close in *all* dimensions, so packing them
//! `capacity`-at-a-time yields near-square leaf tiles — the layout that
//! minimizes node perimeter and therefore query overlap.
//!
//! This module only produces the order; the packing itself is
//! [`crate::RStarTreeBase::bulk_build_ordered`], which is generic over
//! the key type and so serves the baseline R*-tree, the U-tree, and U-PCR
//! alike (their "center" is the centroid of the uncertainty MBR).

/// Reorders `items` into STR tile order for leaves of `leaf_cap` records,
/// using `center` to place each item in `D`-space.
///
/// The sort within each slab is stable and total as long as `center`
/// returns finite coordinates; NaNs compare equal and simply stay where
/// the partitioning puts them.
pub fn str_order_by<T, const D: usize, F>(items: &mut [T], leaf_cap: usize, center: &F)
where
    F: Fn(&T) -> [f64; D],
{
    assert!(leaf_cap >= 1, "leaf capacity must be positive");
    str_rec(items, 0, leaf_cap, center);
}

fn str_rec<T, const D: usize, F>(items: &mut [T], dim: usize, leaf_cap: usize, center: &F)
where
    F: Fn(&T) -> [f64; D],
{
    if dim >= D || items.len() <= leaf_cap {
        return;
    }
    items.sort_by(|a, b| {
        center(a)[dim]
            .partial_cmp(&center(b)[dim])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if dim + 1 >= D {
        return; // last dimension: the sort is the final order
    }
    // S = ceil(P^(1/d)) slabs over the d remaining dimensions, where P is
    // the number of leaves this subset needs (the STR slab rule).
    let leaves = items.len().div_ceil(leaf_cap);
    let remaining_dims = (D - dim) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));
    let mut start = 0;
    while start < items.len() {
        let end = (start + slab_size).min(items.len());
        str_rec(&mut items[start..end], dim + 1, leaf_cap, center);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_order_is_a_plain_sort() {
        let mut v: Vec<f64> = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        str_order_by(&mut v, 2, &|x: &f64| [*x]);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn two_dimensional_tiles_group_neighbours() {
        // A 4x4 grid with leaf_cap 4 must tile into the four quadrant-ish
        // slabs: every chunk of 4 consecutive items spans a narrow x-range.
        let mut pts: Vec<[f64; 2]> = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                pts.push([x as f64, y as f64]);
            }
        }
        // Shuffle deterministically.
        pts.reverse();
        pts.swap(3, 11);
        pts.swap(0, 7);
        str_order_by(&mut pts, 4, &|p: &[f64; 2]| *p);
        for chunk in pts.chunks(4) {
            let xs: Vec<f64> = chunk.iter().map(|p| p[0]).collect();
            let span = xs.iter().cloned().fold(f64::MIN, f64::max)
                - xs.iter().cloned().fold(f64::MAX, f64::min);
            assert!(span <= 1.0, "slab spans too much x: {chunk:?}");
        }
    }

    #[test]
    fn small_inputs_are_untouched_by_slabbing() {
        let mut v = vec![[2.0, 1.0], [1.0, 2.0]];
        str_order_by(&mut v, 4, &|p: &[f64; 2]| *p);
        assert_eq!(v.len(), 2);
    }
}
